//! End-to-end deployment tests: train → pack → calibrate → save `.csqm`
//! → reload in (effectively) a fresh process → serve.
//!
//! The load path deliberately uses only `csq_serve` public API plus the
//! artifact bytes, proving a server needs zero training-side code.

use csq_core::prelude::*;
use csq_data::{Dataset, SyntheticSpec};
use csq_nn::models::{resnet_cifar, ModelConfig};
use csq_nn::PersistError;
use csq_serve::{
    calibrate, ArtifactError, Engine, EngineConfig, ModelArtifact, CSQM_FORMAT_VERSION,
};
use csq_tensor::par::ScratchPool;
use std::sync::OnceLock;
use std::time::Duration;

struct Fixture {
    artifact: ModelArtifact,
    data: Dataset,
}

/// Trains one small CSQ model and exports it once for the whole test
/// binary (training dominates the suite's wall clock).
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let spec = SyntheticSpec::cifar_like(7)
            .with_samples(3, 2)
            .with_noise(0.5);
        let data = Dataset::synthetic(&spec);
        let mut factory = csq_factory(8);
        let mut model = resnet_cifar(ModelConfig::cifar_like(4, Some(4), 7), &mut factory, 1);
        let cfg = CsqConfig::fast(4.0).with_epochs(2).with_seed(7);
        CsqTrainer::new(cfg)
            .train(&mut model, &data)
            .expect("training");
        let input_dims = data.test.images.dims()[1..].to_vec();
        let calib = data.train.images.slice_axis0(0, data.train.len().min(8));
        let artifact = ModelArtifact::export(
            &mut model,
            "test-model",
            &input_dims,
            data.spec.num_classes,
            &calib,
        )
        .expect("export");
        Fixture { artifact, data }
    })
}

/// A second artifact trained at a uniform 2-bit width: few enough bit
/// planes that the kernel selector routes its convolutions to the
/// bit-plane class (the 8-bit [`fixture`] stays on dense integer).
fn lowbit_fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let spec = SyntheticSpec::cifar_like(7)
            .with_samples(3, 2)
            .with_noise(0.5);
        let data = Dataset::synthetic(&spec);
        let mut factory = csq_uniform_factory(2);
        let mut model = resnet_cifar(ModelConfig::cifar_like(4, Some(4), 7), &mut factory, 1);
        let cfg = CsqConfig::fast(4.0).with_epochs(2).with_seed(7);
        CsqTrainer::new(cfg)
            .train(&mut model, &data)
            .expect("training");
        let input_dims = data.test.images.dims()[1..].to_vec();
        let calib = data.train.images.slice_axis0(0, data.train.len().min(8));
        let artifact = ModelArtifact::export(
            &mut model,
            "test-model-2bit",
            &input_dims,
            data.spec.num_classes,
            &calib,
        )
        .expect("export");
        Fixture { artifact, data }
    })
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("csq-serve-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

#[test]
fn artifact_round_trips_through_disk() {
    let fix = fixture();
    let path = temp_path("round-trip.csqm");
    fix.artifact.save(&path).expect("save");
    let loaded = ModelArtifact::load(&path).expect("load");
    assert_eq!(loaded, fix.artifact, "artifact must round-trip bit-exactly");

    // The reloaded copy serves the same answers as the in-memory one.
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let a = fix.artifact.compile().expect("compile original");
    let b = loaded.compile().expect("compile reloaded");
    let x = &fix.data.test.images;
    let ya = a.forward_batch(x, &scratch).expect("forward original");
    let yb = b.forward_batch(x, &scratch).expect("forward reloaded");
    assert_eq!(ya.data(), yb.data());
    std::fs::remove_file(&path).ok();
}

#[test]
fn compiled_model_reports_stem_fallback_and_integer_ops() {
    let fix = fixture();
    let compiled = fix.artifact.compile().expect("compile");
    // Synthetic images are signed, so the stem cannot run on unsigned
    // 8-bit codes; everything after the first ReLU can.
    assert_eq!(fix.artifact.calibration[0].weight_path, "0.weight");
    assert!(!fix.artifact.calibration[0].integer);
    assert!(compiled.float_fallback_count() >= 1);
    assert!(compiled.integer_op_count() >= 1);
    assert_eq!(
        compiled.integer_op_count() + compiled.float_fallback_count(),
        fix.artifact.weights.len()
    );
    // Provenance rides along.
    assert_eq!(fix.artifact.scheme.layers.len(), fix.artifact.weights.len());
    assert!(fix.artifact.packed_weight_bytes() > 0);
}

#[test]
fn batched_engine_is_bit_identical_to_single_requests_at_1_and_4_workers() {
    let fix = fixture();
    let compiled = fix.artifact.compile().expect("compile");
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let images = &fix.data.test.images;
    let n = fix.data.test.len();
    let input_dims = fix.artifact.input_dims.clone();

    let reference: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            compiled
                .forward_batch(&images.slice_axis0(i, i + 1), &scratch)
                .expect("reference forward")
                .data()
                .to_vec()
        })
        .collect();

    for workers in [1usize, 4] {
        let engine = Engine::start(
            fix.artifact.compile().expect("compile"),
            EngineConfig {
                workers,
                max_batch: 4,
                batch_window: Duration::from_millis(4),
                ..EngineConfig::default()
            },
        );
        let tickets: Vec<_> = (0..n)
            .map(|i| {
                engine
                    .submit(images.slice_axis0(i, i + 1).reshape(&input_dims))
                    .expect("submit")
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let got = ticket.wait().expect("answer");
            assert_eq!(
                got.data(),
                &reference[i][..],
                "workers={workers} sample {i} not bit-identical"
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.completed as usize, n, "workers={workers}");
        assert_eq!(stats.failed, 0);
    }
}

#[test]
fn bitplane_kernels_are_bit_exact_against_integer_at_1_and_4_threads() {
    let fix = lowbit_fixture();
    let compiled = fix.artifact.compile().expect("compile");
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let images = &fix.data.test.images;
    let batch = images.dims()[0];

    // The trained fixture must actually exercise the bit-plane class,
    // otherwise this test would vacuously compare integer to itself.
    assert!(
        compiled.bitplane_op_count(batch) >= 1,
        "selector chose no bitplane ops: {:?}",
        compiled.kernel_plan(batch)
    );
    // The plan tags every op with the class the executor will run.
    for entry in compiled.kernel_plan(batch) {
        assert!(["integer", "bitplane", "float"].contains(&entry.class));
    }

    let want = compiled
        .forward_batch_with(images, &scratch, csq_serve::KernelPolicy::ForceInteger)
        .expect("integer forward");
    for threads in [1usize, 4] {
        csq_tensor::par::with_threads(threads, || {
            let auto = compiled
                .forward_batch(images, &scratch)
                .expect("auto forward");
            let forced = compiled
                .forward_batch_with(images, &scratch, csq_serve::KernelPolicy::ForceBitplane)
                .expect("bitplane forward");
            assert_eq!(
                auto.data(),
                want.data(),
                "auto policy diverges from integer at {threads} threads"
            );
            assert_eq!(
                forced.data(),
                want.data(),
                "bitplane kernels diverge from integer at {threads} threads"
            );
        });
    }

    // Batch-1 routes through the vecmat routine; still bit-exact.
    let one = images.slice_axis0(0, 1);
    let want1 = compiled
        .forward_batch_with(&one, &scratch, csq_serve::KernelPolicy::ForceInteger)
        .expect("integer batch-1");
    let got1 = compiled
        .forward_batch_with(&one, &scratch, csq_serve::KernelPolicy::ForceBitplane)
        .expect("bitplane batch-1");
    assert_eq!(got1.data(), want1.data());
}

#[test]
fn plane_profile_reports_bitplane_structure() {
    let fix = fixture();
    let profile = fix.artifact.plane_profile();
    assert_eq!(profile.len(), fix.artifact.weights.len());
    assert!(
        profile.iter().any(|e| e.active_passes >= 1),
        "a trained model must have at least one non-empty plane"
    );
    for entry in &profile {
        assert_eq!(
            entry.active_passes + entry.skipped_passes,
            2 * entry.total_planes,
            "{}: every plane has a positive and a negative pass",
            entry.path
        );
        assert!(entry.active_passes == 0 || entry.lane_bytes > 0);
    }
}

#[test]
fn trained_artifact_hot_swaps_into_a_live_engine() {
    let fix = fixture();
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let images = &fix.data.test.images;
    let input_dims = fix.artifact.input_dims.clone();
    let x = || images.slice_axis0(0, 1).reshape(&input_dims);
    let want = fix
        .artifact
        .compile()
        .expect("compile")
        .forward_batch(&images.slice_axis0(0, 1), &scratch)
        .expect("reference forward");

    let engine = Engine::start(
        fix.artifact.compile().expect("compile"),
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
    );
    assert_eq!(engine.model_version(), 1);
    assert_eq!(engine.infer(x()).expect("serve v1").data(), want.data());

    // "Redeploy" the same trained artifact, as a rolling update of a
    // compatible model would: the version bumps, answers stay exact.
    let replacement = fix.artifact.compile().expect("compile replacement");
    assert_eq!(engine.swap_model(replacement).expect("swap"), 2);
    assert_eq!(engine.model_version(), 2);
    assert_eq!(engine.infer(x()).expect("serve v2").data(), want.data());
    let stats = engine.stats();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.model_version, 2);
    assert_eq!(stats.failed, 0);
}

#[test]
fn corrupted_artifact_is_rejected_on_load() {
    let fix = fixture();
    let path = temp_path("corrupt.csqm");
    fix.artifact.save(&path).expect("save");
    let mut bytes = std::fs::read(&path).expect("read back");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite");
    match ModelArtifact::load(&path) {
        Err(ArtifactError::Persist(PersistError::ChecksumMismatch { .. })) => {}
        other => panic!("bit flip must fail the checksum, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn future_format_version_is_rejected() {
    let fix = fixture();
    let mut future = fix.artifact.clone();
    future.format_version = CSQM_FORMAT_VERSION + 1;
    let path = temp_path("future.csqm");
    future.save(&path).expect("save");
    match ModelArtifact::load(&path) {
        Err(ArtifactError::UnsupportedVersion {
            path: p,
            found,
            supported,
        }) => {
            assert_eq!(p.as_deref(), Some(path.as_path()));
            assert_eq!(found, CSQM_FORMAT_VERSION + 1);
            assert_eq!(supported, CSQM_FORMAT_VERSION);
        }
        other => panic!("future version must be rejected, got {other:?}"),
    }
    assert!(matches!(
        future.compile(),
        Err(ArtifactError::UnsupportedVersion { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn artifact_missing_calibration_cannot_compile() {
    let fix = fixture();
    let mut broken = fix.artifact.clone();
    broken.calibration.clear();
    assert!(matches!(broken.compile(), Err(ArtifactError::Bind(_))));
}

#[test]
fn calibration_is_deterministic_and_matches_the_artifact() {
    let fix = fixture();
    let compiled = fix.artifact.compile().expect("compile");
    let m = fix.data.train.len().min(8);
    let samples = fix.data.train.images.slice_axis0(0, m);
    let a = calibrate(&compiled, &samples).expect("calibrate");
    let b = calibrate(&compiled, &samples).expect("calibrate again");
    assert_eq!(a, b, "calibration must be deterministic");
    // Same samples as the export used -> identical frozen grids.
    assert_eq!(a, fix.artifact.calibration);
}

#[test]
fn export_rejects_mismatched_calibration_samples() {
    let fix = fixture();
    // Wrong spatial size for this model.
    let bad = csq_tensor::Tensor::zeros(&[2, 3, 8, 8]);
    let spec = SyntheticSpec::cifar_like(9)
        .with_samples(2, 1)
        .with_noise(0.5);
    let data = Dataset::synthetic(&spec);
    let mut factory = csq_factory(8);
    let mut model = resnet_cifar(ModelConfig::cifar_like(4, Some(4), 9), &mut factory, 1);
    // No training needed: sample validation fires before packing.
    let err = ModelArtifact::export(
        &mut model,
        "bad",
        &fix.artifact.input_dims,
        data.spec.num_classes,
        &bad,
    )
    .expect_err("mismatched samples must be rejected");
    assert!(matches!(err, ArtifactError::BadSamples { .. }));
}
