//! Micro-batching inference engine.
//!
//! The engine owns one immutable [`CompiledModel`] shared across a pool
//! of worker threads behind an `Arc`. Callers [`Engine::submit`] single
//! samples into a bounded queue and receive a [`Ticket`]; a worker pulls
//! the oldest request, then keeps the batch open for up to
//! `batch_window` (or until `max_batch` requests arrived), fuses the
//! batch into one `[B, C, H, W]` tensor, runs a single integer forward,
//! and scatters the logit rows back to the waiting tickets.
//!
//! Batching is *safe* here — not just statistically harmless — because
//! the executor is bit-deterministic with respect to batch composition:
//! calibrated activation grids are constants and every kernel processes
//! samples independently with a fixed accumulation order, so a fused
//! forward returns exactly the rows each request would have gotten
//! alone. Tests assert this equality bit-for-bit.
//!
//! Backpressure is explicit: when the queue holds `queue_capacity`
//! pending requests, [`Engine::submit`] fails fast with
//! [`ServeError::QueueFull`] instead of queueing unbounded work.
//! Workers keep their own scratch pools ([`ScratchPool<u8>`]) so the
//! hot path performs no cross-thread allocation handoff, and each fused
//! forward runs under [`par::with_threads`] with a configurable
//! intra-op thread count (default 1: parallelism comes from concurrent
//! worker batches, not nested data-parallel kernels).

use crate::exec::{CompiledModel, ServeError};
use crate::metrics::{EngineStats, StatsInner};
use csq_tensor::par::{self, ScratchPool};
use csq_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads pulling batches off the queue (minimum 1).
    pub workers: usize,
    /// Largest number of requests fused into one forward (minimum 1).
    pub max_batch: usize,
    /// How long a worker holds a non-full batch open waiting for more
    /// requests before running it anyway.
    pub batch_window: Duration,
    /// Bounded queue size; submissions beyond this are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Data-parallel threads *inside* one fused forward (minimum 1).
    /// Keep at 1 unless workers are fewer than cores.
    pub intra_op_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            queue_capacity: 256,
            intra_op_threads: 1,
        }
    }
}

/// One pending request in the submission queue.
struct Request {
    input: Tensor,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Tensor, ServeError>>,
}

/// State shared between the submission side and the workers.
struct Shared {
    model: CompiledModel,
    cfg: EngineConfig,
    queue: Mutex<VecDeque<Request>>,
    notify: Condvar,
    shutdown: AtomicBool,
    stats: StatsInner,
}

/// Locks the queue, recovering the guard if a worker panicked while
/// holding it (the queue itself is always in a consistent state).
fn lock_queue(shared: &Shared) -> MutexGuard<'_, VecDeque<Request>> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A handle for one in-flight request; redeem it with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<Tensor, ServeError>>,
    enqueued: Instant,
}

impl Ticket {
    /// Blocks until the engine answers, returning the logits `[K]` for
    /// the submitted sample (or the error the batch failed with).
    pub fn wait(self) -> Result<Tensor, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// When the request entered the queue (for caller-side latency
    /// accounting).
    pub fn enqueued_at(&self) -> Instant {
        self.enqueued
    }
}

/// A running micro-batching inference engine over one compiled model.
///
/// Dropping the engine shuts it down: workers drain the queue, answer
/// everything still pending, and are joined before `drop` returns.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts worker threads over `model` with the given configuration
    /// (zero-valued knobs are normalized up to 1).
    pub fn start(model: CompiledModel, cfg: EngineConfig) -> Engine {
        let cfg = EngineConfig {
            workers: cfg.workers.max(1),
            max_batch: cfg.max_batch.max(1),
            batch_window: cfg.batch_window,
            queue_capacity: cfg.queue_capacity.max(1),
            intra_op_threads: cfg.intra_op_threads.max(1),
        };
        let shared = Arc::new(Shared {
            stats: StatsInner::new(cfg.max_batch),
            model,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..shared.cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Engine { shared, workers }
    }

    /// Enqueues one sample (shape = the model's per-sample
    /// [`CompiledModel::input_dims`], no batch axis) and returns a
    /// [`Ticket`] to redeem for its logits.
    ///
    /// Fails fast with [`ServeError::BadInput`] on a shape mismatch and
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity.
    pub fn submit(&self, input: Tensor) -> Result<Ticket, ServeError> {
        if input.dims() != self.shared.model.input_dims() {
            return Err(ServeError::BadInput {
                expected: self.shared.model.input_dims().to_vec(),
                actual: input.dims().to_vec(),
            });
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        let (tx, rx) = mpsc::channel();
        let enqueued = Instant::now();
        {
            let mut queue = lock_queue(&self.shared);
            if queue.len() >= self.shared.cfg.queue_capacity {
                self.shared.stats.record_rejected();
                return Err(ServeError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                });
            }
            queue.push_back(Request {
                input,
                enqueued,
                reply: tx,
            });
            self.shared.stats.record_submitted();
        }
        self.shared.notify.notify_one();
        Ok(Ticket { rx, enqueued })
    }

    /// Convenience blocking call: [`Engine::submit`] + [`Ticket::wait`].
    pub fn infer(&self, input: Tensor) -> Result<Tensor, ServeError> {
        self.submit(input)?.wait()
    }

    /// The compiled model being served.
    pub fn model(&self) -> &CompiledModel {
        &self.shared.model
    }

    /// Snapshot of the serving metrics.
    pub fn stats(&self) -> EngineStats {
        self.shared.stats.snapshot()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let scratch: ScratchPool<u8> = ScratchPool::new();
    while let Some(batch) = collect_batch(shared) {
        run_batch(shared, batch, &scratch);
    }
}

/// Pops the oldest request, then holds the batch open until it is full,
/// the batch window elapses, or shutdown begins. Returns `None` only at
/// shutdown with an empty queue, so pending requests are always drained.
fn collect_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut queue = lock_queue(shared);
    loop {
        if let Some(first) = queue.pop_front() {
            let mut batch = vec![first];
            let deadline = Instant::now() + shared.cfg.batch_window;
            while batch.len() < shared.cfg.max_batch {
                if let Some(next) = queue.pop_front() {
                    batch.push(next);
                    continue;
                }
                let now = Instant::now();
                if now >= deadline || shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let (guard, _timed_out) = match shared.notify.wait_timeout(queue, deadline - now) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                queue = guard;
            }
            return Some(batch);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        queue = match shared.notify.wait(queue) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

/// Fuses a batch into one tensor, runs a single forward, and scatters
/// the logit rows back to the tickets.
fn run_batch(shared: &Shared, batch: Vec<Request>, scratch: &ScratchPool<u8>) {
    shared.stats.record_batch(batch.len());
    let per_sample: usize = shared.model.input_dims().iter().product();
    let mut data = Vec::with_capacity(batch.len() * per_sample);
    for request in &batch {
        data.extend_from_slice(request.input.data());
    }
    let mut dims = Vec::with_capacity(shared.model.input_dims().len() + 1);
    dims.push(batch.len());
    dims.extend_from_slice(shared.model.input_dims());
    let x = Tensor::from_vec(data, &dims);

    let result = par::with_threads(shared.cfg.intra_op_threads, || {
        shared.model.forward_batch(&x, scratch)
    });
    match result {
        Ok(y) => {
            let k = shared.model.num_classes();
            for (i, request) in batch.into_iter().enumerate() {
                let row = Tensor::from_vec(y.data()[i * k..(i + 1) * k].to_vec(), &[k]);
                let latency = request.enqueued.elapsed();
                // A dropped ticket just discards the row; the work was
                // still done and counts as completed.
                let _ = request.reply.send(Ok(row));
                shared.stats.record_completed(latency);
            }
        }
        Err(e) => {
            shared.stats.record_failed(batch.len());
            for request in batch {
                let _ = request.reply.send(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::grid_table;
    use crate::CalibrationEntry;
    use csq_core::PackedWeight;
    use csq_nn::InferOp;

    /// A tiny 3→2 linear model with a fixed calibrated grid, built
    /// without any training-side machinery.
    fn tiny_model() -> CompiledModel {
        let weight = PackedWeight {
            path: "weight".to_string(),
            codes: vec![10, -20, 30, -40, 50, -60],
            step: 0.05,
            dims: vec![2, 3],
            bits: 8.0,
        };
        let ops = vec![InferOp::Linear {
            weight: "weight".to_string(),
            in_features: 3,
            out_features: 2,
            bias: Some(vec![0.25, -0.25]),
        }];
        let calibration = vec![CalibrationEntry {
            weight_path: "weight".to_string(),
            step: 0.01,
            observed_lo: 0.0,
            observed_hi: 2.55,
            integer: true,
        }];
        CompiledModel::bind(
            "tiny".to_string(),
            vec![3],
            2,
            &ops,
            &[weight],
            Some(&grid_table(&calibration)),
        )
        .unwrap()
    }

    fn sample(seed: usize) -> Tensor {
        let base = seed as f32 * 0.07;
        Tensor::from_vec(vec![base, base + 0.5, base + 1.0], &[3])
    }

    #[test]
    fn engine_answers_match_direct_single_sample_forwards() {
        let reference = tiny_model();
        let scratch: ScratchPool<u8> = ScratchPool::new();
        let engine = Engine::start(
            tiny_model(),
            EngineConfig {
                workers: 2,
                max_batch: 4,
                batch_window: Duration::from_millis(5),
                ..EngineConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..12)
            .map(|i| engine.submit(sample(i)).unwrap())
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let got = ticket.wait().unwrap();
            let single = sample(i).reshape(&[1, 3]);
            let want = reference.forward_batch(&single, &scratch).unwrap();
            assert_eq!(got.data(), want.data(), "request {i}");
        }
        let stats = engine.stats();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.completed, 12);
        assert_eq!(stats.failed, 0);
        let served: u64 = stats
            .batch_hist
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        assert_eq!(served, 12);
    }

    #[test]
    fn bad_shapes_are_rejected_at_submission() {
        let engine = Engine::start(tiny_model(), EngineConfig::default());
        let err = engine.submit(Tensor::zeros(&[4])).unwrap_err();
        assert!(matches!(err, ServeError::BadInput { .. }));
    }

    #[test]
    fn drop_drains_pending_requests() {
        let engine = Engine::start(
            tiny_model(),
            EngineConfig {
                workers: 1,
                max_batch: 2,
                batch_window: Duration::from_millis(1),
                ..EngineConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| engine.submit(sample(i)).unwrap())
            .collect();
        drop(engine);
        for ticket in tickets {
            assert!(ticket.wait().is_ok(), "pending work must be drained");
        }
    }

    /// A deliberately expensive `n → n` linear model: one forward costs
    /// `n²` integer MACs, so a lone worker drains far slower than a
    /// tight submission loop can flood.
    fn wide_model(n: usize) -> CompiledModel {
        let codes: Vec<i32> = (0..n * n).map(|i| (i % 17) as i32 - 8).collect();
        let weight = PackedWeight {
            path: "weight".to_string(),
            codes,
            step: 0.01,
            dims: vec![n, n],
            bits: 8.0,
        };
        let ops = vec![InferOp::Linear {
            weight: "weight".to_string(),
            in_features: n,
            out_features: n,
            bias: None,
        }];
        let calibration = vec![CalibrationEntry {
            weight_path: "weight".to_string(),
            step: 0.01,
            observed_lo: 0.0,
            observed_hi: 2.55,
            integer: true,
        }];
        CompiledModel::bind(
            "wide".to_string(),
            vec![n],
            n,
            &ops,
            &[weight],
            Some(&grid_table(&calibration)),
        )
        .unwrap()
    }

    #[test]
    fn queue_capacity_is_enforced() {
        // One worker running one-sample batches of a ~1M-MAC forward:
        // the flood below finishes submitting long before the worker can
        // drain three requests, so the bounded queue must overflow.
        let n = 1024;
        let engine = Engine::start(
            wide_model(n),
            EngineConfig {
                workers: 1,
                max_batch: 1,
                batch_window: Duration::from_millis(0),
                queue_capacity: 2,
                ..EngineConfig::default()
            },
        );
        let mut tickets = Vec::new();
        let mut saw_full = false;
        for _ in 0..64 {
            match engine.submit(Tensor::from_vec(vec![0.5; n], &[n])) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_full, "bounded queue never filled");
        assert!(engine.stats().rejected >= 1);
        for ticket in tickets {
            ticket.wait().unwrap();
        }
    }
}
