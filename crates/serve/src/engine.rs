//! Micro-batching inference engine with serve-side resilience.
//!
//! The engine serves one versioned [`CompiledModel`] (hot-swappable via
//! [`Engine::swap_model`]) across a supervised pool of worker threads.
//! Callers [`Engine::submit`] single samples into a bounded queue and
//! receive a [`Ticket`]; a worker pulls the oldest request, then keeps
//! the batch open for up to `batch_window` (or until `max_batch`
//! requests arrived), fuses the batch into one `[B, C, H, W]` tensor,
//! runs a single integer forward, and scatters the logit rows back to
//! the waiting tickets.
//!
//! Batching is *safe* here — not just statistically harmless — because
//! the executor is bit-deterministic with respect to batch composition:
//! calibrated activation grids are constants and every kernel processes
//! samples independently with a fixed accumulation order, so a fused
//! forward returns exactly the rows each request would have gotten
//! alone. Tests assert this equality bit-for-bit.
//!
//! Resilience is layered on four mechanisms:
//!
//! * **Deadlines + cancellation.** [`SubmitOptions::with_deadline`]
//!   bounds a request's total time in the system. Workers skip
//!   already-expired requests before running the kernel (answering them
//!   with [`ServeError::DeadlineExceeded`]) and [`Ticket::wait`] stops
//!   blocking the moment the deadline passes — a ticket can never hang
//!   past its budget.
//! * **Admission control.** The bounded queue load-sheds with
//!   [`ServeError::QueueFull`] when it saturates, and an optional
//!   per-tenant token bucket ([`TenantQuota`]) rejects over-quota
//!   tenants with [`ServeError::RateLimited`] before they touch the
//!   queue. Shed/rejected/expired counts are in [`EngineStats`], with
//!   per-tenant breakdowns.
//! * **Panic containment + supervision.** The kernel runs under
//!   `catch_unwind`, so a poisoned batch fails only its own tickets
//!   ([`ServeError::WorkerFailed`]) and the worker survives. If a
//!   worker thread dies anyway, a supervisor thread joins the corpse,
//!   restarts a replacement under the same id, and counts the restart;
//!   tickets of the batch that died observe `WorkerFailed` through the
//!   dropped reply channel instead of a hang.
//! * **Hot-swap.** [`Engine::swap_model`] atomically replaces the
//!   served model between batches. In-flight batches finish on the
//!   version they started with — no request is dropped — and the
//!   replacement must match the serving contract (input shape and
//!   class count), otherwise [`ServeError::SwapIncompatible`].
//!
//! Deterministic chaos (worker kills, batch poisoning, injected
//! latency) is driven by a seeded [`ChaosPlan`] via
//! [`Engine::start_with_chaos`]; `tests/serve_chaos.rs` asserts that
//! chaos never changes an answered request's bits and never turns an
//! error into a hang.

use crate::exec::{CompiledModel, ServeError};
use crate::metrics::{EngineStats, StatsInner};
use csq_core::fault::ChaosPlan;
use csq_obs::{event, span};
use csq_tensor::par::{self, ScratchPool};
use csq_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Steady-state admission quota for one tenant: a token bucket holding
/// at most `burst` tokens, refilled at `rate_per_sec`, one token per
/// accepted request. `rate_per_sec = 0` makes the bucket a fixed
/// budget of `burst` requests (useful for deterministic tests).
#[derive(Debug, Clone, Copy)]
pub struct TenantQuota {
    /// Tokens added per second (sustained requests/second).
    pub rate_per_sec: f64,
    /// Bucket capacity (largest tolerated burst). Values below 1 admit
    /// nothing.
    pub burst: f64,
}

/// Per-request submission options; the default is no deadline and no
/// tenant (anonymous, quota-exempt traffic).
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Total time budget measured from submission. When it elapses the
    /// request is answered with [`ServeError::DeadlineExceeded`] —
    /// by a worker skipping the expired request, or by
    /// [`Ticket::wait`] giving up — whichever happens first.
    pub deadline: Option<Duration>,
    /// Tenant this request is accounted to. Required for token-bucket
    /// admission control and per-tenant stats breakdowns.
    pub tenant: Option<String>,
}

impl SubmitOptions {
    /// Options with a deadline of `budget` from submission time.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> SubmitOptions {
        self.deadline = Some(budget);
        self
    }

    /// Options accounted to (and rate-limited as) `tenant`.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> SubmitOptions {
        self.tenant = Some(tenant.into());
        self
    }
}

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads pulling batches off the queue (minimum 1).
    pub workers: usize,
    /// Largest number of requests fused into one forward (minimum 1).
    pub max_batch: usize,
    /// How long a worker holds a non-full batch open waiting for more
    /// requests before running it anyway.
    pub batch_window: Duration,
    /// Bounded queue size; submissions beyond this are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Data-parallel threads *inside* one fused forward (minimum 1).
    /// Keep at 1 unless workers are fewer than cores.
    pub intra_op_threads: usize,
    /// Token-bucket quota applied independently to every tenant that
    /// submits with one. `None` disables admission control; requests
    /// without a tenant always bypass it.
    pub tenant_quota: Option<TenantQuota>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            queue_capacity: 256,
            intra_op_threads: 1,
            tenant_quota: None,
        }
    }
}

/// One pending request in the submission queue.
struct Request {
    input: Tensor,
    enqueued: Instant,
    deadline: Option<Instant>,
    tenant: Option<String>,
    /// Process-unique id propagated through trace events and surfaced
    /// on the caller's [`Ticket`].
    trace_id: u64,
    reply: mpsc::Sender<Result<Tensor, ServeError>>,
}

/// Comma-joined trace ids of a batch, for trace/postmortem payloads.
fn batch_trace_ids(requests: &[Request]) -> String {
    let mut out = String::new();
    for (i, r) in requests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.trace_id.to_string());
    }
    out
}

impl Request {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// The versioned model container workers read through.
struct ModelSlot {
    version: u64,
    model: Arc<CompiledModel>,
}

/// One tenant's token-bucket state.
struct TokenBucket {
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    /// Refills for elapsed time and takes one token if available.
    fn admit(&mut self, quota: &TenantQuota, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + elapsed * quota.rate_per_sec).min(quota.burst);
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// State shared between the submission side, the workers, and the
/// supervisor.
struct Shared {
    /// Serving contract, fixed at start (swaps must match it).
    input_dims: Vec<usize>,
    model: RwLock<ModelSlot>,
    cfg: EngineConfig,
    queue: Mutex<VecDeque<Request>>,
    notify: Condvar,
    shutdown: AtomicBool,
    stats: StatsInner,
    /// Global batch sequence number (keys chaos poison/delay entries).
    batch_seq: AtomicU64,
    /// Deterministic fault schedule, when running under chaos.
    chaos: Option<Mutex<ChaosPlan>>,
    /// Token buckets, lazily created per tenant.
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl Shared {
    /// The model new batches will run against (in-flight batches keep
    /// the `Arc` they already cloned).
    fn current_model(&self) -> Arc<CompiledModel> {
        match self.model.read() {
            Ok(slot) => Arc::clone(&slot.model),
            Err(poisoned) => Arc::clone(&poisoned.into_inner().model),
        }
    }

    fn model_version(&self) -> u64 {
        match self.model.read() {
            Ok(slot) => slot.version,
            Err(poisoned) => poisoned.into_inner().version,
        }
    }
}

/// Locks the queue, recovering the guard if a worker panicked while
/// holding it (the queue itself is always in a consistent state).
fn lock_queue(shared: &Shared) -> MutexGuard<'_, VecDeque<Request>> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A handle for one in-flight request; redeem it with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<Tensor, ServeError>>,
    enqueued: Instant,
    deadline: Option<Instant>,
    tenant: Option<String>,
    trace_id: u64,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("trace_id", &self.trace_id)
            .field("tenant", &self.tenant)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the engine answers, returning the logits `[K]` for
    /// the submitted sample (or the error the request failed with).
    ///
    /// With a deadline, blocks *at most* until the deadline and then
    /// returns [`ServeError::DeadlineExceeded`]. Without one, returns
    /// as soon as the engine answers; if the worker holding this
    /// request died, the dropped reply channel surfaces as
    /// [`ServeError::WorkerFailed`] — never a hang, and never
    /// misreported as a clean [`ServeError::Closed`] shutdown.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        let disconnected = || {
            Err(ServeError::WorkerFailed {
                detail: "reply channel disconnected (worker died mid-batch)".to_string(),
            })
        };
        match self.deadline {
            None => match self.rx.recv() {
                Ok(result) => result,
                Err(_) => disconnected(),
            },
            Some(deadline) => {
                let budget = deadline.saturating_duration_since(Instant::now());
                match self.rx.recv_timeout(budget) {
                    Ok(result) => result,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        self.shared.stats.record_expired(self.tenant.as_deref());
                        Err(ServeError::DeadlineExceeded)
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => disconnected(),
                }
            }
        }
    }

    /// When the request entered the queue (for caller-side latency
    /// accounting).
    pub fn enqueued_at(&self) -> Instant {
        self.enqueued
    }

    /// Process-unique trace id of this request. Every trace event the
    /// request appears in (submit, batch, reply, chaos postmortems)
    /// carries the same id, so a caller can correlate its answer with
    /// the flight-recorder dump of a failure.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }
}

/// A running micro-batching inference engine over one compiled model.
///
/// Dropping the engine shuts it down: workers drain the queue, answer
/// everything still pending, and are joined (via the supervisor) before
/// `drop` returns.
pub struct Engine {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl Engine {
    /// Starts worker threads over `model` with the given configuration
    /// (zero-valued knobs are normalized up to 1).
    pub fn start(model: CompiledModel, cfg: EngineConfig) -> Engine {
        Engine::start_inner(model, cfg, None)
    }

    /// Starts an engine that consults a deterministic [`ChaosPlan`] at
    /// batch boundaries (worker kills, batch poisoning, injected
    /// latency). Production code wants [`Engine::start`]; this is the
    /// entry point for resilience tests and chaos drills.
    pub fn start_with_chaos(model: CompiledModel, cfg: EngineConfig, chaos: ChaosPlan) -> Engine {
        Engine::start_inner(model, cfg, Some(chaos))
    }

    fn start_inner(model: CompiledModel, cfg: EngineConfig, chaos: Option<ChaosPlan>) -> Engine {
        let cfg = EngineConfig {
            workers: cfg.workers.max(1),
            max_batch: cfg.max_batch.max(1),
            batch_window: cfg.batch_window,
            queue_capacity: cfg.queue_capacity.max(1),
            intra_op_threads: cfg.intra_op_threads.max(1),
            tenant_quota: cfg.tenant_quota,
        };
        let shared = Arc::new(Shared {
            input_dims: model.input_dims().to_vec(),
            stats: StatsInner::new(cfg.max_batch),
            model: RwLock::new(ModelSlot {
                version: 1,
                model: Arc::new(model),
            }),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch_seq: AtomicU64::new(0),
            chaos: chaos.map(Mutex::new),
            buckets: Mutex::new(HashMap::new()),
        });
        let (exit_tx, exit_rx) = mpsc::channel();
        let handles: Vec<Option<JoinHandle<()>>> = (0..shared.cfg.workers)
            .map(|id| Some(spawn_worker(Arc::clone(&shared), id, exit_tx.clone())))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_loop(&shared, &exit_rx, &exit_tx, handles))
        };
        Engine {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Enqueues one sample (shape = the model's per-sample
    /// [`CompiledModel::input_dims`], no batch axis) with default
    /// options (no deadline, no tenant) and returns a [`Ticket`] to
    /// redeem for its logits.
    ///
    /// Fails fast with [`ServeError::BadInput`] on a shape mismatch and
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity.
    pub fn submit(&self, input: Tensor) -> Result<Ticket, ServeError> {
        self.submit_with(input, SubmitOptions::default())
    }

    /// Enqueues one sample with explicit [`SubmitOptions`] (deadline,
    /// tenant). On top of the [`Engine::submit`] failures, a tenanted
    /// request over its [`TenantQuota`] fails fast with
    /// [`ServeError::RateLimited`].
    pub fn submit_with(&self, input: Tensor, opts: SubmitOptions) -> Result<Ticket, ServeError> {
        if input.dims() != self.shared.input_dims {
            return Err(ServeError::BadInput {
                expected: self.shared.input_dims.clone(),
                actual: input.dims().to_vec(),
            });
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        let enqueued = Instant::now();
        if let (Some(quota), Some(tenant)) = (&self.shared.cfg.tenant_quota, &opts.tenant) {
            let admitted = {
                let mut buckets = match self.shared.buckets.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                buckets
                    .entry(tenant.clone())
                    .or_insert_with(|| TokenBucket {
                        tokens: quota.burst,
                        refilled: enqueued,
                    })
                    .admit(quota, enqueued)
            };
            if !admitted {
                self.shared.stats.record_rejected(Some(tenant));
                return Err(ServeError::RateLimited {
                    tenant: tenant.clone(),
                });
            }
        }
        let deadline = opts.deadline.and_then(|d| enqueued.checked_add(d));
        let trace_id = csq_obs::trace::next_trace_id();
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = lock_queue(&self.shared);
            if queue.len() >= self.shared.cfg.queue_capacity {
                self.shared.stats.record_shed(opts.tenant.as_deref());
                return Err(ServeError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                });
            }
            queue.push_back(Request {
                input,
                enqueued,
                deadline,
                tenant: opts.tenant.clone(),
                trace_id,
                reply: tx,
            });
            self.shared.stats.record_submitted(opts.tenant.as_deref());
        }
        self.shared.notify.notify_one();
        event!(
            "engine",
            "submit",
            "trace_id" => trace_id,
            "tenant" => opts.tenant.as_deref().unwrap_or("-"),
        );
        Ok(Ticket {
            rx,
            enqueued,
            deadline,
            tenant: opts.tenant,
            trace_id,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Convenience blocking call: [`Engine::submit`] + [`Ticket::wait`].
    pub fn infer(&self, input: Tensor) -> Result<Tensor, ServeError> {
        self.submit(input)?.wait()
    }

    /// The compiled model new batches run against.
    pub fn model(&self) -> Arc<CompiledModel> {
        self.shared.current_model()
    }

    /// Version of the currently served model (starts at 1; each
    /// successful [`Engine::swap_model`] bumps it).
    pub fn model_version(&self) -> u64 {
        self.shared.model_version()
    }

    /// The per-sample input shape this engine's serving contract is
    /// fixed to (swaps must match it).
    pub fn input_dims(&self) -> &[usize] {
        &self.shared.input_dims
    }

    /// Requests currently waiting in the bounded queue. A cheap load
    /// signal for routers choosing between replicas.
    pub fn queue_len(&self) -> usize {
        lock_queue(&self.shared).len()
    }

    /// Atomically replaces the served model under live traffic,
    /// returning the new version.
    ///
    /// The swap happens *between* batches: requests already fused into
    /// a forward finish on the model version they started with, queued
    /// requests run on the replacement — no in-flight request is
    /// dropped. The replacement must match the serving contract (input
    /// shape and class count) or the swap is refused with
    /// [`ServeError::SwapIncompatible`] and the old model keeps
    /// serving.
    pub fn swap_model(&self, model: CompiledModel) -> Result<u64, ServeError> {
        let mut slot = match self.shared.model.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let compatible = model.input_dims() == self.shared.input_dims
            && model.num_classes() == slot.model.num_classes();
        if !compatible {
            return Err(ServeError::SwapIncompatible {
                expected: (self.shared.input_dims.clone(), slot.model.num_classes()),
                actual: (model.input_dims().to_vec(), model.num_classes()),
            });
        }
        slot.version += 1;
        slot.model = Arc::new(model);
        self.shared.stats.record_swap();
        Ok(slot.version)
    }

    /// Snapshot of the serving metrics.
    pub fn stats(&self) -> EngineStats {
        self.shared.stats.snapshot(self.shared.model_version())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify.notify_all();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

/// Messages workers send the supervisor when their thread ends.
struct WorkerExit {
    id: usize,
    panicked: bool,
}

/// Spawns one worker thread. The whole worker loop runs under
/// `catch_unwind` so an abrupt death (a panic that escaped batch-level
/// containment, e.g. a chaos kill) is reported to the supervisor
/// instead of silently shrinking the pool.
fn spawn_worker(shared: Arc<Shared>, id: usize, exits: mpsc::Sender<WorkerExit>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, id)));
        let _ = exits.send(WorkerExit {
            id,
            panicked: outcome.is_err(),
        });
    })
}

/// Joins dead workers and restarts the ones that panicked (unless the
/// engine is shutting down), keeping the pool at full strength. Exits
/// once every worker has ended without needing a replacement.
fn supervisor_loop(
    shared: &Arc<Shared>,
    exit_rx: &mpsc::Receiver<WorkerExit>,
    exit_tx: &mpsc::Sender<WorkerExit>,
    mut handles: Vec<Option<JoinHandle<()>>>,
) {
    let mut alive = handles.iter().filter(|h| h.is_some()).count();
    while alive > 0 {
        let exit = match exit_rx.recv() {
            Ok(exit) => exit,
            Err(_) => break,
        };
        if let Some(handle) = handles.get_mut(exit.id).and_then(Option::take) {
            let _ = handle.join();
        }
        if exit.panicked && !shared.shutdown.load(Ordering::Acquire) {
            shared.stats.record_worker_restart();
            event!("engine", "worker_restart", "worker" => exit.id);
            let _ = csq_obs::flight::dump_global("worker_restart");
            if let Some(slot) = handles.get_mut(exit.id) {
                *slot = Some(spawn_worker(Arc::clone(shared), exit.id, exit_tx.clone()));
            }
        } else {
            alive -= 1;
        }
    }
    // A restart racing shutdown can leave stragglers; join them all.
    for handle in handles.iter_mut().filter_map(Option::take) {
        let _ = handle.join();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let scratch: ScratchPool<u8> = ScratchPool::new();
    // Per-worker batch ordinal; restarts count from 0 again, which is
    // what keys ChaosPlan worker-kill entries deterministically.
    let mut ordinal: u64 = 0;
    while let Some(batch) = collect_batch(shared) {
        run_batch(shared, worker, ordinal, batch, &scratch);
        ordinal += 1;
    }
}

/// Pops the oldest request, then holds the batch open until it is full,
/// the batch window elapses, or shutdown begins. Returns `None` only at
/// shutdown with an empty queue, so pending requests are always drained.
fn collect_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut queue = lock_queue(shared);
    loop {
        if let Some(first) = queue.pop_front() {
            let mut batch = vec![first];
            let deadline = Instant::now() + shared.cfg.batch_window;
            while batch.len() < shared.cfg.max_batch {
                if let Some(next) = queue.pop_front() {
                    batch.push(next);
                    continue;
                }
                let now = Instant::now();
                if now >= deadline || shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let (guard, _timed_out) = match shared.notify.wait_timeout(queue, deadline - now) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                queue = guard;
            }
            return Some(batch);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        queue = match shared.notify.wait(queue) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

/// Best-effort human-readable description of a panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Skips expired requests, fuses the rest into one tensor, runs a
/// single forward under panic containment, and scatters the logit rows
/// back to the tickets.
fn run_batch(
    shared: &Shared,
    worker: usize,
    ordinal: u64,
    batch: Vec<Request>,
    scratch: &ScratchPool<u8>,
) {
    let global = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
    shared.stats.record_dequeued(batch.len());
    let _batch_span = span!(
        "engine",
        "batch",
        "worker" => worker,
        "ordinal" => ordinal,
        "global" => global,
        "size" => batch.len(),
        "trace_ids" => batch_trace_ids(&batch),
    );

    // Deterministic chaos, consulted once per batch. A kill unwinds
    // *outside* the containment boundary below: the batch's reply
    // senders drop, its tickets observe `WorkerFailed`, and the
    // supervisor restarts the worker.
    let mut poisoned = false;
    if let Some(chaos) = &shared.chaos {
        let (kill, delay, poison) = {
            let mut plan = match chaos.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            (
                plan.take_worker_kill(worker, ordinal),
                plan.take_batch_delay(global),
                plan.take_batch_poison(global),
            )
        };
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        if kill {
            event!(
                "engine",
                "chaos_kill",
                "worker" => worker,
                "ordinal" => ordinal,
                "global" => global,
                "trace_ids" => batch_trace_ids(&batch),
            );
            resume_unwind(Box::new(format!(
                "chaos: worker {worker} killed at its batch {ordinal}"
            )));
        }
        poisoned = poison;
    }

    // Deadline pass: a request that already ran out of time gets its
    // typed error now instead of wasting kernel work.
    let now = Instant::now();
    let (live, expired): (Vec<Request>, Vec<Request>) =
        batch.into_iter().partition(|r| !r.expired(now));
    for request in expired {
        // If the waiter already timed out (and recorded the expiry),
        // the send fails and nothing is double-counted.
        if request
            .reply
            .send(Err(ServeError::DeadlineExceeded))
            .is_ok()
        {
            shared.stats.record_expired(request.tenant.as_deref());
        }
        event!(
            "engine",
            "reply",
            "trace_id" => request.trace_id,
            "outcome" => "expired",
        );
    }
    if live.is_empty() {
        return;
    }

    shared.stats.record_batch(live.len());
    // Batches pin the model Arc they start with: a concurrent swap
    // changes what *later* batches run, never this one.
    let model = shared.current_model();
    let per_sample: usize = model.input_dims().iter().product();
    let mut data = Vec::with_capacity(live.len() * per_sample);
    for request in &live {
        data.extend_from_slice(request.input.data());
    }
    let mut dims = Vec::with_capacity(model.input_dims().len() + 1);
    dims.push(live.len());
    dims.extend_from_slice(model.input_dims());
    let x = Tensor::from_vec(data, &dims);

    // Containment boundary: a panicking kernel (or chaos poison) fails
    // only this batch's tickets; the worker thread survives.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if poisoned {
            resume_unwind(Box::new(format!("chaos: poisoned batch {global}")));
        }
        par::with_threads(shared.cfg.intra_op_threads, || {
            model.forward_batch(&x, scratch)
        })
    }));
    match outcome {
        Ok(Ok(y)) => {
            let k = model.num_classes();
            for (i, request) in live.into_iter().enumerate() {
                let row = Tensor::from_vec(y.data()[i * k..(i + 1) * k].to_vec(), &[k]);
                let latency = request.enqueued.elapsed();
                // A dropped ticket just discards the row; the work was
                // still done and counts as completed. Recorded *before*
                // the reply: a caller woken by `Ticket::wait` must see
                // its own request in the stats.
                shared
                    .stats
                    .record_completed(latency, request.tenant.as_deref());
                let _ = request.reply.send(Ok(row));
                event!(
                    "engine",
                    "reply",
                    "trace_id" => request.trace_id,
                    "outcome" => "completed",
                );
            }
        }
        Ok(Err(e)) => {
            for request in live {
                shared.stats.record_failed(request.tenant.as_deref());
                let _ = request.reply.send(Err(e.clone()));
                event!(
                    "engine",
                    "reply",
                    "trace_id" => request.trace_id,
                    "outcome" => "failed",
                );
            }
        }
        Err(payload) => {
            shared.stats.record_panic_contained();
            let detail = panic_detail(payload.as_ref());
            event!(
                "engine",
                "panic_contained",
                "worker" => worker,
                "global" => global,
                "detail" => detail,
                "trace_ids" => batch_trace_ids(&live),
            );
            for request in live {
                shared.stats.record_failed(request.tenant.as_deref());
                let _ = request.reply.send(Err(ServeError::WorkerFailed {
                    detail: detail.clone(),
                }));
                event!(
                    "engine",
                    "reply",
                    "trace_id" => request.trace_id,
                    "outcome" => "failed",
                );
            }
            let _ = csq_obs::flight::dump_global("panic_contained");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::grid_table;
    use crate::CalibrationEntry;
    use csq_core::PackedWeight;
    use csq_nn::InferOp;

    /// A tiny 3→2 linear model with a fixed calibrated grid, built
    /// without any training-side machinery. `offset` shifts every
    /// weight code, giving distinguishable model "versions" for swap
    /// tests.
    fn tiny_model_with(offset: i32) -> CompiledModel {
        let weight = PackedWeight {
            path: "weight".to_string(),
            codes: vec![10, -20, 30, -40, 50, -60]
                .into_iter()
                .map(|c| c + offset)
                .collect(),
            step: 0.05,
            dims: vec![2, 3],
            bits: 8.0,
        };
        let ops = vec![InferOp::Linear {
            weight: "weight".to_string(),
            in_features: 3,
            out_features: 2,
            bias: Some(vec![0.25, -0.25]),
        }];
        let calibration = vec![CalibrationEntry {
            weight_path: "weight".to_string(),
            step: 0.01,
            observed_lo: 0.0,
            observed_hi: 2.55,
            integer: true,
        }];
        CompiledModel::bind(
            "tiny".to_string(),
            vec![3],
            2,
            &ops,
            &[weight],
            Some(&grid_table(&calibration)),
        )
        .unwrap()
    }

    fn tiny_model() -> CompiledModel {
        tiny_model_with(0)
    }

    fn sample(seed: usize) -> Tensor {
        let base = seed as f32 * 0.07;
        Tensor::from_vec(vec![base, base + 0.5, base + 1.0], &[3])
    }

    #[test]
    fn engine_answers_match_direct_single_sample_forwards() {
        let reference = tiny_model();
        let scratch: ScratchPool<u8> = ScratchPool::new();
        let engine = Engine::start(
            tiny_model(),
            EngineConfig {
                workers: 2,
                max_batch: 4,
                batch_window: Duration::from_millis(5),
                ..EngineConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..12).map(|i| engine.submit(sample(i)).unwrap()).collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let got = ticket.wait().unwrap();
            let single = sample(i).reshape(&[1, 3]);
            let want = reference.forward_batch(&single, &scratch).unwrap();
            assert_eq!(got.data(), want.data(), "request {i}");
        }
        let stats = engine.stats();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.completed, 12);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.model_version, 1);
        let served: u64 = stats
            .batch_hist
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        assert_eq!(served, 12);
    }

    #[test]
    fn bad_shapes_are_rejected_at_submission() {
        let engine = Engine::start(tiny_model(), EngineConfig::default());
        let err = engine.submit(Tensor::zeros(&[4])).unwrap_err();
        assert!(matches!(err, ServeError::BadInput { .. }));
    }

    #[test]
    fn drop_drains_pending_requests() {
        let engine = Engine::start(
            tiny_model(),
            EngineConfig {
                workers: 1,
                max_batch: 2,
                batch_window: Duration::from_millis(1),
                ..EngineConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..6).map(|i| engine.submit(sample(i)).unwrap()).collect();
        drop(engine);
        for ticket in tickets {
            assert!(ticket.wait().is_ok(), "pending work must be drained");
        }
    }

    /// A deliberately expensive `n → n` linear model: one forward costs
    /// `n²` integer MACs, so a lone worker drains far slower than a
    /// tight submission loop can flood.
    fn wide_model(n: usize) -> CompiledModel {
        let codes: Vec<i32> = (0..n * n).map(|i| (i % 17) as i32 - 8).collect();
        let weight = PackedWeight {
            path: "weight".to_string(),
            codes,
            step: 0.01,
            dims: vec![n, n],
            bits: 8.0,
        };
        let ops = vec![InferOp::Linear {
            weight: "weight".to_string(),
            in_features: n,
            out_features: n,
            bias: None,
        }];
        let calibration = vec![CalibrationEntry {
            weight_path: "weight".to_string(),
            step: 0.01,
            observed_lo: 0.0,
            observed_hi: 2.55,
            integer: true,
        }];
        CompiledModel::bind(
            "wide".to_string(),
            vec![n],
            n,
            &ops,
            &[weight],
            Some(&grid_table(&calibration)),
        )
        .unwrap()
    }

    #[test]
    fn queue_capacity_is_enforced_and_counted_as_shed() {
        // One worker running one-sample batches of a ~1M-MAC forward:
        // the flood below finishes submitting long before the worker can
        // drain three requests, so the bounded queue must overflow.
        let n = 1024;
        let engine = Engine::start(
            wide_model(n),
            EngineConfig {
                workers: 1,
                max_batch: 1,
                batch_window: Duration::from_millis(0),
                queue_capacity: 2,
                ..EngineConfig::default()
            },
        );
        let mut tickets = Vec::new();
        let mut saw_full = false;
        for _ in 0..64 {
            match engine.submit(Tensor::from_vec(vec![0.5; n], &[n])) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_full, "bounded queue never filled");
        assert!(engine.stats().shed >= 1);
        for ticket in tickets {
            ticket.wait().unwrap();
        }
    }

    #[test]
    fn engine_survives_queue_lock_poisoning() {
        let reference = tiny_model();
        let scratch: ScratchPool<u8> = ScratchPool::new();
        let engine = Engine::start(
            tiny_model(),
            EngineConfig {
                workers: 1,
                batch_window: Duration::from_millis(1),
                ..EngineConfig::default()
            },
        );
        // Poison the queue mutex: panic (quietly, via resume_unwind)
        // while holding the guard.
        let shared = Arc::clone(&engine.shared);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = shared.queue.lock().unwrap();
            resume_unwind(Box::new("poisoning the queue lock"));
        }));
        assert!(shared.queue.lock().is_err(), "mutex must now be poisoned");
        // Both the submit path and the worker path must recover the
        // guard and keep serving.
        let got = engine.infer(sample(3)).unwrap();
        let want = reference
            .forward_batch(&sample(3).reshape(&[1, 3]), &scratch)
            .unwrap();
        assert_eq!(got.data(), want.data());
        drop(engine);
    }

    #[test]
    fn zero_deadline_expires_with_typed_error() {
        let engine = Engine::start(
            tiny_model(),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let ticket = engine
            .submit_with(
                sample(0),
                SubmitOptions::default().with_deadline(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
        // The expiry is recorded (by the waiter timing out, the worker
        // skipping the expired request, or — in a narrow race — both).
        assert!(engine.stats().expired >= 1);
        // A fresh request without a deadline still gets served.
        assert!(engine.infer(sample(1)).is_ok());
    }

    #[test]
    fn tenant_token_bucket_rejects_over_quota() {
        let engine = Engine::start(
            tiny_model(),
            EngineConfig {
                workers: 1,
                tenant_quota: Some(TenantQuota {
                    rate_per_sec: 0.0,
                    burst: 2.0,
                }),
                ..EngineConfig::default()
            },
        );
        let opts = || SubmitOptions::default().with_tenant("acme");
        let t1 = engine.submit_with(sample(0), opts()).unwrap();
        let t2 = engine.submit_with(sample(1), opts()).unwrap();
        match engine.submit_with(sample(2), opts()) {
            Err(ServeError::RateLimited { tenant }) => assert_eq!(tenant, "acme"),
            other => panic!("third request must be rate limited, got {other:?}"),
        }
        // Anonymous traffic bypasses the quota entirely.
        assert!(engine.infer(sample(3)).is_ok());
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        let stats = engine.stats();
        assert_eq!(stats.rejected, 1);
        let acme = &stats.tenants["acme"];
        assert_eq!(acme.submitted, 2);
        assert_eq!(acme.rejected, 1);
        assert_eq!(acme.completed, 2);
    }

    /// Satellite drill: hot-swap while several threads are submitting
    /// flat out. No request may hang, none may observe `Closed` (the
    /// engine never shut down), every answer must be bit-identical to
    /// one of the two versions' single-request answers, and once the
    /// swap has happened new submissions must serve the new model.
    #[test]
    fn swap_under_concurrent_submission_load_is_safe() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 50;
        const SAMPLES: usize = 8;
        let scratch: ScratchPool<u8> = ScratchPool::new();
        let reference = |offset: i32| -> Vec<Vec<f32>> {
            let model = tiny_model_with(offset);
            (0..SAMPLES)
                .map(|i| {
                    model
                        .forward_batch(&sample(i).reshape(&[1, 3]), &scratch)
                        .unwrap()
                        .data()
                        .to_vec()
                })
                .collect()
        };
        let want_v1 = reference(0);
        let want_v2 = reference(7);

        let engine = Engine::start(
            tiny_model_with(0),
            EngineConfig {
                workers: 2,
                max_batch: 4,
                batch_window: Duration::from_millis(1),
                queue_capacity: 4096,
                ..EngineConfig::default()
            },
        );
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let engine = &engine;
                let want_v1 = &want_v1;
                let want_v2 = &want_v2;
                s.spawn(move || {
                    for k in 0..PER_THREAD {
                        let i = (t + k) % SAMPLES;
                        let got = engine
                            .infer(sample(i))
                            .unwrap_or_else(|e| panic!("request {t}/{k} failed mid-swap: {e}"));
                        assert!(
                            got.data() == &want_v1[i][..] || got.data() == &want_v2[i][..],
                            "thread {t} request {k}: answer matches neither version"
                        );
                    }
                });
            }
            // Swap mid-stream, while the submitters above are running.
            std::thread::sleep(Duration::from_millis(2));
            assert_eq!(engine.swap_model(tiny_model_with(7)).unwrap(), 2);
        });
        // Post-swap, answers must match the new model's single-request
        // path exactly.
        for (i, want) in want_v2.iter().enumerate() {
            let got = engine.infer(sample(i)).unwrap();
            assert_eq!(got.data(), &want[..], "post-swap sample {i}");
        }
        let stats = engine.stats();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.model_version, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!(
            stats.completed,
            (THREADS * PER_THREAD + SAMPLES) as u64,
            "every submitted request must have been answered"
        );
    }

    #[test]
    fn swap_model_serves_new_version_and_validates_contract() {
        let scratch: ScratchPool<u8> = ScratchPool::new();
        let engine = Engine::start(
            tiny_model(),
            EngineConfig {
                workers: 1,
                batch_window: Duration::from_millis(1),
                ..EngineConfig::default()
            },
        );
        assert_eq!(engine.model_version(), 1);
        let before = engine.infer(sample(2)).unwrap();
        let want_before = tiny_model()
            .forward_batch(&sample(2).reshape(&[1, 3]), &scratch)
            .unwrap();
        assert_eq!(before.data(), want_before.data());

        // Incompatible replacement (4→4) is refused; v1 keeps serving.
        let err = engine.swap_model(wide_model(4)).unwrap_err();
        assert!(matches!(err, ServeError::SwapIncompatible { .. }));
        assert_eq!(engine.model_version(), 1);

        // Compatible replacement flips atomically to v2.
        assert_eq!(engine.swap_model(tiny_model_with(7)).unwrap(), 2);
        assert_eq!(engine.model_version(), 2);
        let after = engine.infer(sample(2)).unwrap();
        let want_after = tiny_model_with(7)
            .forward_batch(&sample(2).reshape(&[1, 3]), &scratch)
            .unwrap();
        assert_eq!(after.data(), want_after.data());
        assert_eq!(engine.stats().swaps, 1);
        assert_eq!(engine.stats().model_version, 2);
    }
}
