//! Post-training activation calibration.
//!
//! The integer kernels quantize activations to unsigned 8-bit codes on a
//! uniform grid `[0, 255·step]`. If each request derived `step` from its
//! own maximum, two copies of the same image would produce different
//! codes depending on batch composition, and batched inference would not
//! be bit-identical to single-request inference. Calibration fixes the
//! grid once, offline: a small sample set is run through the *float*
//! reference path and the observed input range of every weighted op is
//! frozen into a per-op step.
//!
//! Ops whose observed input includes negative values (the raw-image stem
//! before the first ReLU) cannot be represented by unsigned codes; they
//! are marked `integer = false` and permanently served by the exact
//! float fallback on the unpacked weights — the usual "first layer stays
//! high precision" deployment compromise.
//!
//! Calibration is deterministic: one serial forward over the sample
//! batch, per-op ranges folded in a fixed order.

use crate::exec::{ActGrid, CompiledModel, ServeError};
use csq_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Margin below zero tolerated before an op is declared non-integer
/// (absorbs float rounding in an otherwise non-negative activation).
const NEGATIVE_TOLERANCE: f32 = 1e-6;

/// Smallest permissible calibrated step (guards against an op whose
/// sample inputs were identically zero).
const MIN_STEP: f32 = 1e-8;

/// The frozen activation grid for one weighted op, recorded in the
/// `.csqm` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationEntry {
    /// Path of the weight tensor whose op this grid feeds
    /// (e.g. `"4.main.0.weight"`).
    pub weight_path: String,
    /// Calibrated quantization step; codes cover `[0, 255·step]`.
    pub step: f32,
    /// Smallest activation value observed entering the op.
    pub observed_lo: f32,
    /// Largest activation value observed entering the op.
    pub observed_hi: f32,
    /// Whether the op runs on the integer kernels (`false`: observed
    /// range includes negatives, op is served by the float fallback).
    pub integer: bool,
}

/// Runs the calibration sample batch `[S, C, H, W]` through `model`'s
/// float path and freezes one activation grid per weighted op, in plan
/// order.
///
/// `model` must be an *uncalibrated* [`CompiledModel`] (every weighted
/// op on the float path); [`crate::ModelArtifact::export`] arranges
/// this. An empty sample batch is rejected as
/// [`ServeError::BadInput`].
pub fn calibrate(
    model: &CompiledModel,
    samples: &Tensor,
) -> Result<Vec<CalibrationEntry>, ServeError> {
    let mut ranges: Vec<(String, f32, f32)> = Vec::new();
    model.forward_observe(samples, &mut |path, lo, hi| {
        ranges.push((path.to_string(), lo, hi));
    })?;
    Ok(ranges
        .into_iter()
        .map(|(weight_path, lo, hi)| CalibrationEntry {
            weight_path,
            step: (hi.max(0.0) / 255.0).max(MIN_STEP),
            observed_lo: lo,
            observed_hi: hi,
            integer: lo >= -NEGATIVE_TOLERANCE,
        })
        .collect())
}

/// Lowers calibration entries to the executor's lookup table
/// (weight path → activation grid).
pub(crate) fn grid_table(entries: &[CalibrationEntry]) -> HashMap<String, ActGrid> {
    entries
        .iter()
        .map(|e| {
            (
                e.weight_path.clone(),
                ActGrid {
                    step: e.step,
                    integer: e.integer,
                },
            )
        })
        .collect()
}
