//! Compiled inference executor: binds an exported op plan to packed
//! weights and calibrated activation steps, then runs batched forwards.
//!
//! A [`CompiledModel`] is immutable after construction, so a serving
//! engine can share one instance across worker threads behind an `Arc`.
//! Two execution modes exist over the same plan:
//!
//! * **Integer mode** ([`CompiledModel::forward_batch`]) — the deployment
//!   path. Inputs to each weighted op are quantized to 8-bit codes with
//!   that op's *calibrated* step and the op runs on one of two exact
//!   integer kernel classes, chosen per op by a deterministic
//!   shape×bit-width selector (`csq_core::bitplane::select_kernel`):
//!   the dense integer kernels (`i64` accumulation, one float scale per
//!   output) or the u64-packed **bit-plane** AND/popcount kernels,
//!   whose weight lanes are transposed once at bind time
//!   ([`BitplaneWeight`]) so a 3-bit conv costs ~3 bitwise passes
//!   instead of dense multiplies. Both classes are bit-exact against
//!   each other, so the choice never changes an answer — only its
//!   latency ([`KernelPolicy`] can pin a class for A/B checks). Ops
//!   whose calibrated input range dips below zero (the raw-image stem)
//!   fall back to exact float arithmetic on the unpacked weights — the
//!   standard "keep the first layer in higher precision" deployment
//!   practice.
//! * **Float mode** ([`CompiledModel::forward_float`]) — the reference
//!   path used by calibration and accuracy-parity checks: identical
//!   dataflow, unpacked (bit-exact) weights, no activation quantization.
//!
//! Every kernel in both modes processes samples independently with a
//! fixed accumulation order, and the calibrated steps are constants, so
//! a batched forward is bit-identical to running each sample alone —
//! the property the engine's micro-batching relies on.

use csq_core::bitplane::{
    bitplane_conv2d, bitplane_linear, select_kernel, BitplaneWeight, KernelChoice, Routine,
    WeightedOpKind,
};
use csq_core::qinfer::{
    conv2d_integer, depthwise_conv2d_integer, linear_integer, QinferError, QuantizedActivations,
};
use csq_core::PackedWeight;
use csq_nn::InferOp;
use csq_tensor::conv::{conv2d, depthwise_conv2d, ConvSpec};
use csq_tensor::par::ScratchPool;
use csq_tensor::{pool, Tensor};
use std::collections::HashMap;
use std::time::Instant;

/// Why a serving request could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Request tensor shape does not match the model's input shape.
    BadInput {
        /// Shape the model expects (per sample, no batch axis).
        expected: Vec<usize>,
        /// Shape actually submitted.
        actual: Vec<usize>,
    },
    /// The bounded submission queue is at capacity; the request was
    /// load-shed. Retry with backoff.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request ran out of time: its deadline passed before the
    /// engine produced an answer (either while waiting in the queue —
    /// workers skip already-expired requests before running the kernel
    /// — or while the caller blocked in `Ticket::wait`).
    DeadlineExceeded,
    /// Admission control turned the request away: the tenant's
    /// token-bucket quota is exhausted. Retry after the bucket refills.
    RateLimited {
        /// The tenant whose quota was exhausted.
        tenant: String,
    },
    /// The worker executing this request's batch panicked or died.
    /// Only the tickets of that batch fail; the supervisor restarts the
    /// worker and the engine keeps serving. Distinct from [`Closed`]:
    /// the engine is still running and the request may be resubmitted.
    ///
    /// [`Closed`]: ServeError::Closed
    WorkerFailed {
        /// Human-readable description of the failure (panic payload,
        /// or a note that the reply channel disconnected).
        detail: String,
    },
    /// A replacement model offered to `Engine::swap_model` does not
    /// match the serving contract of the model currently deployed.
    SwapIncompatible {
        /// Input shape and class count the engine is serving.
        expected: (Vec<usize>, usize),
        /// Input shape and class count of the rejected replacement.
        actual: (Vec<usize>, usize),
    },
    /// The engine has shut down and no longer accepts or answers work.
    Closed,
    /// An integer kernel rejected its operands (plan/weight corruption —
    /// cannot happen for a well-formed artifact).
    Kernel(QinferError),
    /// The compiled plan is internally inconsistent (e.g. a channel
    /// affine whose constants disagree with the activation shape).
    Plan {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadInput { expected, actual } => {
                write!(
                    f,
                    "input shape {actual:?} does not match model input {expected:?}"
                )
            }
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue is full ({capacity} pending requests)")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline passed before an answer was produced")
            }
            ServeError::RateLimited { tenant } => {
                write!(f, "tenant `{tenant}` is over its admission quota")
            }
            ServeError::WorkerFailed { detail } => {
                write!(f, "worker executing the batch failed: {detail}")
            }
            ServeError::SwapIncompatible { expected, actual } => write!(
                f,
                "replacement model (input {:?}, {} classes) does not match the serving \
                 contract (input {:?}, {} classes)",
                actual.0, actual.1, expected.0, expected.1
            ),
            ServeError::Closed => write!(f, "engine is shut down"),
            ServeError::Kernel(e) => write!(f, "integer kernel error: {e}"),
            ServeError::Plan { detail } => write!(f, "inconsistent inference plan: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QinferError> for ServeError {
    fn from(e: QinferError) -> Self {
        ServeError::Kernel(e)
    }
}

/// Per-weighted-op activation quantization decided by calibration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActGrid {
    /// Calibrated quantization step (`code = round(clamp(v,0,255·step)/step)`).
    pub(crate) step: f32,
    /// Whether the op runs on the integer kernels (`false` = float
    /// fallback because the calibrated input range includes negatives,
    /// or the model is not calibrated yet).
    pub(crate) integer: bool,
}

impl ActGrid {
    fn uncalibrated() -> Self {
        ActGrid {
            step: 1.0,
            integer: false,
        }
    }
}

/// One executable op bound to its weight slot.
#[derive(Debug, Clone)]
enum BoundOp {
    Conv {
        widx: usize,
        spec: ConvSpec,
        bias: Option<Tensor>,
        grid: ActGrid,
    },
    Depthwise {
        widx: usize,
        spec: ConvSpec,
        grid: ActGrid,
    },
    Linear {
        widx: usize,
        bias: Option<Tensor>,
        grid: ActGrid,
    },
    ChannelAffine {
        scale: Vec<f32>,
        shift: Vec<f32>,
    },
    Relu,
    UniformActQuant {
        range: f32,
        levels: f32,
    },
    MaxPool {
        window: usize,
        stride: usize,
    },
    AvgPool {
        window: usize,
        stride: usize,
    },
    GlobalAvgPool,
    Flatten,
    Identity,
    Residual {
        main: Vec<BoundOp>,
        shortcut: Vec<BoundOp>,
        post: Vec<BoundOp>,
    },
}

/// A packed weight plus its exact float reconstruction (for the float
/// reference path and fallback ops) and, for integer-grid conv/linear
/// ops, its u64 bit-plane transposition built once at bind time.
#[derive(Debug, Clone)]
struct BoundWeight {
    packed: PackedWeight,
    float: Tensor,
    /// Bit-plane lanes, present when some conv/linear op runs this
    /// weight on the integer grid (the only ops the bit-plane kernels
    /// implement). `None` for float-fallback and depthwise weights.
    bitplane: Option<BitplaneWeight>,
}

/// Which kernel class integer-grid weighted ops run on.
///
/// The default [`Auto`](KernelPolicy::Auto) asks the deterministic
/// shape×bit-width selector per op and per batch shape; the force
/// variants pin one class for A/B latency comparisons and bit-exactness
/// gates. Every class computes identical results, so the policy never
/// changes an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Per-op routine selection (`csq_core::bitplane::select_kernel`).
    #[default]
    Auto,
    /// Always the dense integer kernels.
    ForceInteger,
    /// Always the bit-plane kernels where a bit-plane form exists
    /// (depthwise ops stay dense — the bit-plane class does not
    /// implement them).
    ForceBitplane,
}

/// The execution path one weighted op takes in one forward, decided
/// before the kernel runs so profiling and execution always agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathChoice {
    /// Exact float arithmetic on the unpacked weight.
    Float,
    /// Dense integer kernels on quantized codes.
    Integer,
    /// u64 AND/popcount kernels on quantized codes.
    Bitplane(Routine),
}

impl PathChoice {
    fn class(self) -> &'static str {
        match self {
            PathChoice::Float => "float",
            PathChoice::Integer => "integer",
            PathChoice::Bitplane(_) => "bitplane",
        }
    }

    fn routine(self) -> &'static str {
        match self {
            PathChoice::Bitplane(r) => r.name(),
            _ => "dense",
        }
    }

    /// The tiling-blueprint tag for profiler rows and the kernel plan:
    /// the scalar float loops, the dense integer layout, or the u64
    /// bit-plane lane layout (names from [`csq_tensor::blueprint`]).
    fn blueprint(self) -> &'static str {
        match self {
            PathChoice::Float => csq_tensor::blueprint::SCALAR_F32.name,
            PathChoice::Integer => csq_tensor::blueprint::DENSE_I64.name,
            PathChoice::Bitplane(r) => r.blueprint(),
        }
    }
}

/// Decides the path for one integer-capable weighted op. `batch_rows`
/// is the GEMM row count the bit-plane kernel would see (im2col rows
/// for conv, batch size for linear).
fn decide_weighted(
    kind: WeightedOpKind,
    grid: &ActGrid,
    bitplane: Option<&BitplaneWeight>,
    batch_rows: usize,
    integer: bool,
    policy: KernelPolicy,
) -> PathChoice {
    if !(integer && grid.integer) {
        return PathChoice::Float;
    }
    let Some(bw) = bitplane else {
        return PathChoice::Integer;
    };
    match policy {
        KernelPolicy::ForceInteger => PathChoice::Integer,
        KernelPolicy::ForceBitplane => PathChoice::Bitplane(Routine::for_batch(batch_rows)),
        KernelPolicy::Auto => match select_kernel(kind, batch_rows, bw) {
            KernelChoice::Bitplane(r) => PathChoice::Bitplane(r),
            KernelChoice::Integer => PathChoice::Integer,
        },
    }
}

/// Why an op plan could not be bound to weights/calibration.
#[derive(Debug, Clone, PartialEq)]
pub enum BindError {
    /// A weighted op references a path with no packed weight.
    MissingWeight {
        /// The weight path the op referenced.
        path: String,
    },
    /// A weighted op has no calibration entry (artifact assembled
    /// without running calibration).
    MissingCalibration {
        /// The weight path of the uncalibrated op.
        path: String,
    },
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::MissingWeight { path } => {
                write!(
                    f,
                    "op references weight `{path}` but the artifact has no such tensor"
                )
            }
            BindError::MissingCalibration { path } => {
                write!(f, "weighted op `{path}` has no calibrated activation step")
            }
        }
    }
}

impl std::error::Error for BindError {}

/// An immutable, executable model: exported op plan bound to packed
/// weights and calibrated activation grids. Shareable across threads
/// (`Arc<CompiledModel>`); all forwards take `&self`.
#[derive(Debug)]
pub struct CompiledModel {
    name: String,
    input_dims: Vec<usize>,
    num_classes: usize,
    plan: Vec<BoundOp>,
    weights: Vec<BoundWeight>,
    /// Recycles the u64 lane buffers the bit-plane kernels pack
    /// activations into. Owned here (mutex-guarded free list) so the
    /// public forward signatures stay unchanged and all workers share
    /// one pool per model.
    lanes: ScratchPool<u64>,
}

impl CompiledModel {
    /// Binds `ops` to `weights`, with per-weighted-op grids looked up in
    /// `calibration` (path → `ActGrid`). `calibration = None` builds an
    /// *uncalibrated* model in which every weighted op runs the float
    /// fallback — the executor the calibration pass itself uses.
    pub(crate) fn bind(
        name: String,
        input_dims: Vec<usize>,
        num_classes: usize,
        ops: &[InferOp],
        packed: &[PackedWeight],
        calibration: Option<&HashMap<String, ActGrid>>,
    ) -> Result<CompiledModel, BindError> {
        let mut weights: Vec<BoundWeight> = packed
            .iter()
            .map(|p| BoundWeight {
                float: p.unpack(),
                packed: p.clone(),
                bitplane: None,
            })
            .collect();
        let by_path: HashMap<&str, usize> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| (w.packed.path.as_str(), i))
            .collect();
        let plan = bind_ops(ops, &by_path, calibration)?;
        // Transpose integer-grid conv/linear weights into bit-plane
        // lanes once, here — never on the request path. A weight that
        // fails the transposition (degenerate shape) simply keeps
        // running the dense kernels.
        let mut wants_bitplane = vec![false; weights.len()];
        mark_bitplane_weights(&plan, &mut wants_bitplane);
        for (w, wanted) in weights.iter_mut().zip(wants_bitplane) {
            if wanted {
                w.bitplane = BitplaneWeight::from_packed(&w.packed).ok();
            }
        }
        Ok(CompiledModel {
            name,
            input_dims,
            num_classes,
            plan,
            weights,
            lanes: ScratchPool::new(),
        })
    }

    /// Model name recorded in the artifact.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected per-sample input shape (no batch axis), e.g. `[3, 16, 16]`.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// Number of output classes (length of each returned logit row).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of weighted ops that run on the integer kernels.
    pub fn integer_op_count(&self) -> usize {
        count_weighted(&self.plan, true)
    }

    /// Number of weighted ops that fall back to float arithmetic
    /// (calibrated input range included negatives — typically the stem).
    pub fn float_fallback_count(&self) -> usize {
        count_weighted(&self.plan, false)
    }

    /// Number of weighted ops the [`Auto`](KernelPolicy::Auto) selector
    /// routes to the bit-plane kernels for a batch of `batch` samples.
    pub fn bitplane_op_count(&self, batch: usize) -> usize {
        self.kernel_plan(batch)
            .iter()
            .filter(|e| e.class == "bitplane")
            .count()
    }

    /// The static per-weighted-op kernel decision for a batch of
    /// `batch` samples under [`KernelPolicy::Auto`]: walks the plan
    /// propagating activation shapes exactly as a forward would, and
    /// asks the selector at every weighted op. One entry per weighted
    /// op, in execution order.
    pub fn kernel_plan(&self, batch: usize) -> Vec<KernelPlanEntry> {
        let mut entries = Vec::new();
        let mut dims = Vec::with_capacity(self.input_dims.len() + 1);
        dims.push(batch.max(1));
        dims.extend_from_slice(&self.input_dims);
        walk_plan(&self.plan, &self.weights, dims, &mut entries);
        entries
    }

    /// Validates a batched input `[N, C, H, W]` against the model's
    /// per-sample shape.
    fn check_batch(&self, x: &Tensor) -> Result<(), ServeError> {
        let ok = x.rank() == self.input_dims.len() + 1
            && x.dims()[1..] == self.input_dims[..]
            && x.dims()[0] > 0;
        if ok {
            Ok(())
        } else {
            Err(ServeError::BadInput {
                expected: self.input_dims.clone(),
                actual: x.dims().to_vec(),
            })
        }
    }

    /// Deployment forward: integer kernels with calibrated activation
    /// grids (float fallback where calibration demanded it). `x` is
    /// `[N, C, H, W]`; returns logits `[N, num_classes]`. `scratch`
    /// recycles activation-code buffers — engine workers own one pool
    /// each.
    ///
    /// Per-sample kernels plus fixed calibrated grids make the result
    /// bit-identical for any batching of the same samples.
    pub fn forward_batch(
        &self,
        x: &Tensor,
        scratch: &ScratchPool<u8>,
    ) -> Result<Tensor, ServeError> {
        self.forward_batch_with(x, scratch, KernelPolicy::Auto)
    }

    /// [`forward_batch`](Self::forward_batch) with an explicit kernel
    /// policy. `ForceInteger` / `ForceBitplane` pin one kernel class —
    /// the result is bit-identical under every policy (asserted by the
    /// e2e suite); only the latency differs.
    pub fn forward_batch_with(
        &self,
        x: &Tensor,
        scratch: &ScratchPool<u8>,
        policy: KernelPolicy,
    ) -> Result<Tensor, ServeError> {
        self.check_batch(x)?;
        let ctx = ExecCtx {
            weights: &self.weights,
            policy,
            scratch,
            lanes: &self.lanes,
        };
        run_ops(&ctx, &self.plan, x.clone(), true, &mut |_, _, _| {})
    }

    /// Reference forward: identical dataflow on unpacked weights with no
    /// activation quantization. Used by calibration and accuracy-parity
    /// checks.
    pub fn forward_float(&self, x: &Tensor) -> Result<Tensor, ServeError> {
        self.check_batch(x)?;
        let scratch: ScratchPool<u8> = ScratchPool::new();
        let ctx = ExecCtx {
            weights: &self.weights,
            policy: KernelPolicy::Auto,
            scratch: &scratch,
            lanes: &self.lanes,
        };
        run_ops(&ctx, &self.plan, x.clone(), false, &mut |_, _, _| {})
    }

    /// Float forward that also reports, for every weighted op, the
    /// minimum and maximum of the activation tensor entering it
    /// (`observer(weight_path, lo, hi)`). The calibration pass drives
    /// this over a sample set.
    pub(crate) fn forward_observe(
        &self,
        x: &Tensor,
        observer: &mut dyn FnMut(&str, f32, f32),
    ) -> Result<Tensor, ServeError> {
        self.check_batch(x)?;
        let scratch: ScratchPool<u8> = ScratchPool::new();
        let weights = &self.weights;
        let ctx = ExecCtx {
            weights,
            policy: KernelPolicy::Auto,
            scratch: &scratch,
            lanes: &self.lanes,
        };
        run_ops(&ctx, &self.plan, x.clone(), false, &mut |widx, lo, hi| {
            observer(&weights[widx].packed.path, lo, hi)
        })
    }
}

/// One weighted op's static kernel decision, as reported by
/// [`CompiledModel::kernel_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPlanEntry {
    /// Stable weight path of the op.
    pub path: String,
    /// Op kind: `conv2d`, `depthwise`, or `linear`.
    pub op: &'static str,
    /// Selected kernel class: `integer`, `bitplane`, or `float`.
    pub class: &'static str,
    /// Routine within the class: `dense`, `panel_gemm`, or `vecmat`.
    pub routine: &'static str,
    /// Tiling blueprint the routine runs with: `scalar_f32`,
    /// `dense_i64`, or `lanes_u64` (names from
    /// [`csq_tensor::blueprint`]).
    pub blueprint: &'static str,
    /// Magnitude planes spanned by the weight codes (0 when the op has
    /// no bit-plane form).
    pub total_planes: usize,
    /// Active plane×sign passes the bit-plane kernel would run.
    pub active_passes: usize,
    /// Plane×sign pairs pruned to empty and dropped at bind time.
    pub skipped_passes: usize,
}

/// Marks weights that integer-grid conv/linear ops reference — the ops
/// the bit-plane kernels implement — so `bind` transposes exactly those.
fn mark_bitplane_weights(plan: &[BoundOp], wants: &mut [bool]) {
    for op in plan {
        match op {
            BoundOp::Conv { widx, grid, .. } | BoundOp::Linear { widx, grid, .. } => {
                if grid.integer {
                    wants[*widx] = true;
                }
            }
            BoundOp::Residual {
                main,
                shortcut,
                post,
            } => {
                mark_bitplane_weights(main, wants);
                mark_bitplane_weights(shortcut, wants);
                mark_bitplane_weights(post, wants);
            }
            _ => {}
        }
    }
}

/// Walks a plan propagating activation dims exactly as [`run_ops`]
/// transforms them, recording every weighted op's Auto kernel decision.
/// Returns the output dims of the sub-plan.
fn walk_plan(
    plan: &[BoundOp],
    weights: &[BoundWeight],
    mut dims: Vec<usize>,
    out: &mut Vec<KernelPlanEntry>,
) -> Vec<usize> {
    for op in plan {
        dims = match op {
            BoundOp::Conv {
                widx, spec, grid, ..
            } => {
                let w = &weights[*widx];
                let (n, h, wd) = (dims[0], dims[2], dims[3]);
                let (oh, ow) = (spec.out_size(h), spec.out_size(wd));
                let choice = decide_weighted(
                    WeightedOpKind::Conv2d,
                    grid,
                    w.bitplane.as_ref(),
                    n * oh * ow,
                    true,
                    KernelPolicy::Auto,
                );
                out.push(plan_entry("conv2d", w, choice));
                vec![n, w.packed.dims[0], oh, ow]
            }
            BoundOp::Depthwise { widx, spec, grid } => {
                let w = &weights[*widx];
                let (n, c, h, wd) = (dims[0], dims[1], dims[2], dims[3]);
                let (oh, ow) = (spec.out_size(h), spec.out_size(wd));
                let choice = if grid.integer {
                    PathChoice::Integer
                } else {
                    PathChoice::Float
                };
                out.push(plan_entry("depthwise", w, choice));
                vec![n, c, oh, ow]
            }
            BoundOp::Linear { widx, grid, .. } => {
                let w = &weights[*widx];
                let n = dims[0];
                let choice = decide_weighted(
                    WeightedOpKind::Linear,
                    grid,
                    w.bitplane.as_ref(),
                    n,
                    true,
                    KernelPolicy::Auto,
                );
                out.push(plan_entry("linear", w, choice));
                vec![n, w.packed.dims[0]]
            }
            BoundOp::MaxPool { window, stride } | BoundOp::AvgPool { window, stride } => {
                let (oh, ow) = (
                    (dims[2] - window) / stride + 1,
                    (dims[3] - window) / stride + 1,
                );
                vec![dims[0], dims[1], oh, ow]
            }
            BoundOp::GlobalAvgPool => vec![dims[0], dims[1]],
            BoundOp::Flatten => {
                let n = dims[0];
                vec![n, dims[1..].iter().product()]
            }
            BoundOp::Residual {
                main,
                shortcut,
                post,
            } => {
                let merged = walk_plan(main, weights, dims.clone(), out);
                if !shortcut.is_empty() {
                    walk_plan(shortcut, weights, dims, out);
                }
                walk_plan(post, weights, merged, out)
            }
            _ => dims,
        };
    }
    dims
}

fn plan_entry(op: &'static str, w: &BoundWeight, choice: PathChoice) -> KernelPlanEntry {
    let (total_planes, active_passes, skipped_passes) = match &w.bitplane {
        Some(bw) => (bw.total_planes, bw.pass_count(), bw.skipped_passes),
        None => (0, 0, 0),
    };
    KernelPlanEntry {
        path: w.packed.path.clone(),
        op,
        class: choice.class(),
        routine: choice.routine(),
        blueprint: choice.blueprint(),
        total_planes,
        active_passes,
        skipped_passes,
    }
}

fn count_weighted(plan: &[BoundOp], integer: bool) -> usize {
    plan.iter()
        .map(|op| match op {
            BoundOp::Conv { grid, .. }
            | BoundOp::Depthwise { grid, .. }
            | BoundOp::Linear { grid, .. } => usize::from(grid.integer == integer),
            BoundOp::Residual {
                main,
                shortcut,
                post,
            } => {
                count_weighted(main, integer)
                    + count_weighted(shortcut, integer)
                    + count_weighted(post, integer)
            }
            _ => 0,
        })
        .sum()
}

fn lookup_grid(
    path: &str,
    calibration: Option<&HashMap<String, ActGrid>>,
) -> Result<ActGrid, BindError> {
    match calibration {
        None => Ok(ActGrid::uncalibrated()),
        Some(table) => table
            .get(path)
            .copied()
            .ok_or_else(|| BindError::MissingCalibration {
                path: path.to_string(),
            }),
    }
}

fn bind_ops(
    ops: &[InferOp],
    by_path: &HashMap<&str, usize>,
    calibration: Option<&HashMap<String, ActGrid>>,
) -> Result<Vec<BoundOp>, BindError> {
    let resolve = |path: &str| -> Result<usize, BindError> {
        by_path
            .get(path)
            .copied()
            .ok_or_else(|| BindError::MissingWeight {
                path: path.to_string(),
            })
    };
    let mut plan = Vec::with_capacity(ops.len());
    for op in ops {
        let bound = match op {
            InferOp::Conv2d {
                weight,
                kernel,
                stride,
                padding,
                bias,
                ..
            } => BoundOp::Conv {
                widx: resolve(weight)?,
                spec: ConvSpec::new(*kernel, *stride, *padding),
                bias: bias
                    .as_ref()
                    .map(|b| Tensor::from_vec(b.clone(), &[b.len()])),
                grid: lookup_grid(weight, calibration)?,
            },
            InferOp::DepthwiseConv2d {
                weight,
                kernel,
                stride,
                padding,
                ..
            } => BoundOp::Depthwise {
                widx: resolve(weight)?,
                spec: ConvSpec::new(*kernel, *stride, *padding),
                grid: lookup_grid(weight, calibration)?,
            },
            InferOp::Linear { weight, bias, .. } => BoundOp::Linear {
                widx: resolve(weight)?,
                bias: bias
                    .as_ref()
                    .map(|b| Tensor::from_vec(b.clone(), &[b.len()])),
                grid: lookup_grid(weight, calibration)?,
            },
            InferOp::ChannelAffine { scale, shift } => BoundOp::ChannelAffine {
                scale: scale.clone(),
                shift: shift.clone(),
            },
            InferOp::Relu => BoundOp::Relu,
            InferOp::UniformActQuant { range, levels } => BoundOp::UniformActQuant {
                range: *range,
                levels: *levels,
            },
            InferOp::MaxPool { window, stride } => BoundOp::MaxPool {
                window: *window,
                stride: *stride,
            },
            InferOp::AvgPool { window, stride } => BoundOp::AvgPool {
                window: *window,
                stride: *stride,
            },
            InferOp::GlobalAvgPool => BoundOp::GlobalAvgPool,
            InferOp::Flatten => BoundOp::Flatten,
            InferOp::Identity => BoundOp::Identity,
            InferOp::Residual {
                main,
                shortcut,
                post,
            } => BoundOp::Residual {
                main: bind_ops(main, by_path, calibration)?,
                shortcut: bind_ops(shortcut, by_path, calibration)?,
                post: bind_ops(post, by_path, calibration)?,
            },
        };
        plan.push(bound);
    }
    Ok(plan)
}

fn minmax(x: &Tensor) -> (f32, f32) {
    x.iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        })
}

/// The path decision for one op of this forward: `Some` for weighted
/// ops (needed by both execution and profiling, so it is made exactly
/// once), `None` for everything else.
fn weighted_decision(
    op: &BoundOp,
    weights: &[BoundWeight],
    x: &Tensor,
    integer: bool,
    policy: KernelPolicy,
) -> Option<PathChoice> {
    match op {
        BoundOp::Conv {
            widx, spec, grid, ..
        } => {
            // GEMM rows the bit-plane kernel would see = im2col rows.
            let batch_rows = if x.rank() == 4 {
                let (n, h, w) = (x.dims()[0], x.dims()[2], x.dims()[3]);
                n * spec.out_size(h) * spec.out_size(w)
            } else {
                1
            };
            Some(decide_weighted(
                WeightedOpKind::Conv2d,
                grid,
                weights[*widx].bitplane.as_ref(),
                batch_rows,
                integer,
                policy,
            ))
        }
        BoundOp::Depthwise { grid, .. } => Some(if integer && grid.integer {
            PathChoice::Integer
        } else {
            PathChoice::Float
        }),
        BoundOp::Linear { widx, grid, .. } => Some(decide_weighted(
            WeightedOpKind::Linear,
            grid,
            weights[*widx].bitplane.as_ref(),
            x.dims().first().copied().unwrap_or(1),
            integer,
            policy,
        )),
        _ => None,
    }
}

/// Profiler metadata for one op: the kind label, class, routine,
/// blueprint, and the bytes of weight data it reads. `None` for ops
/// that cost nothing worth attributing (`Flatten`, `Identity`) and for
/// `Residual`, whose inner ops are recorded individually by the
/// recursive [`run_ops`] calls.
#[allow(clippy::type_complexity)]
fn profile_meta(
    op: &BoundOp,
    weights: &[BoundWeight],
    decision: Option<PathChoice>,
) -> Option<(&'static str, &'static str, &'static str, &'static str, u64)> {
    // Weight bytes actually read: the bit-plane class reads its packed
    // lanes, the other classes the dense codes.
    let weight_bytes = |widx: &usize| match (decision, &weights[*widx].bitplane) {
        (Some(PathChoice::Bitplane(_)), Some(bw)) => bw.lane_bytes() as u64,
        _ => (weights[*widx].packed.codes.len() * std::mem::size_of::<i32>()) as u64,
    };
    let weighted = |kind: &'static str, widx: &usize| {
        let choice = decision.unwrap_or(PathChoice::Float);
        Some((
            kind,
            choice.class(),
            choice.routine(),
            choice.blueprint(),
            weight_bytes(widx),
        ))
    };
    let scalar = csq_tensor::blueprint::SCALAR_F32.name;
    match op {
        BoundOp::Conv { widx, .. } => weighted("conv2d", widx),
        BoundOp::Depthwise { widx, .. } => weighted("depthwise", widx),
        BoundOp::Linear { widx, .. } => weighted("linear", widx),
        BoundOp::ChannelAffine { .. } => Some(("channel_affine", "float", "dense", scalar, 0)),
        BoundOp::Relu => Some(("relu", "float", "dense", scalar, 0)),
        BoundOp::UniformActQuant { .. } => Some(("act_quant", "float", "dense", scalar, 0)),
        BoundOp::MaxPool { .. } => Some(("maxpool2d", "float", "dense", scalar, 0)),
        BoundOp::AvgPool { .. } => Some(("avgpool2d", "float", "dense", scalar, 0)),
        BoundOp::GlobalAvgPool => Some(("global_avgpool", "float", "dense", scalar, 0)),
        BoundOp::Flatten | BoundOp::Identity | BoundOp::Residual { .. } => None,
    }
}

/// Everything a forward pass threads through the op loop unchanged:
/// bound weights, the kernel policy, and the two scratch pools.
struct ExecCtx<'a> {
    weights: &'a [BoundWeight],
    policy: KernelPolicy,
    scratch: &'a ScratchPool<u8>,
    lanes: &'a ScratchPool<u64>,
}

/// Runs a weighted op's input through the integer-class kernels (dense
/// or bit-plane, per the decided path) if calibration allows, else
/// through the exact float path on the unpacked weight.
fn run_ops(
    ctx: &ExecCtx<'_>,
    plan: &[BoundOp],
    mut x: Tensor,
    integer: bool,
    observer: &mut dyn FnMut(usize, f32, f32),
) -> Result<Tensor, ServeError> {
    let profiler = csq_obs::profiler::global();
    let weights = ctx.weights;
    for op in plan {
        // The kernel-class decision is made once, before the kernel
        // runs, so execution and profiling can never disagree.
        let decision = weighted_decision(op, weights, &x, integer, ctx.policy);
        // Kernel profiling (off by default; the disabled check is one
        // relaxed atomic load). Input shape is captured before the op
        // consumes `x`; bytes = input + output activations + weights.
        let prof = if profiler.enabled() {
            profile_meta(op, weights, decision).map(|(kind, class, routine, blueprint, wbytes)| {
                (
                    kind,
                    class,
                    routine,
                    blueprint,
                    wbytes,
                    x.dims().to_vec(),
                    x.numel(),
                    Instant::now(),
                )
            })
        } else {
            None
        };
        x = match op {
            BoundOp::Conv {
                widx,
                spec,
                bias,
                grid,
            } => {
                let (lo, hi) = minmax(&x);
                observer(*widx, lo, hi);
                let w = &weights[*widx];
                let y = match decision.unwrap_or(PathChoice::Float) {
                    PathChoice::Float => conv2d(&x, &w.float, *spec),
                    choice => {
                        let q = QuantizedActivations::quantize_with_step_into(
                            &x,
                            grid.step,
                            ctx.scratch.take(x.numel()),
                        )?;
                        let y = match (choice, &w.bitplane) {
                            (PathChoice::Bitplane(_), Some(bw)) => {
                                bitplane_conv2d(&q, bw, *spec, ctx.scratch, ctx.lanes)?
                            }
                            _ => conv2d_integer(&q, &w.packed, *spec)?,
                        };
                        ctx.scratch.give(q.codes);
                        y
                    }
                };
                match bias {
                    Some(b) => y.add_channel_bias(b),
                    None => y,
                }
            }
            BoundOp::Depthwise { widx, spec, grid } => {
                let (lo, hi) = minmax(&x);
                observer(*widx, lo, hi);
                let w = &weights[*widx];
                if decision == Some(PathChoice::Integer) {
                    let q = QuantizedActivations::quantize_with_step_into(
                        &x,
                        grid.step,
                        ctx.scratch.take(x.numel()),
                    )?;
                    let y = depthwise_conv2d_integer(&q, &w.packed, *spec)?;
                    ctx.scratch.give(q.codes);
                    y
                } else {
                    depthwise_conv2d(&x, &w.float, *spec)
                }
            }
            BoundOp::Linear { widx, bias, grid } => {
                let (lo, hi) = minmax(&x);
                observer(*widx, lo, hi);
                let w = &weights[*widx];
                let y = match decision.unwrap_or(PathChoice::Float) {
                    PathChoice::Float => x.matmul_nt(&w.float),
                    choice => {
                        let q = QuantizedActivations::quantize_with_step_into(
                            &x,
                            grid.step,
                            ctx.scratch.take(x.numel()),
                        )?;
                        let y = match (choice, &w.bitplane) {
                            (PathChoice::Bitplane(routine), Some(bw)) => {
                                bitplane_linear(&q, bw, routine, ctx.lanes)?
                            }
                            _ => linear_integer(&q, &w.packed)?,
                        };
                        ctx.scratch.give(q.codes);
                        y
                    }
                };
                match bias {
                    Some(b) => y.add_row_bias(b),
                    None => y,
                }
            }
            BoundOp::ChannelAffine { scale, shift } => {
                let dims = x.dims().to_vec();
                if dims.len() != 4 || dims[1] != scale.len() {
                    return Err(ServeError::Plan {
                        detail: format!(
                            "channel affine with {} channels applied to activations {dims:?}",
                            scale.len()
                        ),
                    });
                }
                let c = dims[1];
                let hw = dims[2] * dims[3];
                let mut y = x;
                for (i, chunk) in y.data_mut().chunks_mut(hw).enumerate() {
                    let ci = i % c;
                    let (s, b) = (scale[ci], shift[ci]);
                    for v in chunk.iter_mut() {
                        *v = *v * s + b;
                    }
                }
                y
            }
            BoundOp::Relu => x.map(|v| v.max(0.0)),
            BoundOp::UniformActQuant { range, levels } => {
                // Exact replica of the training layers' eval forward.
                let step = *range / *levels;
                let r = *range;
                x.map(|v| {
                    let c = v.clamp(0.0, r);
                    (c / step).round() * step
                })
            }
            BoundOp::MaxPool { window, stride } => pool::maxpool2d(&x, *window, *stride).output,
            BoundOp::AvgPool { window, stride } => pool::avgpool2d(&x, *window, *stride),
            BoundOp::GlobalAvgPool => pool::global_avgpool(&x),
            BoundOp::Flatten => {
                let n = x.dims()[0];
                let rest = x.numel() / n.max(1);
                x.reshape(&[n, rest])
            }
            BoundOp::Identity => x,
            BoundOp::Residual {
                main,
                shortcut,
                post,
            } => {
                let m = run_ops(ctx, main, x.clone(), integer, observer)?;
                let s = if shortcut.is_empty() {
                    x
                } else {
                    run_ops(ctx, shortcut, x, integer, observer)?
                };
                let merged = m.add(&s);
                run_ops(ctx, post, merged, integer, observer)?
            }
        };
        if let Some((kind, class, routine, blueprint, wbytes, in_dims, in_numel, start)) = prof {
            let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let act_bytes = ((in_numel + x.numel()) * std::mem::size_of::<f32>()) as u64;
            profiler.record(
                kind,
                class,
                routine,
                blueprint,
                &csq_obs::profiler::shape_key(&in_dims),
                wall_ns,
                act_bytes + wbytes,
            );
        }
    }
    Ok(x)
}
