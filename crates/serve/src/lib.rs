//! `csq-serve`: deployment subsystem for CSQ-quantized models.
//!
//! Training (in `csq-core`) produces a mixed-precision model whose
//! weights live on per-layer fixed-point grids. This crate turns that
//! into something a serving process can actually run, with zero
//! training-side code on the load path:
//!
//! * [`ModelArtifact`] — the versioned `.csqm` on-disk format: exported
//!   inference op plan (folded BatchNorm constants, activation
//!   quantizer settings), packed bit-plane weights, the precision
//!   scheme for provenance, and calibrated activation grids — all
//!   wrapped in the workspace's checksummed atomic container.
//! * [`calibrate`](fn@calibrate) — fixes each weighted op's activation
//!   quantization step by observing a small sample set on the float
//!   reference path, so every request shares one grid and batching is
//!   bit-deterministic.
//! * [`CompiledModel`] — an immutable executor over the artifact:
//!   where calibration allows, each weighted op runs one of two exact
//!   integer kernel classes — dense `i64` kernels or u64-packed
//!   bit-plane AND/popcount kernels whose cost scales with the learned
//!   bit-width — chosen per op by a deterministic shape selector
//!   ([`KernelPolicy`] pins a class for A/B checks); exact float
//!   fallback where calibration does not allow integer execution
//!   (signed stem inputs).
//! * [`Engine`] — a micro-batching server: bounded submission queue,
//!   worker threads that fuse up to `max_batch` requests (or whatever
//!   arrives within `batch_window`) into one forward, per-worker
//!   scratch pools, and [`EngineStats`] metrics with latency
//!   percentiles.
//!
//! The engine is hardened for hostile, bursty, failing conditions:
//! per-request deadlines ([`SubmitOptions`]) that yield typed
//! `DeadlineExceeded` errors instead of blocking forever, per-tenant
//! token-bucket admission control ([`TenantQuota`]) plus queue-full
//! load shedding (both visible in [`EngineStats`], with per-tenant
//! [`TenantStats`] breakdowns), `catch_unwind` panic containment so a
//! poisoned batch fails only its own tickets, a supervisor that
//! restarts dead workers, and [`Engine::swap_model`] for zero-downtime
//! hot-swaps of a new `.csqm` version under live traffic. A seeded
//! `ChaosPlan` (`csq_core::fault`) drives all of it deterministically
//! in `tests/serve_chaos.rs`.
//!
//! The end-to-end guarantee, asserted by tests: a batched engine answer
//! is bit-identical to running the same sample alone, at any worker
//! count — even while workers are being killed, batches poisoned, and
//! models swapped — and a `.csqm` reloaded in a fresh process
//! reproduces the exporting process's outputs exactly. Every request
//! the engine cannot answer gets a typed [`ServeError`]; none hangs.

#![deny(missing_docs)]
// Library code must surface failures as structured errors (or documented
// contract panics via `panic!`/`assert!`), never ad-hoc unwraps. Tests and
// doctests are exempt. Worker threads additionally run kernels under
// `catch_unwind`, so even a contract panic fails one batch, not the server.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod artifact;
pub mod calibrate;
pub mod engine;
pub mod exec;
pub mod metrics;

pub use artifact::{ArtifactError, ModelArtifact, PlaneProfileEntry, CSQM_FORMAT_VERSION};
pub use calibrate::{calibrate, CalibrationEntry};
pub use engine::{Engine, EngineConfig, SubmitOptions, TenantQuota, Ticket};
pub use exec::{BindError, CompiledModel, KernelPlanEntry, KernelPolicy, ServeError};
pub use metrics::{EngineStats, TenantStats};
