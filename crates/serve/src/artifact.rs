//! The `.csqm` deployable model artifact.
//!
//! A `.csqm` file is everything inference needs and nothing training
//! does: the exported op plan (folded BatchNorm constants, activation
//! quantizer settings, pooling geometry), packed fixed-point weights,
//! the mixed-precision scheme for provenance, and calibrated activation
//! grids. A serving process reconstructs a runnable [`CompiledModel`]
//! from the artifact alone — no weight factories, gates, optimizers, or
//! gradients.
//!
//! # On-disk layout
//!
//! The payload is versioned JSON ([`ModelArtifact`] with
//! [`CSQM_FORMAT_VERSION`]) wrapped in the workspace's checksummed
//! container (`csq_nn::persist`): a magic header, a CRC-32 of the
//! payload, and the payload length, written atomically via a temp file
//! + rename. Truncated or bit-flipped files are rejected on load with a
//! [`PersistError`] instead of being parsed into garbage, and files
//! written by a future incompatible format version are rejected by the
//! explicit version check.
//!
//! These integrity checks are also the first line of defence for
//! zero-downtime deploys: a corrupted replacement artifact fails
//! [`ModelArtifact::load`] (and an incompatible one fails
//! [`ModelArtifact::is_compatible_with`] / `Engine::swap_model`), so it
//! can never reach the serving path — the old version keeps serving.

use crate::calibrate::{calibrate, grid_table, CalibrationEntry};
use crate::exec::{BindError, CompiledModel, ServeError};
use csq_core::bitplane::BitplaneWeight;
use csq_core::pack::{PackError, PackedModel, PackedWeight};
use csq_core::QuantScheme;
use csq_nn::persist::{read_checksummed, write_checksummed, PersistError};
use csq_nn::{export_model, ExportError, InferOp, Layer};
use csq_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current `.csqm` format version. Bump on any incompatible change to
/// [`ModelArtifact`]'s serialized shape; loaders reject versions they do
/// not understand rather than misinterpreting fields.
pub const CSQM_FORMAT_VERSION: u32 = 1;

/// Why an artifact could not be exported, saved, loaded, or compiled.
#[derive(Debug)]
pub enum ArtifactError {
    /// The checksummed container rejected the file (I/O failure,
    /// missing header, truncation, or checksum mismatch).
    Persist(PersistError),
    /// The payload passed its checksum but is not valid artifact JSON.
    Json(String),
    /// The file was written by an incompatible format version.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The training model contains a layer with no inference lowering.
    Export(ExportError),
    /// The training model could not be packed to fixed point.
    Pack(PackError),
    /// The op plan references weights or calibration entries the
    /// artifact does not carry.
    Bind(BindError),
    /// The calibration forward pass failed.
    Calibration(ServeError),
    /// The calibration sample tensor does not match the declared input
    /// shape (or is empty).
    BadSamples {
        /// Declared per-sample input shape.
        expected: Vec<usize>,
        /// Shape of the tensor actually supplied.
        actual: Vec<usize>,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Persist(e) => write!(f, "artifact container error: {e}"),
            ArtifactError::Json(e) => write!(f, "artifact payload is not valid JSON: {e}"),
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is not supported (this build reads {supported})"
            ),
            ArtifactError::Export(e) => write!(f, "model cannot be lowered for inference: {e}"),
            ArtifactError::Pack(e) => write!(f, "model cannot be packed: {e}"),
            ArtifactError::Bind(e) => write!(f, "artifact is internally inconsistent: {e}"),
            ArtifactError::Calibration(e) => write!(f, "calibration forward failed: {e}"),
            ArtifactError::BadSamples { expected, actual } => write!(
                f,
                "calibration samples {actual:?} do not match input shape {expected:?}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<PersistError> for ArtifactError {
    fn from(e: PersistError) -> Self {
        ArtifactError::Persist(e)
    }
}

impl From<ExportError> for ArtifactError {
    fn from(e: ExportError) -> Self {
        ArtifactError::Export(e)
    }
}

impl From<PackError> for ArtifactError {
    fn from(e: PackError) -> Self {
        ArtifactError::Pack(e)
    }
}

impl From<BindError> for ArtifactError {
    fn from(e: BindError) -> Self {
        ArtifactError::Bind(e)
    }
}

/// Bit-plane structure of one packed weight, as reported by
/// [`ModelArtifact::plane_profile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaneProfileEntry {
    /// Stable weight path.
    pub path: String,
    /// Learned bit-width recorded at pack time.
    pub bits: f32,
    /// Magnitude planes spanned by the codes (`max |code| < 2^planes`).
    pub total_planes: usize,
    /// Plane×sign passes with at least one set bit.
    pub active_passes: usize,
    /// Plane×sign pairs pruned to empty — free at run time.
    pub skipped_passes: usize,
    /// Bytes of the u64 lane transposition.
    pub lane_bytes: usize,
}

/// A complete deployable model: op plan, packed weights, precision
/// scheme, and calibrated activation grids. Serializable to/from the
/// versioned `.csqm` container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// `.csqm` format version this artifact was written with.
    pub format_version: u32,
    /// Human-readable model name.
    pub name: String,
    /// Per-sample input shape (no batch axis), e.g. `[3, 16, 16]`.
    pub input_dims: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
    /// Inference op plan with weights referenced by stable path.
    pub ops: Vec<InferOp>,
    /// Packed fixed-point weights, one per weighted op.
    pub weights: Vec<PackedWeight>,
    /// The mixed-precision scheme the training run arrived at
    /// (provenance: per-layer bits, average precision, compression).
    pub scheme: QuantScheme,
    /// Calibrated activation grids, one per weighted op.
    pub calibration: Vec<CalibrationEntry>,
}

impl ModelArtifact {
    /// Exports a *finalized* training model into a deployable artifact:
    /// packs the weights to fixed point, lowers the layer stack to the
    /// inference op plan, extracts the precision scheme, and calibrates
    /// activation grids by running `calib_samples` (`[S, C, H, W]`,
    /// matching `input_dims`) through the float reference path.
    pub fn export(
        model: &mut dyn Layer,
        name: &str,
        input_dims: &[usize],
        num_classes: usize,
        calib_samples: &Tensor,
    ) -> Result<ModelArtifact, ArtifactError> {
        let sample_dims = calib_samples.dims();
        let samples_ok = sample_dims.len() == input_dims.len() + 1
            && sample_dims[1..] == input_dims[..]
            && sample_dims[0] > 0;
        if !samples_ok {
            return Err(ArtifactError::BadSamples {
                expected: input_dims.to_vec(),
                actual: sample_dims.to_vec(),
            });
        }
        let packed = PackedModel::pack(model)?;
        let ops = export_model(model)?;
        let scheme = QuantScheme::extract(model);
        // Uncalibrated executor: every weighted op on the float path.
        let reference = CompiledModel::bind(
            name.to_string(),
            input_dims.to_vec(),
            num_classes,
            &ops,
            &packed.layers,
            None,
        )?;
        let calibration =
            calibrate(&reference, calib_samples).map_err(ArtifactError::Calibration)?;
        Ok(ModelArtifact {
            format_version: CSQM_FORMAT_VERSION,
            name: name.to_string(),
            input_dims: input_dims.to_vec(),
            num_classes,
            ops,
            weights: packed.layers,
            scheme,
            calibration,
        })
    }

    /// Binds the artifact into an executable [`CompiledModel`] with the
    /// calibrated grids active. This is the zero-training-side loading
    /// path: artifact in, runnable model out.
    pub fn compile(&self) -> Result<CompiledModel, ArtifactError> {
        if self.format_version != CSQM_FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: self.format_version,
                supported: CSQM_FORMAT_VERSION,
            });
        }
        let table = grid_table(&self.calibration);
        Ok(CompiledModel::bind(
            self.name.clone(),
            self.input_dims.clone(),
            self.num_classes,
            &self.ops,
            &self.weights,
            Some(&table),
        )?)
    }

    /// Writes the artifact to `path` inside the checksummed container
    /// (atomic temp-file + rename; a crash never leaves a half-written
    /// artifact under the final name).
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let payload = serde_json::to_vec(self).map_err(|e| ArtifactError::Json(e.to_string()))?;
        write_checksummed(path, &payload).map_err(|e| ArtifactError::Persist(PersistError::Io(e)))
    }

    /// Reads an artifact back from `path`, verifying the container
    /// checksum and the format version.
    pub fn load(path: &Path) -> Result<ModelArtifact, ArtifactError> {
        let payload = read_checksummed(path)?;
        let artifact: ModelArtifact =
            serde_json::from_slice(&payload).map_err(|e| ArtifactError::Json(e.to_string()))?;
        if artifact.format_version != CSQM_FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: artifact.format_version,
                supported: CSQM_FORMAT_VERSION,
            });
        }
        Ok(artifact)
    }

    /// Deployed weight payload in bytes (bit-packed codes plus scales).
    pub fn packed_weight_bytes(&self) -> usize {
        self.weights.iter().map(PackedWeight::size_bytes).sum()
    }

    /// Per-weight bit-plane structure without compiling the artifact:
    /// for every packed weight with a valid bit-plane form, how many
    /// magnitude planes its codes span, how many plane×sign passes are
    /// active, how many were pruned to empty (and would cost nothing at
    /// run time), and the u64 lane bytes the transposed form occupies.
    /// Deployers use this to judge how much the bit-plane kernels can
    /// exploit a model before shipping it.
    pub fn plane_profile(&self) -> Vec<PlaneProfileEntry> {
        self.weights
            .iter()
            .filter_map(|w| {
                let bw = BitplaneWeight::from_packed(w).ok()?;
                Some(PlaneProfileEntry {
                    path: w.path.clone(),
                    bits: w.bits,
                    total_planes: bw.total_planes,
                    active_passes: bw.pass_count(),
                    skipped_passes: bw.skipped_passes,
                    lane_bytes: bw.lane_bytes(),
                })
            })
            .collect()
    }

    /// Whether this artifact can hot-swap into an engine serving models
    /// with the given contract (`Engine::swap_model` re-validates on
    /// the compiled model; checking here lets a deployer reject a
    /// mismatched artifact *before* paying for `compile`).
    pub fn is_compatible_with(&self, input_dims: &[usize], num_classes: usize) -> bool {
        self.input_dims == input_dims && self.num_classes == num_classes
    }
}
