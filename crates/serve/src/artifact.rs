//! The `.csqm` deployable model artifact.
//!
//! A `.csqm` file is everything inference needs and nothing training
//! does: the exported op plan (folded BatchNorm constants, activation
//! quantizer settings, pooling geometry), packed fixed-point weights,
//! the mixed-precision scheme for provenance, and calibrated activation
//! grids. A serving process reconstructs a runnable [`CompiledModel`]
//! from the artifact alone — no weight factories, gates, optimizers, or
//! gradients.
//!
//! # On-disk layout
//!
//! The payload is versioned JSON ([`ModelArtifact`] with
//! [`CSQM_FORMAT_VERSION`]) wrapped in the workspace's checksummed
//! container (`csq_nn::persist`): a magic header, a CRC-32 of the
//! payload, and the payload length, written atomically (temp file,
//! then rename). Truncated or bit-flipped files are rejected on load with a
//! [`PersistError`] instead of being parsed into garbage, and files
//! written by a future incompatible format version are rejected by the
//! explicit version check.
//!
//! These integrity checks are also the first line of defence for
//! zero-downtime deploys: a corrupted replacement artifact fails
//! [`ModelArtifact::load`] (and an incompatible one fails
//! [`ModelArtifact::is_compatible_with`] / `Engine::swap_model`), so it
//! can never reach the serving path — the old version keeps serving.

use crate::calibrate::{calibrate, grid_table, CalibrationEntry};
use crate::exec::{BindError, CompiledModel, ServeError};
use csq_core::bitplane::BitplaneWeight;
use csq_core::pack::{PackError, PackedModel, PackedWeight};
use csq_core::QuantScheme;
use csq_nn::persist::{read_checksummed, write_checksummed, PersistError};
use csq_nn::{export_model, ExportError, InferOp, Layer};
use csq_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current `.csqm` format version. Bump on any incompatible change to
/// [`ModelArtifact`]'s serialized shape; loaders reject versions they do
/// not understand rather than misinterpreting fields.
pub const CSQM_FORMAT_VERSION: u32 = 1;

/// Why an artifact could not be exported, saved, loaded, or compiled.
#[derive(Debug)]
pub enum ArtifactError {
    /// The checksummed container rejected the file (I/O failure,
    /// missing header, truncation, or checksum mismatch).
    Persist(PersistError),
    /// The payload passed its checksum but is not valid artifact JSON.
    Json(String),
    /// The file was written by an incompatible format version.
    UnsupportedVersion {
        /// File the version came from (`None` for an in-memory
        /// artifact rejected by [`ModelArtifact::compile`]).
        path: Option<std::path::PathBuf>,
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The training model contains a layer with no inference lowering.
    Export(ExportError),
    /// The training model could not be packed to fixed point.
    Pack(PackError),
    /// The op plan references weights or calibration entries the
    /// artifact does not carry.
    Bind(BindError),
    /// The calibration forward pass failed.
    Calibration(ServeError),
    /// The calibration sample tensor does not match the declared input
    /// shape (or is empty).
    BadSamples {
        /// Declared per-sample input shape.
        expected: Vec<usize>,
        /// Shape of the tensor actually supplied.
        actual: Vec<usize>,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Persist(e) => write!(f, "artifact container error: {e}"),
            ArtifactError::Json(e) => write!(f, "artifact payload is not valid JSON: {e}"),
            ArtifactError::UnsupportedVersion {
                path,
                found,
                supported,
            } => match path {
                Some(p) => write!(
                    f,
                    "artifact {} was written with format version {found}, expected {supported} \
                     (this build cannot read it)",
                    p.display()
                ),
                None => write!(
                    f,
                    "artifact format version {found} is not supported (this build reads {supported})"
                ),
            },
            ArtifactError::Export(e) => write!(f, "model cannot be lowered for inference: {e}"),
            ArtifactError::Pack(e) => write!(f, "model cannot be packed: {e}"),
            ArtifactError::Bind(e) => write!(f, "artifact is internally inconsistent: {e}"),
            ArtifactError::Calibration(e) => write!(f, "calibration forward failed: {e}"),
            ArtifactError::BadSamples { expected, actual } => write!(
                f,
                "calibration samples {actual:?} do not match input shape {expected:?}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<PersistError> for ArtifactError {
    fn from(e: PersistError) -> Self {
        ArtifactError::Persist(e)
    }
}

impl From<ExportError> for ArtifactError {
    fn from(e: ExportError) -> Self {
        ArtifactError::Export(e)
    }
}

impl From<PackError> for ArtifactError {
    fn from(e: PackError) -> Self {
        ArtifactError::Pack(e)
    }
}

impl From<BindError> for ArtifactError {
    fn from(e: BindError) -> Self {
        ArtifactError::Bind(e)
    }
}

/// Bit-plane structure of one packed weight, as reported by
/// [`ModelArtifact::plane_profile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaneProfileEntry {
    /// Stable weight path.
    pub path: String,
    /// Learned bit-width recorded at pack time.
    pub bits: f32,
    /// Magnitude planes spanned by the codes (`max |code| < 2^planes`).
    pub total_planes: usize,
    /// Plane×sign passes with at least one set bit.
    pub active_passes: usize,
    /// Plane×sign pairs pruned to empty — free at run time.
    pub skipped_passes: usize,
    /// Bytes of the u64 lane transposition.
    pub lane_bytes: usize,
}

/// A complete deployable model: op plan, packed weights, precision
/// scheme, and calibrated activation grids. Serializable to/from the
/// versioned `.csqm` container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// `.csqm` format version this artifact was written with.
    pub format_version: u32,
    /// Human-readable model name.
    pub name: String,
    /// Per-sample input shape (no batch axis), e.g. `[3, 16, 16]`.
    pub input_dims: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
    /// Inference op plan with weights referenced by stable path.
    pub ops: Vec<InferOp>,
    /// Packed fixed-point weights, one per weighted op.
    pub weights: Vec<PackedWeight>,
    /// The mixed-precision scheme the training run arrived at
    /// (provenance: per-layer bits, average precision, compression).
    pub scheme: QuantScheme,
    /// Calibrated activation grids, one per weighted op.
    pub calibration: Vec<CalibrationEntry>,
}

impl ModelArtifact {
    /// Exports a *finalized* training model into a deployable artifact:
    /// packs the weights to fixed point, lowers the layer stack to the
    /// inference op plan, extracts the precision scheme, and calibrates
    /// activation grids by running `calib_samples` (`[S, C, H, W]`,
    /// matching `input_dims`) through the float reference path.
    pub fn export(
        model: &mut dyn Layer,
        name: &str,
        input_dims: &[usize],
        num_classes: usize,
        calib_samples: &Tensor,
    ) -> Result<ModelArtifact, ArtifactError> {
        let sample_dims = calib_samples.dims();
        let samples_ok = sample_dims.len() == input_dims.len() + 1
            && sample_dims[1..] == input_dims[..]
            && sample_dims[0] > 0;
        if !samples_ok {
            return Err(ArtifactError::BadSamples {
                expected: input_dims.to_vec(),
                actual: sample_dims.to_vec(),
            });
        }
        let packed = PackedModel::pack(model)?;
        let ops = export_model(model)?;
        let scheme = QuantScheme::extract(model);
        // Uncalibrated executor: every weighted op on the float path.
        let reference = CompiledModel::bind(
            name.to_string(),
            input_dims.to_vec(),
            num_classes,
            &ops,
            &packed.layers,
            None,
        )?;
        let calibration =
            calibrate(&reference, calib_samples).map_err(ArtifactError::Calibration)?;
        Ok(ModelArtifact {
            format_version: CSQM_FORMAT_VERSION,
            name: name.to_string(),
            input_dims: input_dims.to_vec(),
            num_classes,
            ops,
            weights: packed.layers,
            scheme,
            calibration,
        })
    }

    /// Binds the artifact into an executable [`CompiledModel`] with the
    /// calibrated grids active. This is the zero-training-side loading
    /// path: artifact in, runnable model out.
    pub fn compile(&self) -> Result<CompiledModel, ArtifactError> {
        if self.format_version != CSQM_FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                path: None,
                found: self.format_version,
                supported: CSQM_FORMAT_VERSION,
            });
        }
        let table = grid_table(&self.calibration);
        Ok(CompiledModel::bind(
            self.name.clone(),
            self.input_dims.clone(),
            self.num_classes,
            &self.ops,
            &self.weights,
            Some(&table),
        )?)
    }

    /// Writes the artifact to `path` inside the checksummed container
    /// (atomic temp-file + rename; a crash never leaves a half-written
    /// artifact under the final name).
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let payload = serde_json::to_vec(self).map_err(|e| ArtifactError::Json(e.to_string()))?;
        write_checksummed(path, &payload).map_err(|e| ArtifactError::Persist(PersistError::Io(e)))
    }

    /// Reads an artifact back from `path`, verifying the container
    /// checksum and the format version.
    ///
    /// The format version is checked on the parsed JSON tree *before*
    /// the payload is decoded into typed fields: an artifact written by
    /// a future format likely carries fields this build's schema cannot
    /// parse, and the operator-facing error must say "wrong version,
    /// written by a newer build" — not "malformed JSON".
    pub fn load(path: &Path) -> Result<ModelArtifact, ArtifactError> {
        let payload = read_checksummed(path)?;
        let doc: serde_json::Value =
            serde_json::from_slice(&payload).map_err(|e| ArtifactError::Json(e.to_string()))?;
        let found = doc
            .get("format_version")
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| {
                ArtifactError::Json("payload has no numeric `format_version` field".to_string())
            })?;
        if found != u64::from(CSQM_FORMAT_VERSION) {
            return Err(ArtifactError::UnsupportedVersion {
                path: Some(path.to_path_buf()),
                found: u32::try_from(found).unwrap_or(u32::MAX),
                supported: CSQM_FORMAT_VERSION,
            });
        }
        decode::artifact(&doc).map_err(ArtifactError::Json)
    }

    /// Deployed weight payload in bytes (bit-packed codes plus scales).
    pub fn packed_weight_bytes(&self) -> usize {
        self.weights.iter().map(PackedWeight::size_bytes).sum()
    }

    /// Per-weight bit-plane structure without compiling the artifact:
    /// for every packed weight with a valid bit-plane form, how many
    /// magnitude planes its codes span, how many plane×sign passes are
    /// active, how many were pruned to empty (and would cost nothing at
    /// run time), and the u64 lane bytes the transposed form occupies.
    /// Deployers use this to judge how much the bit-plane kernels can
    /// exploit a model before shipping it.
    pub fn plane_profile(&self) -> Vec<PlaneProfileEntry> {
        self.weights
            .iter()
            .filter_map(|w| {
                let bw = BitplaneWeight::from_packed(w).ok()?;
                Some(PlaneProfileEntry {
                    path: w.path.clone(),
                    bits: w.bits,
                    total_planes: bw.total_planes,
                    active_passes: bw.pass_count(),
                    skipped_passes: bw.skipped_passes,
                    lane_bytes: bw.lane_bytes(),
                })
            })
            .collect()
    }

    /// Whether this artifact can hot-swap into an engine serving models
    /// with the given contract (`Engine::swap_model` re-validates on
    /// the compiled model; checking here lets a deployer reject a
    /// mismatched artifact *before* paying for `compile`).
    pub fn is_compatible_with(&self, input_dims: &[usize], num_classes: usize) -> bool {
        self.input_dims == input_dims && self.num_classes == num_classes
    }
}

/// Explicit schema walker from the parsed JSON tree to typed artifact
/// fields.
///
/// Decoding is deliberately *not* derived: the `.csqm` schema is a
/// compatibility contract, and an explicit walker (a) pins exactly what
/// each format version accepts independent of how the Rust structs
/// evolve, and (b) names the offending field path in every error
/// (`weights[3].codes`), which derived decoding cannot. Errors are
/// plain strings; `ModelArtifact::load` wraps them in
/// [`ArtifactError::Json`].
mod decode {
    use super::{CalibrationEntry, InferOp, ModelArtifact, PackedWeight, QuantScheme};
    use csq_core::scheme::LayerScheme;
    use serde_json::Value;

    type R<T> = Result<T, String>;

    fn field<'v>(v: &'v Value, ctx: &str, name: &str) -> R<&'v Value> {
        v.get(name)
            .ok_or_else(|| format!("{ctx}: missing field `{name}`"))
    }

    fn string(v: &Value, ctx: &str) -> R<String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("{ctx}: expected a string"))
    }

    fn unsigned(v: &Value, ctx: &str) -> R<usize> {
        v.as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| format!("{ctx}: expected an unsigned integer"))
    }

    fn float(v: &Value, ctx: &str) -> R<f32> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| format!("{ctx}: expected a number"))
    }

    fn boolean(v: &Value, ctx: &str) -> R<bool> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("{ctx}: expected a boolean")),
        }
    }

    /// Decodes an array, tagging each element error with its index.
    fn list<T>(v: &Value, ctx: &str, item: impl Fn(&Value, &str) -> R<T>) -> R<Vec<T>> {
        let arr = v
            .as_array()
            .ok_or_else(|| format!("{ctx}: expected an array"))?;
        arr.iter()
            .enumerate()
            .map(|(i, e)| item(e, &format!("{ctx}[{i}]")))
            .collect()
    }

    fn usize_vec(v: &Value, ctx: &str) -> R<Vec<usize>> {
        list(v, ctx, unsigned)
    }

    fn f32_vec(v: &Value, ctx: &str) -> R<Vec<f32>> {
        list(v, ctx, float)
    }

    /// `Option<T>` fields serialize as `null` (and tolerate being
    /// absent entirely, matching `#[serde(default)]` semantics).
    fn opt<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
        v.get(name).filter(|f| !f.is_null())
    }

    fn opt_f32_vec(v: &Value, ctx: &str, name: &str) -> R<Option<Vec<f32>>> {
        opt(v, name)
            .map(|f| f32_vec(f, &format!("{ctx}.{name}")))
            .transpose()
    }

    /// Missing-tolerant string field (pre-path artifacts omit `path`).
    fn string_or_empty(v: &Value, ctx: &str, name: &str) -> R<String> {
        opt(v, name)
            .map(|f| string(f, &format!("{ctx}.{name}")))
            .transpose()
            .map(Option::unwrap_or_default)
    }

    fn op_list(v: &Value, ctx: &str) -> R<Vec<InferOp>> {
        list(v, ctx, op)
    }

    /// One inference op in serde's externally-tagged form: unit
    /// variants are bare strings, struct variants single-key objects.
    fn op(v: &Value, ctx: &str) -> R<InferOp> {
        if let Some(tag) = v.as_str() {
            return match tag {
                "Relu" => Ok(InferOp::Relu),
                "GlobalAvgPool" => Ok(InferOp::GlobalAvgPool),
                "Flatten" => Ok(InferOp::Flatten),
                "Identity" => Ok(InferOp::Identity),
                other => Err(format!("{ctx}: unknown op `{other}`")),
            };
        }
        let obj = v
            .as_object()
            .ok_or_else(|| format!("{ctx}: expected an op string or object"))?;
        let (tag, body) = match (obj.len(), obj.iter().next()) {
            (1, Some(entry)) => entry,
            _ => return Err(format!("{ctx}: expected a single-variant op object")),
        };
        let c = &format!("{ctx}.{tag}");
        match tag.as_str() {
            "Conv2d" => Ok(InferOp::Conv2d {
                weight: string(field(body, c, "weight")?, &format!("{c}.weight"))?,
                in_channels: unsigned(field(body, c, "in_channels")?, &format!("{c}.in_channels"))?,
                out_channels: unsigned(
                    field(body, c, "out_channels")?,
                    &format!("{c}.out_channels"),
                )?,
                kernel: unsigned(field(body, c, "kernel")?, &format!("{c}.kernel"))?,
                stride: unsigned(field(body, c, "stride")?, &format!("{c}.stride"))?,
                padding: unsigned(field(body, c, "padding")?, &format!("{c}.padding"))?,
                bias: opt_f32_vec(body, c, "bias")?,
            }),
            "DepthwiseConv2d" => Ok(InferOp::DepthwiseConv2d {
                weight: string(field(body, c, "weight")?, &format!("{c}.weight"))?,
                channels: unsigned(field(body, c, "channels")?, &format!("{c}.channels"))?,
                kernel: unsigned(field(body, c, "kernel")?, &format!("{c}.kernel"))?,
                stride: unsigned(field(body, c, "stride")?, &format!("{c}.stride"))?,
                padding: unsigned(field(body, c, "padding")?, &format!("{c}.padding"))?,
            }),
            "Linear" => Ok(InferOp::Linear {
                weight: string(field(body, c, "weight")?, &format!("{c}.weight"))?,
                in_features: unsigned(field(body, c, "in_features")?, &format!("{c}.in_features"))?,
                out_features: unsigned(
                    field(body, c, "out_features")?,
                    &format!("{c}.out_features"),
                )?,
                bias: opt_f32_vec(body, c, "bias")?,
            }),
            "ChannelAffine" => Ok(InferOp::ChannelAffine {
                scale: f32_vec(field(body, c, "scale")?, &format!("{c}.scale"))?,
                shift: f32_vec(field(body, c, "shift")?, &format!("{c}.shift"))?,
            }),
            "UniformActQuant" => Ok(InferOp::UniformActQuant {
                range: float(field(body, c, "range")?, &format!("{c}.range"))?,
                levels: float(field(body, c, "levels")?, &format!("{c}.levels"))?,
            }),
            "MaxPool" => Ok(InferOp::MaxPool {
                window: unsigned(field(body, c, "window")?, &format!("{c}.window"))?,
                stride: unsigned(field(body, c, "stride")?, &format!("{c}.stride"))?,
            }),
            "AvgPool" => Ok(InferOp::AvgPool {
                window: unsigned(field(body, c, "window")?, &format!("{c}.window"))?,
                stride: unsigned(field(body, c, "stride")?, &format!("{c}.stride"))?,
            }),
            "Residual" => Ok(InferOp::Residual {
                main: op_list(field(body, c, "main")?, &format!("{c}.main"))?,
                shortcut: op_list(field(body, c, "shortcut")?, &format!("{c}.shortcut"))?,
                post: op_list(field(body, c, "post")?, &format!("{c}.post"))?,
            }),
            other => Err(format!("{ctx}: unknown op `{other}`")),
        }
    }

    fn packed_weight(v: &Value, ctx: &str) -> R<PackedWeight> {
        Ok(PackedWeight {
            path: string_or_empty(v, ctx, "path")?,
            codes: list(field(v, ctx, "codes")?, &format!("{ctx}.codes"), |c, cc| {
                c.as_i64()
                    .and_then(|n| i32::try_from(n).ok())
                    .ok_or_else(|| format!("{cc}: expected a signed integer code"))
            })?,
            step: float(field(v, ctx, "step")?, &format!("{ctx}.step"))?,
            dims: usize_vec(field(v, ctx, "dims")?, &format!("{ctx}.dims"))?,
            bits: float(field(v, ctx, "bits")?, &format!("{ctx}.bits"))?,
        })
    }

    fn calibration_entry(v: &Value, ctx: &str) -> R<CalibrationEntry> {
        Ok(CalibrationEntry {
            weight_path: string(field(v, ctx, "weight_path")?, &format!("{ctx}.weight_path"))?,
            step: float(field(v, ctx, "step")?, &format!("{ctx}.step"))?,
            observed_lo: float(field(v, ctx, "observed_lo")?, &format!("{ctx}.observed_lo"))?,
            observed_hi: float(field(v, ctx, "observed_hi")?, &format!("{ctx}.observed_hi"))?,
            integer: boolean(field(v, ctx, "integer")?, &format!("{ctx}.integer"))?,
        })
    }

    fn layer_scheme(v: &Value, ctx: &str) -> R<LayerScheme> {
        Ok(LayerScheme {
            index: unsigned(field(v, ctx, "index")?, &format!("{ctx}.index"))?,
            path: string_or_empty(v, ctx, "path")?,
            numel: unsigned(field(v, ctx, "numel")?, &format!("{ctx}.numel"))?,
            bits: float(field(v, ctx, "bits")?, &format!("{ctx}.bits"))?,
            mask: opt(v, "mask")
                .map(|m| list(m, &format!("{ctx}.mask"), boolean))
                .transpose()?,
        })
    }

    fn quant_scheme(v: &Value, ctx: &str) -> R<QuantScheme> {
        Ok(QuantScheme {
            layers: list(
                field(v, ctx, "layers")?,
                &format!("{ctx}.layers"),
                layer_scheme,
            )?,
            avg_bits: float(field(v, ctx, "avg_bits")?, &format!("{ctx}.avg_bits"))?,
            compression: float(field(v, ctx, "compression")?, &format!("{ctx}.compression"))?,
        })
    }

    /// Decodes a full artifact from the parsed payload tree. The
    /// caller has already verified `format_version`.
    pub(super) fn artifact(v: &Value) -> R<ModelArtifact> {
        let c = "artifact";
        Ok(ModelArtifact {
            format_version: unsigned(field(v, c, "format_version")?, "artifact.format_version")?
                .try_into()
                .map_err(|_| "artifact.format_version: out of range".to_string())?,
            name: string(field(v, c, "name")?, "artifact.name")?,
            input_dims: usize_vec(field(v, c, "input_dims")?, "artifact.input_dims")?,
            num_classes: unsigned(field(v, c, "num_classes")?, "artifact.num_classes")?,
            ops: op_list(field(v, c, "ops")?, "artifact.ops")?,
            weights: list(field(v, c, "weights")?, "artifact.weights", packed_weight)?,
            scheme: quant_scheme(field(v, c, "scheme")?, "artifact.scheme")?,
            calibration: list(
                field(v, c, "calibration")?,
                "artifact.calibration",
                calibration_entry,
            )?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_core::QuantScheme;

    /// The smallest structurally valid artifact: no ops, no weights.
    /// Enough to exercise the container + version gate without any
    /// training-side machinery.
    fn empty_artifact(format_version: u32) -> ModelArtifact {
        ModelArtifact {
            format_version,
            name: "empty".to_string(),
            input_dims: vec![3],
            num_classes: 2,
            ops: Vec::new(),
            weights: Vec::new(),
            scheme: QuantScheme {
                layers: Vec::new(),
                avg_bits: 0.0,
                compression: 0.0,
            },
            calibration: Vec::new(),
        }
    }

    #[test]
    fn load_version_mismatch_names_path_and_both_versions() {
        let dir = std::env::temp_dir().join("csq-artifact-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-future.csqm", std::process::id()));
        empty_artifact(CSQM_FORMAT_VERSION + 41)
            .save(&path)
            .unwrap();
        let err = ModelArtifact::load(&path).unwrap_err();
        match &err {
            ArtifactError::UnsupportedVersion {
                path: p,
                found,
                supported,
            } => {
                assert_eq!(p.as_deref(), Some(path.as_path()));
                assert_eq!(*found, CSQM_FORMAT_VERSION + 41);
                assert_eq!(*supported, CSQM_FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // The rendered message must let an operator find the file and
        // see expected-vs-found at a glance.
        let msg = err.to_string();
        assert!(
            msg.contains(&path.display().to_string()),
            "message must name the offending file: {msg}"
        );
        assert!(
            msg.contains(&format!("version {}", CSQM_FORMAT_VERSION + 41)),
            "message must name the found version: {msg}"
        );
        assert!(
            msg.contains(&format!("expected {CSQM_FORMAT_VERSION}")),
            "message must name the expected version: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compile_version_mismatch_has_no_path() {
        let err = empty_artifact(CSQM_FORMAT_VERSION + 1)
            .compile()
            .unwrap_err();
        match err {
            ArtifactError::UnsupportedVersion { path, .. } => assert!(path.is_none()),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }
}
