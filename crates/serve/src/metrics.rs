//! Serving metrics: lock-free counters, queue-depth gauge, batch-size
//! histogram, and a fixed-bucket latency histogram with percentile
//! estimates.
//!
//! Workers record into relaxed atomics on the hot path (no locks, no
//! allocation); [`EngineStats`] is a consistent-enough snapshot taken on
//! demand. Latency uses geometric buckets (1 µs, 2 µs, 4 µs, … ~8 s) so
//! percentiles are upper bounds with at most 2× resolution error —
//! plenty for load-test reporting, and immune to reservoir-sampling
//! bias.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of finite latency buckets; bucket `i` covers latencies up to
/// `2^i` microseconds, and one extra slot counts overflows (> ~8.4 s).
const LATENCY_BUCKETS: usize = 24;

/// Upper bound of latency bucket `i`, in microseconds.
fn bucket_bound_us(i: usize) -> u64 {
    1u64 << i
}

/// Index of the bucket a latency falls into (the overflow slot is
/// `LATENCY_BUCKETS`).
fn bucket_index(us: u64) -> usize {
    (0..LATENCY_BUCKETS)
        .find(|&i| us <= bucket_bound_us(i))
        .unwrap_or(LATENCY_BUCKETS)
}

/// Shared mutable counters the workers write into.
#[derive(Debug)]
pub(crate) struct StatsInner {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    queue_depth: AtomicU64,
    /// `batch_hist[s]` counts fused forwards that served `s` requests;
    /// length `max_batch + 1` (slot 0 stays zero).
    batch_hist: Vec<AtomicU64>,
    /// Request latency histogram; last slot is the overflow bucket.
    latency: Vec<AtomicU64>,
}

impl StatsInner {
    pub(crate) fn new(max_batch: usize) -> StatsInner {
        StatsInner {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            batch_hist: (0..=max_batch).map(|_| AtomicU64::new(0)).collect(),
            latency: (0..=LATENCY_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fused forward over `size` requests, after the requests
    /// left the queue.
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queue_depth
            .fetch_sub(size as u64, Ordering::Relaxed);
        if let Some(slot) = self.batch_hist.get(size) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latency[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failed(&self, n: usize) {
        self.failed.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> EngineStats {
        let batch_hist: Vec<u64> = self
            .batch_hist
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let latency_counts: Vec<u64> =
            self.latency.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        let batches = self.batches.load(Ordering::Relaxed);
        let served: u64 = batch_hist
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        let avg_batch = if batches == 0 {
            0.0
        } else {
            served as f32 / batches as f32
        };
        EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            avg_batch,
            p50_us: percentile(&latency_counts, 0.50),
            p95_us: percentile(&latency_counts, 0.95),
            p99_us: percentile(&latency_counts, 0.99),
            batch_hist,
            latency_bounds_us: (0..LATENCY_BUCKETS).map(bucket_bound_us).collect(),
            latency_counts,
        }
    }
}

/// Upper-bound percentile estimate from the bucketed histogram: the
/// bound of the first bucket whose cumulative count reaches the
/// requested quantile (0 when nothing was recorded; the largest finite
/// bound for overflow latencies).
fn percentile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cumulative += c;
        if cumulative >= target {
            return bucket_bound_us(i.min(LATENCY_BUCKETS - 1));
        }
    }
    bucket_bound_us(LATENCY_BUCKETS - 1)
}

/// A point-in-time snapshot of the engine's serving metrics.
#[derive(Debug, Clone, Serialize)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests turned away because the queue was full.
    pub rejected: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Fused batched forwards executed.
    pub batches: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: u64,
    /// Mean requests per fused forward.
    pub avg_batch: f32,
    /// `batch_hist[s]` = number of fused forwards that served `s`
    /// requests at once.
    pub batch_hist: Vec<u64>,
    /// Median request latency upper bound, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency upper bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency upper bound, microseconds.
    pub p99_us: u64,
    /// Upper bound of each finite latency bucket, microseconds.
    pub latency_bounds_us: Vec<u64>,
    /// Count per latency bucket (one extra trailing overflow slot).
    pub latency_counts: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_geometric() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS);
    }

    #[test]
    fn percentiles_walk_the_histogram() {
        let inner = StatsInner::new(4);
        // 90 fast requests (≤ 2µs), 10 slow (≤ 1024µs).
        for _ in 0..90 {
            inner.record_completed(Duration::from_micros(2));
        }
        for _ in 0..10 {
            inner.record_completed(Duration::from_micros(1000));
        }
        let s = inner.snapshot();
        assert_eq!(s.completed, 100);
        assert_eq!(s.p50_us, 2);
        assert_eq!(s.p95_us, 1024);
        assert_eq!(s.p99_us, 1024);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StatsInner::new(8).snapshot();
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.avg_batch, 0.0);
        assert_eq!(s.batch_hist.len(), 9);
    }

    #[test]
    fn batch_accounting_tracks_queue_and_histogram() {
        let inner = StatsInner::new(4);
        for _ in 0..6 {
            inner.record_submitted();
        }
        inner.record_batch(4);
        inner.record_batch(2);
        let s = inner.snapshot();
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batch_hist[4], 1);
        assert_eq!(s.batch_hist[2], 1);
        assert!((s.avg_batch - 3.0).abs() < 1e-6);
    }
}
