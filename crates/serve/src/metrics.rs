//! Serving metrics: lock-free counters, queue-depth gauge, batch-size
//! histogram, a fixed-bucket latency histogram with percentile
//! estimates, and per-tenant admission breakdowns.
//!
//! Workers record into relaxed atomics on the hot path (no locks, no
//! allocation); [`EngineStats`] is a consistent-enough snapshot taken on
//! demand. Latency uses geometric buckets (1 µs, 2 µs, 4 µs, … ~8 s) so
//! percentiles are upper bounds with at most 2× resolution error —
//! plenty for load-test reporting, and immune to reservoir-sampling
//! bias. Requests that carry a tenant additionally record into a
//! mutex-guarded per-tenant table ([`TenantStats`]) — untenanted
//! traffic never touches that lock.
//!
//! Outcome taxonomy (every submitted request ends in exactly one):
//!
//! * **completed** — answered with logits;
//! * **shed** — turned away at submission because the bounded queue was
//!   full (load shedding);
//! * **rejected** — turned away at submission by admission control
//!   (per-tenant token-bucket quota);
//! * **expired** — its deadline passed before an answer was produced;
//! * **failed** — its batch hit a kernel error or a contained panic.
//!
//! Resilience gauges (`worker_restarts`, `panics_contained`, `swaps`,
//! `model_version`) make supervisor activity and hot-swaps observable.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of finite latency buckets; bucket `i` covers latencies up to
/// `2^i` microseconds, and one extra slot counts overflows (> ~8.4 s).
const LATENCY_BUCKETS: usize = 24;

/// Upper bound of latency bucket `i`, in microseconds.
fn bucket_bound_us(i: usize) -> u64 {
    1u64 << i
}

/// Index of the bucket a latency falls into (the overflow slot is
/// `LATENCY_BUCKETS`).
fn bucket_index(us: u64) -> usize {
    (0..LATENCY_BUCKETS)
        .find(|&i| us <= bucket_bound_us(i))
        .unwrap_or(LATENCY_BUCKETS)
}

/// Per-tenant mutable counters (guarded by the tenants mutex).
#[derive(Debug, Clone, Default)]
struct TenantCounters {
    submitted: u64,
    completed: u64,
    shed: u64,
    rejected: u64,
    expired: u64,
    failed: u64,
}

/// Shared mutable counters the workers write into.
#[derive(Debug)]
pub(crate) struct StatsInner {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    queue_depth: AtomicU64,
    worker_restarts: AtomicU64,
    panics_contained: AtomicU64,
    swaps: AtomicU64,
    /// `batch_hist[s]` counts fused forwards that served `s` requests;
    /// length `max_batch + 1` (slot 0 stays zero).
    batch_hist: Vec<AtomicU64>,
    /// Request latency histogram; last slot is the overflow bucket.
    latency: Vec<AtomicU64>,
    /// Per-tenant breakdowns; only touched by tenanted requests.
    tenants: Mutex<BTreeMap<String, TenantCounters>>,
}

impl StatsInner {
    pub(crate) fn new(max_batch: usize) -> StatsInner {
        StatsInner {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            batch_hist: (0..=max_batch).map(|_| AtomicU64::new(0)).collect(),
            latency: (0..=LATENCY_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// Applies `f` to the tenant's counters (recovering the table from
    /// a poisoned lock — the table itself is always consistent).
    fn with_tenant(&self, tenant: Option<&str>, f: impl FnOnce(&mut TenantCounters)) {
        let Some(tenant) = tenant else { return };
        let mut table = match self.tenants.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(table.entry(tenant.to_string()).or_default());
    }

    pub(crate) fn record_submitted(&self, tenant: Option<&str>) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
        self.with_tenant(tenant, |t| t.submitted += 1);
    }

    /// Records a queue-full load shed at submission time.
    pub(crate) fn record_shed(&self, tenant: Option<&str>) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.with_tenant(tenant, |t| t.shed += 1);
    }

    /// Records an admission-control (quota) rejection.
    pub(crate) fn record_rejected(&self, tenant: Option<&str>) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.with_tenant(tenant, |t| t.rejected += 1);
    }

    /// Records a request whose deadline passed before an answer.
    pub(crate) fn record_expired(&self, tenant: Option<&str>) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        self.with_tenant(tenant, |t| t.expired += 1);
    }

    /// Records `n` requests leaving the queue (fused, expired, or both).
    pub(crate) fn record_dequeued(&self, n: usize) {
        self.queue_depth.fetch_sub(n as u64, Ordering::Relaxed);
    }

    /// Records a fused forward over `size` live requests.
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.batch_hist.get(size) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_completed(&self, latency: Duration, tenant: Option<&str>) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latency[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.with_tenant(tenant, |t| t.completed += 1);
    }

    pub(crate) fn record_failed(&self, tenant: Option<&str>) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        self.with_tenant(tenant, |t| t.failed += 1);
    }

    /// Records the supervisor replacing a dead worker thread.
    pub(crate) fn record_worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a kernel panic caught at the containment boundary.
    pub(crate) fn record_panic_contained(&self) {
        self.panics_contained.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful hot-swap of the served model.
    pub(crate) fn record_swap(&self) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, model_version: u64) -> EngineStats {
        let batch_hist: Vec<u64> = self
            .batch_hist
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let latency_counts: Vec<u64> =
            self.latency.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        let batches = self.batches.load(Ordering::Relaxed);
        let served: u64 = batch_hist
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        let avg_batch = if batches == 0 {
            0.0
        } else {
            served as f32 / batches as f32
        };
        let tenants = {
            let table = match self.tenants.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            table
                .iter()
                .map(|(name, c)| {
                    (
                        name.clone(),
                        TenantStats {
                            submitted: c.submitted,
                            completed: c.completed,
                            shed: c.shed,
                            rejected: c.rejected,
                            expired: c.expired,
                            failed: c.failed,
                        },
                    )
                })
                .collect()
        };
        EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            model_version,
            avg_batch,
            p50_us: percentile(&latency_counts, 0.50),
            p95_us: percentile(&latency_counts, 0.95),
            p99_us: percentile(&latency_counts, 0.99),
            batch_hist,
            latency_bounds_us: (0..LATENCY_BUCKETS).map(bucket_bound_us).collect(),
            latency_counts,
            tenants,
        }
    }
}

/// Upper-bound percentile estimate from the bucketed histogram: the
/// bound of the first bucket whose cumulative count reaches the
/// requested quantile (0 when nothing was recorded; the largest finite
/// bound for overflow latencies).
fn percentile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cumulative += c;
        if cumulative >= target {
            return bucket_bound_us(i.min(LATENCY_BUCKETS - 1));
        }
    }
    bucket_bound_us(LATENCY_BUCKETS - 1)
}

/// Per-tenant slice of the serving metrics (see [`EngineStats::tenants`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TenantStats {
    /// Requests this tenant got into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests load-shed because the queue was full.
    pub shed: u64,
    /// Requests rejected by the tenant's token-bucket quota.
    pub rejected: u64,
    /// Requests whose deadline passed before an answer.
    pub expired: u64,
    /// Requests answered with an error.
    pub failed: u64,
}

/// A point-in-time snapshot of the engine's serving metrics.
#[derive(Debug, Clone, Serialize)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests load-shed at submission because the queue was full.
    pub shed: u64,
    /// Requests rejected at submission by a tenant quota.
    pub rejected: u64,
    /// Requests whose deadline passed before an answer was produced.
    pub expired: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Fused batched forwards executed.
    pub batches: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: u64,
    /// Dead worker threads replaced by the supervisor.
    pub worker_restarts: u64,
    /// Kernel panics caught at the containment boundary (the batch
    /// failed; the worker survived).
    pub panics_contained: u64,
    /// Successful hot-swaps of the served model.
    pub swaps: u64,
    /// Version of the model currently being served (starts at 1, bumped
    /// by every successful `Engine::swap_model`).
    pub model_version: u64,
    /// Mean requests per fused forward.
    pub avg_batch: f32,
    /// `batch_hist[s]` = number of fused forwards that served `s`
    /// requests at once.
    pub batch_hist: Vec<u64>,
    /// Median request latency upper bound, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency upper bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency upper bound, microseconds.
    pub p99_us: u64,
    /// Upper bound of each finite latency bucket, microseconds.
    pub latency_bounds_us: Vec<u64>,
    /// Count per latency bucket (one extra trailing overflow slot).
    pub latency_counts: Vec<u64>,
    /// Per-tenant breakdowns, keyed by tenant name (only requests
    /// submitted with a tenant appear here).
    pub tenants: BTreeMap<String, TenantStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_geometric() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS);
    }

    #[test]
    fn percentiles_walk_the_histogram() {
        let inner = StatsInner::new(4);
        // 90 fast requests (≤ 2µs), 10 slow (≤ 1024µs).
        for _ in 0..90 {
            inner.record_completed(Duration::from_micros(2), None);
        }
        for _ in 0..10 {
            inner.record_completed(Duration::from_micros(1000), None);
        }
        let s = inner.snapshot(1);
        assert_eq!(s.completed, 100);
        assert_eq!(s.p50_us, 2);
        assert_eq!(s.p95_us, 1024);
        assert_eq!(s.p99_us, 1024);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StatsInner::new(8).snapshot(1);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.avg_batch, 0.0);
        assert_eq!(s.batch_hist.len(), 9);
        assert_eq!(s.shed, 0);
        assert_eq!(s.expired, 0);
        assert_eq!(s.worker_restarts, 0);
        assert_eq!(s.model_version, 1);
        assert!(s.tenants.is_empty());
    }

    #[test]
    fn batch_accounting_tracks_queue_and_histogram() {
        let inner = StatsInner::new(4);
        for _ in 0..6 {
            inner.record_submitted(None);
        }
        inner.record_dequeued(4);
        inner.record_batch(4);
        inner.record_dequeued(2);
        inner.record_batch(2);
        let s = inner.snapshot(1);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batch_hist[4], 1);
        assert_eq!(s.batch_hist[2], 1);
        assert!((s.avg_batch - 3.0).abs() < 1e-6);
    }

    #[test]
    fn tenant_breakdowns_only_track_tenanted_requests() {
        let inner = StatsInner::new(4);
        inner.record_submitted(Some("a"));
        inner.record_submitted(Some("a"));
        inner.record_submitted(None);
        inner.record_completed(Duration::from_micros(5), Some("a"));
        inner.record_shed(Some("b"));
        inner.record_rejected(Some("b"));
        inner.record_expired(Some("a"));
        inner.record_failed(Some("a"));
        let s = inner.snapshot(1);
        assert_eq!(s.submitted, 3);
        assert_eq!(s.tenants.len(), 2);
        let a = &s.tenants["a"];
        assert_eq!((a.submitted, a.completed, a.expired, a.failed), (2, 1, 1, 1));
        let b = &s.tenants["b"];
        assert_eq!((b.shed, b.rejected), (1, 1));
        assert_eq!(s.shed, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.expired, 1);
    }

    #[test]
    fn resilience_gauges_accumulate() {
        let inner = StatsInner::new(2);
        inner.record_worker_restart();
        inner.record_panic_contained();
        inner.record_swap();
        inner.record_swap();
        let s = inner.snapshot(3);
        assert_eq!(s.worker_restarts, 1);
        assert_eq!(s.panics_contained, 1);
        assert_eq!(s.swaps, 2);
        assert_eq!(s.model_version, 3);
    }
}
