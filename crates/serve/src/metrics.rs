//! Serving metrics: scalar outcome counters under one short lock, a
//! batch-size histogram, a shared geometric latency histogram, and
//! per-tenant admission breakdowns.
//!
//! The latency histogram is `csq-obs`'s [`GeoHistogram`] (re-exported
//! here for old callers): geometric buckets (1 µs, 2 µs, 4 µs, … ~8 s)
//! whose percentile estimates are upper bounds with at most 2×
//! resolution error — plenty for load-test reporting, and immune to
//! reservoir-sampling bias. Its interpolation rule is the single
//! workspace-wide implementation in
//! [`HistogramSnapshot::percentile`], so training and serving report
//! percentiles identically.
//!
//! The eleven scalar counters live behind **one** mutex ([`Scalars`]
//! is plain `u64`s): updates are a short uncontended lock (the submit
//! path already serializes on the queue mutex, so this adds no new
//! contention point) and [`StatsInner::snapshot`] copies all of them
//! under a single acquisition — a scrape racing a panic can never
//! observe a torn cross-counter view, and every lock in this module
//! recovers from poisoning, so metrics stay scrapeable mid-crash.
//!
//! Outcome taxonomy (every submitted request ends in exactly one):
//!
//! * **completed** — answered with logits;
//! * **shed** — turned away at submission because the bounded queue was
//!   full (load shedding);
//! * **rejected** — turned away at submission by admission control
//!   (per-tenant token-bucket quota);
//! * **expired** — its deadline passed before an answer was produced;
//! * **failed** — its batch hit a kernel error or a contained panic.
//!
//! Resilience gauges (`worker_restarts`, `panics_contained`, `swaps`,
//! `model_version`) make supervisor activity and hot-swaps observable.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

pub use csq_obs::hist::{GeoHistogram, HistogramSnapshot};
use csq_obs::registry::{MetricsRegistry, MetricsSnapshot};

/// Number of finite latency buckets; bucket `i` covers latencies up to
/// `2^i` microseconds, and one extra slot counts overflows (> ~8.4 s).
const LATENCY_BUCKETS: usize = 24;

/// Per-tenant mutable counters (guarded by the tenants mutex).
#[derive(Debug)]
struct TenantCounters {
    submitted: u64,
    completed: u64,
    shed: u64,
    rejected: u64,
    expired: u64,
    failed: u64,
    /// Completed-request latency for this tenant (microseconds), so
    /// per-tenant percentiles survive fleet-level merging.
    latency: GeoHistogram,
}

impl TenantCounters {
    fn new() -> TenantCounters {
        TenantCounters {
            submitted: 0,
            completed: 0,
            shed: 0,
            rejected: 0,
            expired: 0,
            failed: 0,
            latency: GeoHistogram::new(LATENCY_BUCKETS),
        }
    }
}

/// The scalar counters, kept together so one lock acquisition reads or
/// writes a consistent view.
#[derive(Debug, Clone, Copy, Default)]
struct Scalars {
    submitted: u64,
    completed: u64,
    shed: u64,
    rejected: u64,
    expired: u64,
    failed: u64,
    batches: u64,
    queue_depth: u64,
    worker_restarts: u64,
    panics_contained: u64,
    swaps: u64,
}

/// Shared mutable counters the workers write into.
#[derive(Debug)]
pub(crate) struct StatsInner {
    scalars: Mutex<Scalars>,
    /// `batch_hist[s]` counts fused forwards that served `s` requests;
    /// length `max_batch + 1` (slot 0 stays zero).
    batch_hist: Vec<AtomicU64>,
    /// Request latency histogram (microseconds).
    latency: GeoHistogram,
    /// Per-tenant breakdowns; only touched by tenanted requests.
    tenants: Mutex<BTreeMap<String, TenantCounters>>,
}

impl StatsInner {
    pub(crate) fn new(max_batch: usize) -> StatsInner {
        StatsInner {
            scalars: Mutex::new(Scalars::default()),
            batch_hist: (0..=max_batch).map(|_| AtomicU64::new(0)).collect(),
            latency: GeoHistogram::new(LATENCY_BUCKETS),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// Applies `f` to the scalar counters under the (poison-recovering)
    /// lock.
    fn with_scalars(&self, f: impl FnOnce(&mut Scalars)) {
        let mut scalars = match self.scalars.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut scalars);
    }

    /// Applies `f` to the tenant's counters (recovering the table from
    /// a poisoned lock — the table itself is always consistent).
    fn with_tenant(&self, tenant: Option<&str>, f: impl FnOnce(&mut TenantCounters)) {
        let Some(tenant) = tenant else { return };
        let mut table = match self.tenants.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(table
            .entry(tenant.to_string())
            .or_insert_with(TenantCounters::new));
    }

    pub(crate) fn record_submitted(&self, tenant: Option<&str>) {
        self.with_scalars(|s| {
            s.submitted += 1;
            s.queue_depth += 1;
        });
        self.with_tenant(tenant, |t| t.submitted += 1);
    }

    /// Records a queue-full load shed at submission time.
    pub(crate) fn record_shed(&self, tenant: Option<&str>) {
        self.with_scalars(|s| s.shed += 1);
        self.with_tenant(tenant, |t| t.shed += 1);
    }

    /// Records an admission-control (quota) rejection.
    pub(crate) fn record_rejected(&self, tenant: Option<&str>) {
        self.with_scalars(|s| s.rejected += 1);
        self.with_tenant(tenant, |t| t.rejected += 1);
    }

    /// Records a request whose deadline passed before an answer.
    pub(crate) fn record_expired(&self, tenant: Option<&str>) {
        self.with_scalars(|s| s.expired += 1);
        self.with_tenant(tenant, |t| t.expired += 1);
    }

    /// Records `n` requests leaving the queue (fused, expired, or both).
    pub(crate) fn record_dequeued(&self, n: usize) {
        self.with_scalars(|s| s.queue_depth = s.queue_depth.saturating_sub(n as u64));
    }

    /// Records a fused forward over `size` live requests.
    pub(crate) fn record_batch(&self, size: usize) {
        self.with_scalars(|s| s.batches += 1);
        if let Some(slot) = self.batch_hist.get(size) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_completed(&self, latency: Duration, tenant: Option<&str>) {
        self.with_scalars(|s| s.completed += 1);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latency.record(us);
        self.with_tenant(tenant, |t| {
            t.completed += 1;
            t.latency.record(us);
        });
    }

    pub(crate) fn record_failed(&self, tenant: Option<&str>) {
        self.with_scalars(|s| s.failed += 1);
        self.with_tenant(tenant, |t| t.failed += 1);
    }

    /// Records the supervisor replacing a dead worker thread.
    pub(crate) fn record_worker_restart(&self) {
        self.with_scalars(|s| s.worker_restarts += 1);
    }

    /// Records a kernel panic caught at the containment boundary.
    pub(crate) fn record_panic_contained(&self) {
        self.with_scalars(|s| s.panics_contained += 1);
    }

    /// Records a successful hot-swap of the served model.
    pub(crate) fn record_swap(&self) {
        self.with_scalars(|s| s.swaps += 1);
    }

    pub(crate) fn snapshot(&self, model_version: u64) -> EngineStats {
        // One short lock: all scalar counters are read as a unit, so a
        // scrape can never see (say) `completed` without the matching
        // `submitted`.
        let scalars = {
            let guard = match self.scalars.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            *guard
        };
        let batch_hist: Vec<u64> = self
            .batch_hist
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let latency = self.latency.snapshot();
        let served: u64 = batch_hist
            .iter()
            .enumerate()
            .map(|(size, &count)| size as u64 * count)
            .sum();
        let avg_batch = if scalars.batches == 0 {
            0.0
        } else {
            served as f32 / scalars.batches as f32
        };
        let tenants = {
            let table = match self.tenants.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            table
                .iter()
                .map(|(name, c)| {
                    let latency = c.latency.snapshot();
                    (
                        name.clone(),
                        TenantStats {
                            submitted: c.submitted,
                            completed: c.completed,
                            shed: c.shed,
                            rejected: c.rejected,
                            expired: c.expired,
                            failed: c.failed,
                            p50_us: latency.percentile(0.50),
                            p95_us: latency.percentile(0.95),
                            p99_us: latency.percentile(0.99),
                            latency,
                        },
                    )
                })
                .collect()
        };
        EngineStats {
            submitted: scalars.submitted,
            completed: scalars.completed,
            shed: scalars.shed,
            rejected: scalars.rejected,
            expired: scalars.expired,
            failed: scalars.failed,
            batches: scalars.batches,
            queue_depth: scalars.queue_depth,
            worker_restarts: scalars.worker_restarts,
            panics_contained: scalars.panics_contained,
            swaps: scalars.swaps,
            model_version,
            avg_batch,
            p50_us: latency.percentile(0.50),
            p95_us: latency.percentile(0.95),
            p99_us: latency.percentile(0.99),
            batch_hist,
            latency_bounds_us: latency.bounds(),
            latency_sum_us: latency.sum,
            latency_counts: latency.counts,
            tenants,
        }
    }
}

/// Per-tenant slice of the serving metrics (see [`EngineStats::tenants`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantStats {
    /// Requests this tenant got into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests load-shed because the queue was full.
    pub shed: u64,
    /// Requests rejected by the tenant's token-bucket quota.
    pub rejected: u64,
    /// Requests whose deadline passed before an answer.
    pub expired: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Median completed-request latency upper bound, microseconds.
    pub p50_us: u64,
    /// 95th-percentile completed-request latency upper bound, µs.
    pub p95_us: u64,
    /// 99th-percentile completed-request latency upper bound, µs.
    pub p99_us: u64,
    /// This tenant's full latency histogram, mergeable across replicas
    /// for fleet-level per-tenant percentiles.
    pub latency: HistogramSnapshot,
}

/// A point-in-time snapshot of the engine's serving metrics.
#[derive(Debug, Clone, Serialize)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests load-shed at submission because the queue was full.
    pub shed: u64,
    /// Requests rejected at submission by a tenant quota.
    pub rejected: u64,
    /// Requests whose deadline passed before an answer was produced.
    pub expired: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Fused batched forwards executed.
    pub batches: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: u64,
    /// Dead worker threads replaced by the supervisor.
    pub worker_restarts: u64,
    /// Kernel panics caught at the containment boundary (the batch
    /// failed; the worker survived).
    pub panics_contained: u64,
    /// Successful hot-swaps of the served model.
    pub swaps: u64,
    /// Version of the model currently being served (starts at 1, bumped
    /// by every successful `Engine::swap_model`).
    pub model_version: u64,
    /// Mean requests per fused forward.
    pub avg_batch: f32,
    /// `batch_hist[s]` = number of fused forwards that served `s`
    /// requests at once.
    pub batch_hist: Vec<u64>,
    /// Median request latency upper bound, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency upper bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency upper bound, microseconds.
    pub p99_us: u64,
    /// Upper bound of each finite latency bucket, microseconds.
    pub latency_bounds_us: Vec<u64>,
    /// Count per latency bucket (one extra trailing overflow slot).
    pub latency_counts: Vec<u64>,
    /// Saturating sum of all completed-request latencies, microseconds.
    pub latency_sum_us: u64,
    /// Per-tenant breakdowns, keyed by tenant name (only requests
    /// submitted with a tenant appear here).
    pub tenants: BTreeMap<String, TenantStats>,
}

impl EngineStats {
    /// The latency histogram as a mergeable `csq-obs` snapshot.
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.latency_counts.clone(),
            sum: self.latency_sum_us,
        }
    }

    /// Renders every engine metric into a `csq-obs`
    /// [`MetricsSnapshot`] under a `prefix` (e.g. `serve`), ready for
    /// JSON or Prometheus-text exposition and fleet merging.
    pub fn to_metrics_snapshot(&self, prefix: &str) -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        self.publish_to(&registry, prefix);
        let mut snap = registry.snapshot();
        snap.hists
            .insert(format!("{prefix}.latency_us"), self.latency_histogram());
        for (tenant, t) in &self.tenants {
            snap.hists.insert(
                format!("{prefix}.tenant.{tenant}.latency_us"),
                t.latency.clone(),
            );
        }
        snap
    }

    /// Publishes the scalar counters and gauges into `registry` under
    /// `prefix` (the latency histogram is attached by
    /// [`to_metrics_snapshot`](Self::to_metrics_snapshot), which is
    /// what scrapers should call).
    pub fn publish_to(&self, registry: &MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("shed", self.shed),
            ("rejected", self.rejected),
            ("expired", self.expired),
            ("failed", self.failed),
            ("batches", self.batches),
            ("worker_restarts", self.worker_restarts),
            ("panics_contained", self.panics_contained),
            ("swaps", self.swaps),
        ] {
            registry.counter(&format!("{prefix}.{name}")).add(value);
        }
        registry
            .gauge(&format!("{prefix}.queue_depth"))
            .set(self.queue_depth as i64);
        registry
            .gauge(&format!("{prefix}.model_version"))
            .set(self.model_version as i64);
        for (tenant, t) in &self.tenants {
            for (name, value) in [
                ("submitted", t.submitted),
                ("completed", t.completed),
                ("shed", t.shed),
                ("rejected", t.rejected),
                ("expired", t.expired),
                ("failed", t.failed),
            ] {
                registry
                    .counter(&format!("{prefix}.tenant.{tenant}.{name}"))
                    .add(value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_walk_the_histogram() {
        let inner = StatsInner::new(4);
        // 90 fast requests (≤ 2µs), 10 slow (≤ 1024µs).
        for _ in 0..90 {
            inner.record_completed(Duration::from_micros(2), None);
        }
        for _ in 0..10 {
            inner.record_completed(Duration::from_micros(1000), None);
        }
        let s = inner.snapshot(1);
        assert_eq!(s.completed, 100);
        assert_eq!(s.p50_us, 2);
        assert_eq!(s.p95_us, 1024);
        assert_eq!(s.p99_us, 1024);
        assert_eq!(s.latency_sum_us, 90 * 2 + 10 * 1000);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StatsInner::new(8).snapshot(1);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.avg_batch, 0.0);
        assert_eq!(s.batch_hist.len(), 9);
        assert_eq!(s.shed, 0);
        assert_eq!(s.expired, 0);
        assert_eq!(s.worker_restarts, 0);
        assert_eq!(s.model_version, 1);
        assert!(s.tenants.is_empty());
    }

    #[test]
    fn batch_accounting_tracks_queue_and_histogram() {
        let inner = StatsInner::new(4);
        for _ in 0..6 {
            inner.record_submitted(None);
        }
        inner.record_dequeued(4);
        inner.record_batch(4);
        inner.record_dequeued(2);
        inner.record_batch(2);
        let s = inner.snapshot(1);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batch_hist[4], 1);
        assert_eq!(s.batch_hist[2], 1);
        assert!((s.avg_batch - 3.0).abs() < 1e-6);
    }

    #[test]
    fn tenant_breakdowns_only_track_tenanted_requests() {
        let inner = StatsInner::new(4);
        inner.record_submitted(Some("a"));
        inner.record_submitted(Some("a"));
        inner.record_submitted(None);
        inner.record_completed(Duration::from_micros(5), Some("a"));
        inner.record_shed(Some("b"));
        inner.record_rejected(Some("b"));
        inner.record_expired(Some("a"));
        inner.record_failed(Some("a"));
        let s = inner.snapshot(1);
        assert_eq!(s.submitted, 3);
        assert_eq!(s.tenants.len(), 2);
        let a = &s.tenants["a"];
        assert_eq!(
            (a.submitted, a.completed, a.expired, a.failed),
            (2, 1, 1, 1)
        );
        assert_eq!(a.latency.total(), 1, "tenant latency tracks completions");
        assert_eq!(a.p50_us, 8, "5µs rounds up to the 8µs bucket bound");
        let b = &s.tenants["b"];
        assert_eq!((b.shed, b.rejected), (1, 1));
        assert_eq!(s.shed, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.expired, 1);
    }

    #[test]
    fn resilience_gauges_accumulate() {
        let inner = StatsInner::new(2);
        inner.record_worker_restart();
        inner.record_panic_contained();
        inner.record_swap();
        inner.record_swap();
        let s = inner.snapshot(3);
        assert_eq!(s.worker_restarts, 1);
        assert_eq!(s.panics_contained, 1);
        assert_eq!(s.swaps, 2);
        assert_eq!(s.model_version, 3);
    }

    #[test]
    fn prometheus_exposition_renders_every_engine_metric() {
        let inner = StatsInner::new(4);
        inner.record_submitted(Some("acme"));
        inner.record_dequeued(1);
        inner.record_batch(1);
        inner.record_completed(Duration::from_micros(3), Some("acme"));
        inner.record_worker_restart();
        let stats = inner.snapshot(2);
        let snap = stats.to_metrics_snapshot("serve");
        let text = snap.to_prometheus();
        assert!(text.contains("serve_submitted 1"));
        assert!(text.contains("serve_completed 1"));
        assert!(text.contains("serve_batches 1"));
        assert!(text.contains("serve_worker_restarts 1"));
        assert!(text.contains("serve_queue_depth 0"));
        assert!(text.contains("serve_model_version 2"));
        assert!(text.contains("serve_tenant_acme_completed 1"));
        assert!(text.contains("serve_tenant_acme_latency_us_count 1"));
        assert!(text.contains("serve_latency_us_bucket{le=\"4\"} 1"));
        assert!(text.contains("serve_latency_us_count 1"));
        assert!(text.contains("serve_latency_us_sum 3"));
    }

    #[test]
    fn snapshots_merge_across_replicas() {
        let a = StatsInner::new(4);
        let b = StatsInner::new(4);
        a.record_submitted(None);
        a.record_completed(Duration::from_micros(2), None);
        b.record_submitted(None);
        b.record_completed(Duration::from_micros(900), None);
        let mut merged = a.snapshot(1).to_metrics_snapshot("serve");
        merged.merge(&b.snapshot(1).to_metrics_snapshot("serve"));
        assert_eq!(merged.counters["serve.completed"], 2);
        let lat = &merged.hists["serve.latency_us"];
        assert_eq!(lat.total(), 2);
        assert_eq!(lat.percentile(1.0), 1024);
    }
}
