//! Property-based equivalence of the bit-plane kernels.
//!
//! The bit-plane path's correctness argument is structural — identical
//! `i64` accumulation and identical scale conversion — so its outputs
//! must equal the dense integer kernels *bit for bit*, not just within
//! a tolerance. These properties pin that down across random shapes,
//! bit-widths 1–8, signed and unsigned codes, both routines, thread
//! counts, and pruned planes.

use csq_core::bitplane::{bitplane_conv2d, bitplane_linear, BitplaneWeight, Routine};
use csq_core::pack::PackedWeight;
use csq_core::qinfer::{conv2d_integer, linear_integer, QuantizedActivations};
use csq_tensor::conv::ConvSpec;
use csq_tensor::par::{with_threads, ScratchPool};
use proptest::prelude::*;

/// A packed linear weight `[OUT, K]` with codes drawn from a random
/// bit-width 1–8, signed or unsigned, plus matching `[B, K]` activation
/// codes. `K` ranges past 64 so lanes cross the u64 word boundary.
fn linear_case() -> impl Strategy<Value = (PackedWeight, QuantizedActivations)> {
    (1usize..5, 1usize..70, 1usize..8, 1u32..=8, any::<bool>()).prop_flat_map(
        |(b, k, out, bits, signed)| {
            let hi = (1i32 << bits) - 1;
            let lo = if signed { -hi } else { 0 };
            (
                proptest::collection::vec(lo..=hi, out * k),
                proptest::collection::vec(any::<u8>(), b * k),
            )
                .prop_map(move |(codes, acts)| {
                    (
                        PackedWeight {
                            path: "w".to_string(),
                            codes,
                            step: 0.03,
                            dims: vec![out, k],
                            bits: bits as f32,
                        },
                        QuantizedActivations {
                            codes: acts,
                            step: 0.01,
                            dims: vec![b, k],
                        },
                    )
                })
        },
    )
}

/// A packed conv weight `[OC, IC, K, K]`, a conv spec, and matching
/// `[N, IC, H, W]` activation codes.
fn conv_case() -> impl Strategy<Value = (PackedWeight, QuantizedActivations, ConvSpec)> {
    (
        1usize..3,
        1usize..4,
        1usize..4,
        1usize..=3,
        1u32..=8,
        any::<bool>(),
    )
        .prop_flat_map(|(n, ic, oc, kernel, bits, signed)| {
            let hi = (1i32 << bits) - 1;
            let lo = if signed { -hi } else { 0 };
            (
                proptest::collection::vec(lo..=hi, oc * ic * kernel * kernel),
                kernel..6usize,
                kernel..6usize,
                1usize..=2,
                0usize..=1,
            )
                .prop_flat_map(move |(codes, h, w, stride, padding)| {
                    proptest::collection::vec(any::<u8>(), n * ic * h * w).prop_map(move |acts| {
                        (
                            PackedWeight {
                                path: "w".to_string(),
                                codes: codes.clone(),
                                step: 0.03,
                                dims: vec![oc, ic, kernel, kernel],
                                bits: bits as f32,
                            },
                            QuantizedActivations {
                                codes: acts,
                                step: 0.01,
                                dims: vec![n, ic, h, w],
                            },
                            ConvSpec::new(kernel, stride, padding),
                        )
                    })
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plane transpose round-trip: lanes reconstruct the exact codes,
    /// and every magnitude plane accounts for a positive and a negative
    /// pass (active or skipped).
    #[test]
    fn lane_transpose_round_trips((w, _x) in linear_case()) {
        let bw = BitplaneWeight::from_packed(&w).expect("transpose");
        prop_assert_eq!(bw.reconstruct_codes(), w.codes);
        prop_assert_eq!(
            bw.pass_count() + bw.skipped_passes,
            2 * bw.total_planes
        );
    }

    /// Both bit-plane routines equal the dense integer linear kernel
    /// bit for bit.
    #[test]
    fn bitplane_linear_equals_integer((w, x) in linear_case()) {
        let bw = BitplaneWeight::from_packed(&w).expect("transpose");
        let lanes: ScratchPool<u64> = ScratchPool::new();
        let want = linear_integer(&x, &w).expect("integer");
        for routine in [Routine::PanelGemm, Routine::Vecmat] {
            let got = bitplane_linear(&x, &bw, routine, &lanes).expect("bitplane");
            prop_assert_eq!(got.dims(), want.dims());
            prop_assert_eq!(got.data(), want.data());
        }
    }

    /// The bit-plane conv equals the dense integer conv bit for bit,
    /// across strides and zero padding.
    #[test]
    fn bitplane_conv_equals_integer((w, x, spec) in conv_case()) {
        let bw = BitplaneWeight::from_packed(&w).expect("transpose");
        let scratch: ScratchPool<u8> = ScratchPool::new();
        let lanes: ScratchPool<u64> = ScratchPool::new();
        let want = conv2d_integer(&x, &w, spec).expect("integer");
        let got = bitplane_conv2d(&x, &bw, spec, &scratch, &lanes).expect("bitplane");
        prop_assert_eq!(got.dims(), want.dims());
        prop_assert_eq!(got.data(), want.data());
    }

    /// Thread-count determinism: 1 worker and 4 workers produce
    /// identical bits (the row partition never changes the per-output
    /// accumulation order).
    #[test]
    fn bitplane_results_are_thread_count_invariant((w, x) in linear_case()) {
        let bw = BitplaneWeight::from_packed(&w).expect("transpose");
        let lanes: ScratchPool<u64> = ScratchPool::new();
        let y1 = with_threads(1, || {
            bitplane_linear(&x, &bw, Routine::PanelGemm, &lanes).expect("1 thread")
        });
        let y4 = with_threads(4, || {
            bitplane_linear(&x, &bw, Routine::PanelGemm, &lanes).expect("4 threads")
        });
        prop_assert_eq!(y1.data(), y4.data());
    }

    /// Pruned planes are free: shifting every code left by two empties
    /// planes 0 and 1, which must show up as skipped passes (both
    /// signs) while the kernel stays bit-exact.
    #[test]
    fn pruned_planes_are_skipped_and_exact((mut w, x) in linear_case()) {
        for c in &mut w.codes {
            // Keep magnitudes small enough that `<< 2` stays in-plane.
            *c = (*c).clamp(-63, 63) << 2;
        }
        let bw = BitplaneWeight::from_packed(&w).expect("transpose");
        if w.codes.iter().any(|&c| c != 0) {
            // Planes 0 and 1 are empty for both signs.
            prop_assert!(bw.skipped_passes >= 4, "skipped {}", bw.skipped_passes);
        }
        let lanes: ScratchPool<u64> = ScratchPool::new();
        let want = linear_integer(&x, &w).expect("integer");
        let got = bitplane_linear(&x, &bw, Routine::PanelGemm, &lanes).expect("bitplane");
        prop_assert_eq!(got.data(), want.data());
    }
}
