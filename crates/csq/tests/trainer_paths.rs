//! Integration tests for trainer configurations not exercised by the
//! unit tests: the SGD path, learning-rate warmup, paper-preset configs
//! and the budget regularizer running inside `fit`.

use csq_core::prelude::*;
use csq_core::trainer::{fit, FitConfig, OptimKind};
use csq_data::{Dataset, SyntheticSpec};
use csq_nn::models::{resnet_cifar, ModelConfig};
use csq_nn::weight::float_factory;

fn tiny_data() -> Dataset {
    Dataset::synthetic(
        &SyntheticSpec::cifar_like(1)
            .with_samples(16, 8)
            .with_classes(4)
            .with_noise(0.5),
    )
}

fn tiny_model_cfg() -> ModelConfig {
    let mut cfg = ModelConfig::cifar_like(6, None, 1);
    cfg.num_classes = 4;
    cfg
}

#[test]
fn sgd_path_trains_float_model() {
    let data = tiny_data();
    let mut fac = float_factory();
    let mut model = resnet_cifar(tiny_model_cfg(), &mut fac, 1);
    let mut cfg = FitConfig::fast(10);
    cfg.optim = OptimKind::Sgd;
    cfg.base_lr = 0.05;
    cfg.batch_size = 8;
    let history = fit(&mut model, &data, &cfg, false).unwrap();
    let first = history.first().unwrap().loss;
    let last = history.last().unwrap().loss;
    assert!(last < first, "SGD should reduce loss: {first} -> {last}");
}

#[test]
fn warmup_ramps_learning_rate() {
    let data = tiny_data();
    let mut fac = float_factory();
    let mut model = resnet_cifar(tiny_model_cfg(), &mut fac, 1);
    let mut cfg = FitConfig::fast(6);
    cfg.warmup_epochs = 3;
    cfg.batch_size = 8;
    let history = fit(&mut model, &data, &cfg, false).unwrap();
    let lrs: Vec<f32> = history.iter().map(|h| h.lr).collect();
    assert!(lrs[0] < lrs[1] && lrs[1] < lrs[2], "warmup ramp: {lrs:?}");
    assert!(lrs[3] >= lrs[4], "cosine decay after warmup: {lrs:?}");
}

#[test]
fn paper_config_presets_are_faithful() {
    let cifar = CsqConfig::paper_cifar(3.0, 600);
    assert_eq!(cifar.epochs, 600);
    assert_eq!(cifar.base_lr, 0.1);
    assert_eq!(cifar.lambda, 0.01);
    assert_eq!(cifar.beta_max, 200.0);
    assert_eq!(
        cifar.beta_saturate, 1.0,
        "paper reaches beta_max last epoch"
    );
    assert_eq!(cifar.weight_decay, 5e-4);
    assert!(matches!(cifar.optim, OptimKind::Sgd));
    assert_eq!(cifar.finetune_epochs, 0, "no finetuning on CIFAR");

    let imagenet = CsqConfig::paper_imagenet(2.0, 200, 100);
    assert_eq!(imagenet.warmup_epochs, 5);
    assert_eq!(imagenet.weight_decay, 1e-4);
    assert_eq!(imagenet.finetune_epochs, 100);
}

#[test]
fn paper_sgd_pipeline_smoke_test() {
    // The full Algorithm 1 on the paper's SGD path, scaled to 4 epochs:
    // must run end to end and produce an exactly quantized model.
    let data = tiny_data();
    let mut fac = csq_factory(8);
    let mut model_cfg = tiny_model_cfg();
    model_cfg.act_bits = Some(3);
    let mut model = resnet_cifar(model_cfg, &mut fac, 1);
    let mut cfg = CsqConfig::paper_cifar(4.0, 4);
    cfg.batch_size = 8;
    let report = CsqTrainer::new(cfg).train(&mut model, &data).unwrap();
    assert_eq!(report.history.len(), 4);
    assert!(report.final_avg_bits <= 8.0);
    assert!(report.scheme.layers.iter().all(|l| l.bits >= 0.0));
}

#[test]
fn budget_delta_is_logged_in_history() {
    let data = tiny_data();
    let mut fac = csq_factory(8);
    let mut model = resnet_cifar(tiny_model_cfg(), &mut fac, 1);
    let mut cfg = CsqConfig::fast(3.0).with_epochs(6);
    cfg.batch_size = 8;
    let report = CsqTrainer::new(cfg).train(&mut model, &data).unwrap();
    // Early epochs are over budget: Δ_S starts positive.
    assert!(
        report.history[0].delta_s > 0.0,
        "initial Δ_S {} should be positive (8 bits vs 3 target)",
        report.history[0].delta_s
    );
    // Temperature telemetry is populated and rising.
    assert!(report.history.last().unwrap().beta > report.history[0].beta);
}

#[test]
fn soft_counting_budget_also_converges() {
    let data = tiny_data();
    let mut fac = csq_factory(8);
    let mut model = resnet_cifar(tiny_model_cfg(), &mut fac, 1);
    let mut cfg = FitConfig::fast(12);
    cfg.batch_size = 8;
    cfg.beta = Some(TemperatureSchedule::paper_default(12).with_saturation(0.75));
    cfg.budget = Some(BudgetRegularizer::new(0.3, 3.0).with_soft_counting());
    fit(&mut model, &data, &cfg, false).unwrap();
    let bits = model_precision(&mut model).avg_bits;
    assert!(
        (bits - 3.0).abs() <= 2.0,
        "soft-counting budget should steer precision toward 3, got {bits}"
    );
}
