//! CSQ: growing mixed-precision quantization with bi-level continuous
//! sparsification (DAC 2023).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`gate`] — the temperature sigmoid `f_β(x) = σ(βx)` (Eq. 2) and the
//!   exponential temperature schedule `β = β₀·β_max^(epoch/T)`;
//! * [`bitrep`] — the bi-level bit-level weight parameterization (Eq. 5):
//!   every weight element is a sum of signed bit planes gated by
//!   per-element logits `m_p, m_n` and a per-layer per-bit mask `m_B`,
//!   all relaxed with `f_β` so the whole path is exactly differentiable
//!   (implemented as a [`csq_nn::WeightSource`]);
//! * [`budget`] — the budget-aware model-size regularization (Eqs. 6–7)
//!   with the `Δ_S` scaling that grows or prunes layer precision toward a
//!   target average;
//! * [`trainer`] — Algorithm 1: the CSQ training phase plus the optional
//!   mask-frozen finetuning phase with temperature rewind, along with the
//!   generic QAT training loop shared with the baselines;
//! * [`scheme`] — extraction, accounting and serialization of the final
//!   mixed-precision quantization scheme;
//! * [`resume`] and [`fault`] — fault tolerance: versioned, checksummed
//!   training snapshots with exact resume, NaN-storm recovery policies,
//!   and a deterministic fault injector for testing them;
//! * [`telemetry`] — opt-in (`CSQ_TELEMETRY=1`) per-epoch series — loss,
//!   average bits, gate sparsity, per-layer bit widths — published to the
//!   shared `csq-obs` metrics registry.
//!
//! # Example
//!
//! Train a tiny CNN with CSQ toward a 3-bit average budget:
//!
//! ```no_run
//! use csq_core::prelude::*;
//! use csq_data::{Dataset, SyntheticSpec};
//! use csq_nn::models::{resnet_cifar, ModelConfig};
//!
//! let data = Dataset::synthetic(&SyntheticSpec::cifar_like(0));
//! let cfg = CsqConfig::fast(3.0);
//! let mut factory = csq_factory(8);
//! let model_cfg = ModelConfig::cifar_like(8, Some(3), 0);
//! let mut model = resnet_cifar(model_cfg, &mut factory, 1);
//! let report = CsqTrainer::new(cfg).train(&mut model, &data).unwrap();
//! println!("final accuracy {:.2}%", report.final_test_accuracy * 100.0);
//! ```

#![deny(missing_docs)]
// Library code must surface failures as structured errors (or documented
// contract panics via `panic!`/`assert!`), never ad-hoc unwraps. Tests and
// doctests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod act_search;
pub mod analysis;
pub mod bitplane;
pub mod bitrep;
pub mod budget;
pub mod fault;
pub mod gate;
pub mod pack;
pub mod qinfer;
pub mod resume;
pub mod scheme;
pub mod telemetry;
pub mod trainer;

pub use act_search::SearchedActQuant;
pub use analysis::{
    logit_gate_stats, mask_gate_stats, model_summary, GateStats, LayerSummary, ModelSummary,
};
pub use bitplane::{
    bitplane_conv2d, bitplane_linear, select_kernel, BitplaneError, BitplaneWeight, KernelChoice,
    Routine, WeightedOpKind,
};
pub use bitrep::{
    csq_factory, csq_factory_per_channel, csq_uniform_factory, BitQuantizer, QuantMode,
    ScaleGranularity,
};
pub use budget::{model_precision, BudgetRegularizer, PrecisionStats};
pub use fault::{ChaosPlan, FaultPlan};
pub use gate::{temp_sigmoid, temp_sigmoid_grad, TemperatureSchedule};
pub use pack::{PackedModel, PackedWeight};
pub use qinfer::{
    conv2d_integer, depthwise_conv2d_integer, linear_integer, QinferError, QuantizedActivations,
};
pub use resume::{SnapshotError, TrainPhase, TrainSnapshot};
pub use scheme::{LayerScheme, QuantScheme};
pub use telemetry::{set_telemetry, telemetry_enabled};
pub use trainer::{
    fit, fit_with, CsqConfig, CsqTrainer, EpochStats, FitConfig, FitOptions, RecoveryPolicy,
    SnapshotPolicy, TrainError, TrainReport,
};

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::analysis::{model_summary, ModelSummary};
    pub use crate::bitrep::{csq_factory, csq_uniform_factory, BitQuantizer, QuantMode};
    pub use crate::budget::{model_precision, BudgetRegularizer, PrecisionStats};
    pub use crate::fault::FaultPlan;
    pub use crate::gate::{temp_sigmoid, TemperatureSchedule};
    pub use crate::qinfer::{QinferError, QuantizedActivations};
    pub use crate::resume::{TrainPhase, TrainSnapshot};
    pub use crate::scheme::{LayerScheme, QuantScheme};
    pub use crate::trainer::{
        fit, CsqConfig, CsqTrainer, FitConfig, RecoveryPolicy, SnapshotPolicy, TrainError,
        TrainReport,
    };
}
