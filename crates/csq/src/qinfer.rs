//! Integer-arithmetic inference kernels for packed weights.
//!
//! The paper's efficiency argument (§I, citing Horowitz's ISSCC analysis)
//! is that linear quantization lets deployment replace floating-point
//! multiplies with fixed-point ones. These kernels demonstrate that path
//! for the workspace's packed models: activations are quantized to
//! unsigned 8-bit codes, weights come from [`crate::PackedWeight`] integer
//! codes, accumulation happens in `i64`, and a single float multiply per
//! output element applies the combined scale:
//!
//! ```text
//! y ≈ (Σ_k w_code[k] · x_code[k]) · (w_step · x_step)
//! ```
//!
//! The kernels are bit-exact with respect to their own quantization
//! grids; tests bound their deviation from the float path by the
//! activation quantization error (the weight path is exact because
//! packed codes reconstruct the finalized weights exactly).
//!
//! Two quantization entry points exist: [`QuantizedActivations::quantize`]
//! derives the range from the tensor's own maximum (fine for one-off
//! analysis, but the grid then varies per request), while
//! [`QuantizedActivations::quantize_with_step`] injects a *calibrated*
//! step so a serving engine can use one fixed grid for every request —
//! which is what makes batched inference bit-identical to single-request
//! inference. All entry points return [`QinferError`] instead of
//! panicking (lib crates are panic-free on user-reachable paths).

use crate::pack::PackedWeight;
use csq_tensor::conv::ConvSpec;
use csq_tensor::Tensor;

/// Why an integer-inference kernel rejected its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum QinferError {
    /// Tried to quantize a tensor with no elements.
    EmptyActivations,
    /// A calibrated quantization step must be positive and finite.
    BadStep {
        /// The offending step value.
        step: f32,
    },
    /// A tensor did not have the rank the kernel requires.
    BadRank {
        /// Which operand was malformed (`"activations"` / `"weights"`).
        what: &'static str,
        /// Required rank.
        expected: usize,
        /// Rank actually supplied.
        actual: usize,
    },
    /// Activation / weight shapes do not agree.
    ShapeMismatch {
        /// What disagreed (`"channels"`, `"features"`, `"kernel"`).
        what: &'static str,
        /// The activation-side extent.
        activation: usize,
        /// The weight-side extent.
        weight: usize,
    },
}

impl std::fmt::Display for QinferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QinferError::EmptyActivations => {
                write!(f, "cannot quantize an empty activation tensor")
            }
            QinferError::BadStep { step } => {
                write!(f, "activation step must be positive and finite, got {step}")
            }
            QinferError::BadRank {
                what,
                expected,
                actual,
            } => write!(f, "{what} must have rank {expected}, got rank {actual}"),
            QinferError::ShapeMismatch {
                what,
                activation,
                weight,
            } => write!(
                f,
                "{what} mismatch: activations have {activation}, weights expect {weight}"
            ),
        }
    }
}

impl std::error::Error for QinferError {}

/// An activation tensor quantized to unsigned 8-bit codes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedActivations {
    /// Codes in `0..=255`, row-major, same logical shape as the source.
    pub codes: Vec<u8>,
    /// Dequantization step: `float = code · step`.
    pub step: f32,
    /// Logical tensor shape.
    pub dims: Vec<usize>,
}

impl QuantizedActivations {
    /// Quantizes a non-negative activation tensor (post-ReLU) to 8-bit
    /// codes on `[0, max]`, deriving the range from the tensor's own
    /// maximum. Returns [`QinferError::EmptyActivations`] for an empty
    /// tensor.
    pub fn quantize(x: &Tensor) -> Result<QuantizedActivations, QinferError> {
        if x.numel() == 0 {
            return Err(QinferError::EmptyActivations);
        }
        let max = x.max().max(1e-8);
        Self::quantize_with_step(x, max / 255.0)
    }

    /// Quantizes with an externally *calibrated* step: codes are
    /// `round(clamp(v, 0, 255·step)/step)`, so the representable range
    /// is `[0, 255·step]` regardless of this particular tensor's values.
    /// Using one fixed step for every request is what makes a serving
    /// engine's batched results bit-identical to single-request results.
    ///
    /// Returns [`QinferError::EmptyActivations`] for an empty tensor and
    /// [`QinferError::BadStep`] for a non-positive or non-finite step.
    pub fn quantize_with_step(x: &Tensor, step: f32) -> Result<QuantizedActivations, QinferError> {
        Self::quantize_with_step_into(x, step, Vec::new())
    }

    /// [`quantize_with_step`](Self::quantize_with_step) writing into a
    /// caller-supplied buffer (resized to fit), so a serving worker can
    /// recycle code buffers through a
    /// [`csq_tensor::par::ScratchPool<u8>`] instead of allocating per
    /// request.
    pub fn quantize_with_step_into(
        x: &Tensor,
        step: f32,
        mut buf: Vec<u8>,
    ) -> Result<QuantizedActivations, QinferError> {
        if x.numel() == 0 {
            return Err(QinferError::EmptyActivations);
        }
        if !(step.is_finite() && step > 0.0) {
            return Err(QinferError::BadStep { step });
        }
        let hi = 255.0 * step;
        buf.clear();
        buf.extend(
            x.iter()
                .map(|&v| (v.clamp(0.0, hi) / step).round().min(255.0) as u8),
        );
        Ok(QuantizedActivations {
            codes: buf,
            step,
            dims: x.dims().to_vec(),
        })
    }

    /// Reconstructs the float tensor this quantization represents.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.codes.iter().map(|&c| c as f32 * self.step).collect(),
            &self.dims,
        )
    }
}

/// Integer 2-D convolution: packed integer weights × 8-bit activations,
/// `i64` accumulation, one float scale per output.
///
/// `x` is `[N, IC, H, W]` quantized activations; `w` is a packed conv
/// weight `[OC, IC, KH, KW]`. Returns float `[N, OC, OH, OW]`.
///
/// Every output element is an independent `i64` dot product with a fixed
/// in-kernel accumulation order, so results for one sample never depend
/// on which other samples share the batch.
pub fn conv2d_integer(
    x: &QuantizedActivations,
    w: &PackedWeight,
    spec: ConvSpec,
) -> Result<Tensor, QinferError> {
    if x.dims.len() != 4 {
        return Err(QinferError::BadRank {
            what: "activations",
            expected: 4,
            actual: x.dims.len(),
        });
    }
    if w.dims.len() != 4 {
        return Err(QinferError::BadRank {
            what: "weights",
            expected: 4,
            actual: w.dims.len(),
        });
    }
    let (n, ic, h, wd) = (x.dims[0], x.dims[1], x.dims[2], x.dims[3]);
    let (oc, wic, kh, kw) = (w.dims[0], w.dims[1], w.dims[2], w.dims[3]);
    if ic != wic {
        return Err(QinferError::ShapeMismatch {
            what: "channels",
            activation: ic,
            weight: wic,
        });
    }
    if kh != spec.kernel || kw != spec.kernel {
        return Err(QinferError::ShapeMismatch {
            what: "kernel",
            activation: spec.kernel,
            weight: kh.max(kw),
        });
    }
    let (oh, ow) = (spec.out_size(h), spec.out_size(wd));
    let scale = w.step * x.step;

    // Pruned-weight fast paths. CSQ's bi-level sparsification drives
    // whole filters — and whole input-channel slices of filters — to
    // exactly zero, and a zero code contributes nothing to the `i64`
    // sum, so skipping them is bit-exact by construction.
    let slice_nonzero: Vec<bool> = (0..oc * ic)
        .map(|i| {
            let base = (i / ic) * ic * kh * kw + (i % ic) * kh * kw;
            w.codes[base..base + kh * kw].iter().any(|&c| c != 0)
        })
        .collect();

    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let mut oidx = 0usize;
    for ni in 0..n {
        for oci in 0..oc {
            if !slice_nonzero[oci * ic..(oci + 1) * ic].iter().any(|&nz| nz) {
                // Entire filter pruned: the output plane stays zero.
                oidx += oh * ow;
                continue;
            }
            let wbase = oci * ic * kh * kw;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc: i64 = 0;
                    for ici in 0..ic {
                        if !slice_nonzero[oci * ic + ici] {
                            continue;
                        }
                        let xbase = (ni * ic + ici) * h * wd;
                        let wrow = wbase + ici * kh * kw;
                        for ki in 0..kh {
                            let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..kw {
                                let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                                if jj < 0 || jj >= wd as isize {
                                    continue;
                                }
                                let xc = x.codes[xbase + ii as usize * wd + jj as usize] as i64;
                                let wc = w.codes[wrow + ki * kw + kj] as i64;
                                acc += xc * wc;
                            }
                        }
                    }
                    out.data_mut()[oidx] = acc as f32 * scale;
                    oidx += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Integer depthwise 2-D convolution: one `[1, K, K]` integer filter per
/// channel.
///
/// `x` is `[N, C, H, W]` quantized activations; `w` is a packed
/// depthwise weight `[C, 1, KH, KW]`. Returns float `[N, C, OH, OW]`.
pub fn depthwise_conv2d_integer(
    x: &QuantizedActivations,
    w: &PackedWeight,
    spec: ConvSpec,
) -> Result<Tensor, QinferError> {
    if x.dims.len() != 4 {
        return Err(QinferError::BadRank {
            what: "activations",
            expected: 4,
            actual: x.dims.len(),
        });
    }
    if w.dims.len() != 4 {
        return Err(QinferError::BadRank {
            what: "weights",
            expected: 4,
            actual: w.dims.len(),
        });
    }
    let (n, c, h, wd) = (x.dims[0], x.dims[1], x.dims[2], x.dims[3]);
    let (wc0, wone, kh, kw) = (w.dims[0], w.dims[1], w.dims[2], w.dims[3]);
    if c != wc0 || wone != 1 {
        return Err(QinferError::ShapeMismatch {
            what: "channels",
            activation: c,
            weight: wc0 * wone,
        });
    }
    if kh != spec.kernel || kw != spec.kernel {
        return Err(QinferError::ShapeMismatch {
            what: "kernel",
            activation: spec.kernel,
            weight: kh.max(kw),
        });
    }
    let (oh, ow) = (spec.out_size(h), spec.out_size(wd));
    let scale = w.step * x.step;

    // Per-channel filters pruned to zero leave their output plane zero.
    let filter_nonzero: Vec<bool> = (0..c)
        .map(|ci| {
            w.codes[ci * kh * kw..(ci + 1) * kh * kw]
                .iter()
                .any(|&v| v != 0)
        })
        .collect();

    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            if !filter_nonzero[ci] {
                oidx += oh * ow;
                continue;
            }
            let xbase = (ni * c + ci) * h * wd;
            let wrow = ci * kh * kw;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc: i64 = 0;
                    for ki in 0..kh {
                        let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                            if jj < 0 || jj >= wd as isize {
                                continue;
                            }
                            let xc = x.codes[xbase + ii as usize * wd + jj as usize] as i64;
                            let wc = w.codes[wrow + ki * kw + kj] as i64;
                            acc += xc * wc;
                        }
                    }
                    out.data_mut()[oidx] = acc as f32 * scale;
                    oidx += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Integer fully-connected layer: `y = codes(x) · codes(W)ᵀ · scale`.
///
/// `x` is `[B, IN]` quantized activations; `w` is a packed linear weight
/// `[OUT, IN]`. Returns float `[B, OUT]`.
pub fn linear_integer(x: &QuantizedActivations, w: &PackedWeight) -> Result<Tensor, QinferError> {
    if x.dims.len() != 2 {
        return Err(QinferError::BadRank {
            what: "activations",
            expected: 2,
            actual: x.dims.len(),
        });
    }
    if w.dims.len() != 2 {
        return Err(QinferError::BadRank {
            what: "weights",
            expected: 2,
            actual: w.dims.len(),
        });
    }
    let (b, inf) = (x.dims[0], x.dims[1]);
    let (outf, winf) = (w.dims[0], w.dims[1]);
    if inf != winf {
        return Err(QinferError::ShapeMismatch {
            what: "features",
            activation: inf,
            weight: winf,
        });
    }
    let scale = w.step * x.step;
    // Output rows whose weights are all zero stay zero; skipping the
    // dot product entirely is bit-exact.
    let row_nonzero: Vec<bool> = (0..outf)
        .map(|oi| w.codes[oi * inf..(oi + 1) * inf].iter().any(|&v| v != 0))
        .collect();
    let mut out = Tensor::zeros(&[b, outf]);
    for bi in 0..b {
        for oi in 0..outf {
            if !row_nonzero[oi] {
                continue;
            }
            let mut acc: i64 = 0;
            for k in 0..inf {
                acc += x.codes[bi * inf + k] as i64 * w.codes[oi * inf + k] as i64;
            }
            out.data_mut()[bi * outf + oi] = acc as f32 * scale;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrep::{BitQuantizer, QuantMode};
    use crate::pack::PackedModel;
    use csq_nn::{Linear, WeightSource};
    use csq_tensor::conv::conv2d;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn packed_weight(dims: &[usize], seed: u64) -> (PackedWeight, Tensor) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w0 = init::uniform(dims, -0.5, 0.5, &mut rng);
        let mut q = BitQuantizer::from_float(&w0, 8, QuantMode::Csq);
        q.finalize();
        let w = q.materialize();
        let (inf, outf) = (dims.iter().product::<usize>(), 1usize);
        let _ = (inf, outf);
        let mut layer = Linear::new(
            Box::new(q),
            dims[1..].iter().product::<usize>().max(1),
            dims[0],
            false,
        );
        let packed = PackedModel::pack(&mut layer).unwrap();
        (packed.layers[0].clone(), w)
    }

    #[test]
    fn activation_quantization_round_trip_error_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::uniform(&[64], 0.0, 3.0, &mut rng);
        let q = QuantizedActivations::quantize(&x).unwrap();
        let back = q.dequantize();
        let bound = q.step * 0.5 + 1e-6;
        for (&a, &b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_with_step_uses_the_injected_grid() {
        let x = Tensor::from_vec(vec![0.0, 0.5, 1.0, 7.0], &[4]);
        let q = QuantizedActivations::quantize_with_step(&x, 0.01).unwrap();
        assert_eq!(q.step, 0.01);
        assert_eq!(q.codes, vec![0, 50, 100, 255], "7.0 clamps to 255·step");
        // Unlike `quantize`, the grid does not depend on this tensor's
        // own max: a second tensor with a different max shares the grid.
        let y = Tensor::from_vec(vec![0.5], &[1]);
        let qy = QuantizedActivations::quantize_with_step(&y, 0.01).unwrap();
        assert_eq!(qy.codes[0], q.codes[1]);
    }

    #[test]
    fn quantize_rejects_bad_inputs() {
        let empty = Tensor::zeros(&[0]);
        assert_eq!(
            QuantizedActivations::quantize(&empty),
            Err(QinferError::EmptyActivations)
        );
        let x = Tensor::from_vec(vec![1.0], &[1]);
        assert!(matches!(
            QuantizedActivations::quantize_with_step(&x, 0.0),
            Err(QinferError::BadStep { .. })
        ));
        assert!(matches!(
            QuantizedActivations::quantize_with_step(&x, f32::NAN),
            Err(QinferError::BadStep { .. })
        ));
    }

    #[test]
    fn quantize_with_step_into_recycles_the_buffer() {
        let x = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]);
        let mut buf = Vec::with_capacity(64);
        buf.push(9u8); // stale contents must be cleared
        let q = QuantizedActivations::quantize_with_step_into(&x, 0.01, buf).unwrap();
        assert_eq!(q.codes.len(), 3);
        assert_eq!(q.codes, vec![10, 20, 30]);
    }

    #[test]
    fn integer_conv_matches_float_conv_within_activation_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Non-negative activations, as after ReLU.
        let x = init::uniform(&[1, 2, 6, 6], 0.0, 1.0, &mut rng);
        let (pw, w) = packed_weight(&[3, 2, 3, 3], 2);
        let spec = ConvSpec::new(3, 1, 1);

        let xq = QuantizedActivations::quantize(&x).unwrap();
        let y_int = conv2d_integer(&xq, &pw, spec).unwrap();
        // Reference: float conv on the dequantized activations is
        // *exactly* what the integer path computes.
        let y_ref = conv2d(&xq.dequantize(), &w, spec);
        assert!(
            y_int.approx_eq(&y_ref, 1e-3),
            "integer path must match float path on the same grid"
        );
        // And against the unquantized activations the error is bounded
        // by the activation quantization noise.
        let y_float = conv2d(&x, &w, spec);
        let max_err = y_int
            .iter()
            .zip(y_float.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // Worst case: sum over kernel of |w|·(step/2).
        let bound = 2.0 * 9.0 * w.max_abs() * xq.step * 0.5 + 1e-4;
        assert!(max_err <= bound, "err {max_err} > bound {bound}");
    }

    #[test]
    fn integer_depthwise_conv_matches_dequantized_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = init::uniform(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
        let (pw, w) = packed_weight(&[3, 1, 3, 3], 8);
        let spec = ConvSpec::new(3, 1, 1);
        let xq = QuantizedActivations::quantize(&x).unwrap();
        let y_int = depthwise_conv2d_integer(&xq, &pw, spec).unwrap();
        let y_ref = csq_tensor::conv::depthwise_conv2d(&xq.dequantize(), &w, spec);
        assert!(y_int.approx_eq(&y_ref, 1e-3));
    }

    #[test]
    fn integer_linear_matches_float_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = init::uniform(&[4, 8], 0.0, 2.0, &mut rng);
        let (pw, w) = packed_weight(&[5, 8], 4);
        let xq = QuantizedActivations::quantize(&x).unwrap();
        let y_int = linear_integer(&xq, &pw).unwrap();
        let y_ref = xq.dequantize().matmul_nt(&w);
        assert!(y_int.approx_eq(&y_ref, 1e-3));
    }

    #[test]
    fn integer_accumulation_is_exact_for_large_sums() {
        // 4096 products of max-magnitude codes must not lose precision
        // (i64 accumulation; f32 would).
        let n = 4096usize;
        let xq = QuantizedActivations {
            codes: vec![255u8; n],
            step: 1.0,
            dims: vec![1, n],
        };
        let pw = PackedWeight {
            path: "weight".to_string(),
            codes: vec![255i32; n],
            step: 1.0,
            dims: vec![1, n],
            bits: 8.0,
        };
        let y = linear_integer(&xq, &pw).unwrap();
        let expect = 255.0f64 * 255.0 * n as f64;
        assert_eq!(y.data()[0] as f64, expect);
    }

    #[test]
    fn kernels_report_shape_mismatches_as_errors() {
        let xq = QuantizedActivations {
            codes: vec![0; 4],
            step: 1.0,
            dims: vec![1, 4],
        };
        let pw = PackedWeight {
            path: "weight".to_string(),
            codes: vec![0; 6],
            step: 1.0,
            dims: vec![2, 3],
            bits: 8.0,
        };
        assert_eq!(
            linear_integer(&xq, &pw),
            Err(QinferError::ShapeMismatch {
                what: "features",
                activation: 4,
                weight: 3,
            })
        );
        let bad_rank = conv2d_integer(&xq, &pw, ConvSpec::new(3, 1, 1));
        assert!(matches!(bad_rank, Err(QinferError::BadRank { .. })));
    }

    #[test]
    fn pruned_filter_fast_paths_stay_bit_exact() {
        // Zero an entire output filter and one input-channel slice of
        // another; the fast paths must skip them without changing a bit
        // of the output (a skipped dot product and a computed-zero dot
        // product are both exactly 0.0).
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let x = init::uniform(&[2, 3, 5, 5], 0.0, 1.0, &mut rng);
        let (mut pw, _) = packed_weight(&[4, 3, 3, 3], 22);
        let flt = 3 * 3 * 3;
        pw.codes[flt..2 * flt].iter_mut().for_each(|c| *c = 0);
        pw.codes[2 * flt + 9..2 * flt + 18]
            .iter_mut()
            .for_each(|c| *c = 0);
        let xq = QuantizedActivations::quantize(&x).unwrap();
        let spec = ConvSpec::new(3, 1, 1);
        let y = conv2d_integer(&xq, &pw, spec).unwrap();
        // Dense reference computed without the fast paths: the same
        // accumulation on a weight where "zero" is spelled explicitly.
        let y_ref = csq_tensor::conv::conv2d(&xq.dequantize(), &pw_to_tensor(&pw), spec);
        assert!(y.approx_eq(&y_ref, 1e-4));
        let per = 5 * 5;
        assert!(
            y.data()[per..2 * per].iter().all(|&v| v == 0.0),
            "pruned filter's output plane must be exactly zero"
        );

        // Linear: a zero output row is skipped, not computed.
        let (mut lw, _) = packed_weight(&[4, 8], 23);
        lw.codes[8..16].iter_mut().for_each(|c| *c = 0);
        let xl = init::uniform(&[3, 8], 0.0, 1.0, &mut rng);
        let ql = QuantizedActivations::quantize(&xl).unwrap();
        let yl = linear_integer(&ql, &lw).unwrap();
        for bi in 0..3 {
            assert_eq!(yl.data()[bi * 4 + 1], 0.0);
        }

        // Depthwise: zero one channel's filter.
        let (mut dw, _) = packed_weight(&[3, 1, 3, 3], 24);
        dw.codes[..9].iter_mut().for_each(|c| *c = 0);
        let xd = init::uniform(&[1, 3, 5, 5], 0.0, 1.0, &mut rng);
        let qd = QuantizedActivations::quantize(&xd).unwrap();
        let yd = depthwise_conv2d_integer(&qd, &dw, spec).unwrap();
        assert!(yd.data()[..per].iter().all(|&v| v == 0.0));
    }

    /// Reconstructs the float tensor a packed weight's codes represent.
    fn pw_to_tensor(w: &PackedWeight) -> Tensor {
        Tensor::from_vec(
            w.codes.iter().map(|&c| c as f32 * w.step).collect(),
            &w.dims,
        )
    }

    #[test]
    fn batched_integer_kernels_equal_concatenated_single_samples() {
        // The serving engine's bit-identity guarantee reduces to this:
        // with one calibrated step, the batch kernel computes each
        // sample exactly as the single-sample kernel would.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let xs: Vec<Tensor> = (0..3)
            .map(|_| init::uniform(&[1, 2, 5, 5], 0.0, 1.0, &mut rng))
            .collect();
        let (pw, _) = packed_weight(&[4, 2, 3, 3], 12);
        let spec = ConvSpec::new(3, 1, 1);
        let step = 0.004;

        let batch = Tensor::concat_axis0(&xs.iter().collect::<Vec<_>>());
        let qb = QuantizedActivations::quantize_with_step(&batch, step).unwrap();
        let yb = conv2d_integer(&qb, &pw, spec).unwrap();
        for (i, x) in xs.iter().enumerate() {
            let q1 = QuantizedActivations::quantize_with_step(x, step).unwrap();
            let y1 = conv2d_integer(&q1, &pw, spec).unwrap();
            let per = y1.numel();
            assert_eq!(
                &yb.data()[i * per..(i + 1) * per],
                y1.data(),
                "sample {i} differs between batched and single"
            );
        }
    }
}
