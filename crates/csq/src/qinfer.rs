//! Integer-arithmetic inference kernels for packed weights.
//!
//! The paper's efficiency argument (§I, citing Horowitz's ISSCC analysis)
//! is that linear quantization lets deployment replace floating-point
//! multiplies with fixed-point ones. These kernels demonstrate that path
//! for the workspace's packed models: activations are quantized to
//! unsigned 8-bit codes, weights come from [`crate::PackedWeight`] integer
//! codes, accumulation happens in `i64`, and a single float multiply per
//! output element applies the combined scale:
//!
//! ```text
//! y ≈ (Σ_k w_code[k] · x_code[k]) · (w_step · x_step)
//! ```
//!
//! The kernels are bit-exact with respect to their own quantization
//! grids; tests bound their deviation from the float path by the
//! activation quantization error (the weight path is exact because
//! packed codes reconstruct the finalized weights exactly).

use crate::pack::PackedWeight;
use csq_tensor::conv::ConvSpec;
use csq_tensor::Tensor;

/// An activation tensor quantized to unsigned 8-bit codes.
#[derive(Debug, Clone)]
pub struct QuantizedActivations {
    /// Codes in `0..=255`, row-major, same logical shape as the source.
    pub codes: Vec<u8>,
    /// Dequantization step: `float = code · step`.
    pub step: f32,
    /// Logical tensor shape.
    pub dims: Vec<usize>,
}

impl QuantizedActivations {
    /// Quantizes a non-negative activation tensor (post-ReLU) to 8-bit
    /// codes on `[0, max]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn quantize(x: &Tensor) -> QuantizedActivations {
        assert!(x.numel() > 0, "cannot quantize an empty activation tensor");
        let max = x.max().max(1e-8);
        let step = max / 255.0;
        QuantizedActivations {
            codes: x
                .iter()
                .map(|&v| (v.clamp(0.0, max) / step).round() as u8)
                .collect(),
            step,
            dims: x.dims().to_vec(),
        }
    }

    /// Reconstructs the float tensor this quantization represents.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.codes.iter().map(|&c| c as f32 * self.step).collect(),
            &self.dims,
        )
    }
}

/// Integer 2-D convolution: packed integer weights × 8-bit activations,
/// `i64` accumulation, one float scale per output.
///
/// `x` is `[N, IC, H, W]` quantized activations; `w` is a packed conv
/// weight `[OC, IC, KH, KW]`. Returns float `[N, OC, OH, OW]`.
///
/// # Panics
///
/// Panics on shape mismatches between `x`, `w` and `spec`.
pub fn conv2d_integer(x: &QuantizedActivations, w: &PackedWeight, spec: ConvSpec) -> Tensor {
    assert_eq!(x.dims.len(), 4, "activations must be NCHW");
    assert_eq!(w.dims.len(), 4, "weights must be [OC, IC, KH, KW]");
    let (n, ic, h, wd) = (x.dims[0], x.dims[1], x.dims[2], x.dims[3]);
    let (oc, wic, kh, kw) = (w.dims[0], w.dims[1], w.dims[2], w.dims[3]);
    assert_eq!(ic, wic, "channel mismatch");
    assert_eq!(kh, spec.kernel, "kernel mismatch");
    assert_eq!(kw, spec.kernel, "kernel mismatch");
    let (oh, ow) = (spec.out_size(h), spec.out_size(wd));
    let scale = w.step * x.step;

    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let mut oidx = 0usize;
    for ni in 0..n {
        for oci in 0..oc {
            let wbase = oci * ic * kh * kw;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc: i64 = 0;
                    for ici in 0..ic {
                        let xbase = (ni * ic + ici) * h * wd;
                        let wrow = wbase + ici * kh * kw;
                        for ki in 0..kh {
                            let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..kw {
                                let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                                if jj < 0 || jj >= wd as isize {
                                    continue;
                                }
                                let xc = x.codes[xbase + ii as usize * wd + jj as usize] as i64;
                                let wc = w.codes[wrow + ki * kw + kj] as i64;
                                acc += xc * wc;
                            }
                        }
                    }
                    out.data_mut()[oidx] = acc as f32 * scale;
                    oidx += 1;
                }
            }
        }
    }
    out
}

/// Integer fully-connected layer: `y = codes(x) · codes(W)ᵀ · scale`.
///
/// `x` is `[B, IN]` quantized activations; `w` is a packed linear weight
/// `[OUT, IN]`. Returns float `[B, OUT]`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn linear_integer(x: &QuantizedActivations, w: &PackedWeight) -> Tensor {
    assert_eq!(x.dims.len(), 2, "activations must be [batch, features]");
    assert_eq!(w.dims.len(), 2, "weights must be [out, in]");
    let (b, inf) = (x.dims[0], x.dims[1]);
    let (outf, winf) = (w.dims[0], w.dims[1]);
    assert_eq!(inf, winf, "feature mismatch");
    let scale = w.step * x.step;
    let mut out = Tensor::zeros(&[b, outf]);
    for bi in 0..b {
        for oi in 0..outf {
            let mut acc: i64 = 0;
            for k in 0..inf {
                acc += x.codes[bi * inf + k] as i64 * w.codes[oi * inf + k] as i64;
            }
            out.data_mut()[bi * outf + oi] = acc as f32 * scale;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrep::{BitQuantizer, QuantMode};
    use crate::pack::PackedModel;
    use csq_nn::{Linear, WeightSource};
    use csq_tensor::conv::conv2d;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn packed_weight(dims: &[usize], seed: u64) -> (PackedWeight, Tensor) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w0 = init::uniform(dims, -0.5, 0.5, &mut rng);
        let mut q = BitQuantizer::from_float(&w0, 8, QuantMode::Csq);
        q.finalize();
        let w = q.materialize();
        let (inf, outf) = (dims.iter().product::<usize>(), 1usize);
        let _ = (inf, outf);
        let mut layer = Linear::new(
            Box::new(q),
            dims[1..].iter().product::<usize>().max(1),
            dims[0],
            false,
        );
        let packed = PackedModel::pack(&mut layer).unwrap();
        (packed.layers[0].clone(), w)
    }

    #[test]
    fn activation_quantization_round_trip_error_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::uniform(&[64], 0.0, 3.0, &mut rng);
        let q = QuantizedActivations::quantize(&x);
        let back = q.dequantize();
        let bound = q.step * 0.5 + 1e-6;
        for (&a, &b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn integer_conv_matches_float_conv_within_activation_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Non-negative activations, as after ReLU.
        let x = init::uniform(&[1, 2, 6, 6], 0.0, 1.0, &mut rng);
        let (pw, w) = packed_weight(&[3, 2, 3, 3], 2);
        let spec = ConvSpec::new(3, 1, 1);

        let xq = QuantizedActivations::quantize(&x);
        let y_int = conv2d_integer(&xq, &pw, spec);
        // Reference: float conv on the dequantized activations is
        // *exactly* what the integer path computes.
        let y_ref = conv2d(&xq.dequantize(), &w, spec);
        assert!(
            y_int.approx_eq(&y_ref, 1e-3),
            "integer path must match float path on the same grid"
        );
        // And against the unquantized activations the error is bounded
        // by the activation quantization noise.
        let y_float = conv2d(&x, &w, spec);
        let max_err = y_int
            .iter()
            .zip(y_float.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // Worst case: sum over kernel of |w|·(step/2).
        let bound = 2.0 * 9.0 * w.max_abs() * xq.step * 0.5 + 1e-4;
        assert!(max_err <= bound, "err {max_err} > bound {bound}");
    }

    #[test]
    fn integer_linear_matches_float_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = init::uniform(&[4, 8], 0.0, 2.0, &mut rng);
        let (pw, w) = packed_weight(&[5, 8], 4);
        let xq = QuantizedActivations::quantize(&x);
        let y_int = linear_integer(&xq, &pw);
        let y_ref = xq.dequantize().matmul_nt(&w);
        assert!(y_int.approx_eq(&y_ref, 1e-3));
    }

    #[test]
    fn integer_accumulation_is_exact_for_large_sums() {
        // 4096 products of max-magnitude codes must not lose precision
        // (i64 accumulation; f32 would).
        let n = 4096usize;
        let xq = QuantizedActivations {
            codes: vec![255u8; n],
            step: 1.0,
            dims: vec![1, n],
        };
        let pw = PackedWeight {
            path: "weight".to_string(),
            codes: vec![255i32; n],
            step: 1.0,
            dims: vec![1, n],
            bits: 8.0,
        };
        let y = linear_integer(&xq, &pw);
        let expect = 255.0f64 * 255.0 * n as f64;
        assert_eq!(y.data()[0] as f64, expect);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn linear_shape_mismatch_panics() {
        let xq = QuantizedActivations {
            codes: vec![0; 4],
            step: 1.0,
            dims: vec![1, 4],
        };
        let pw = PackedWeight {
            path: "weight".to_string(),
            codes: vec![0; 6],
            step: 1.0,
            dims: vec![2, 3],
            bits: 8.0,
        };
        linear_integer(&xq, &pw);
    }
}
