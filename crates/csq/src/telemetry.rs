//! Per-epoch training telemetry published through the shared
//! [`csq_obs`] metrics registry.
//!
//! Off by default so the quiet path stays allocation-free and training
//! trajectories bit-identical. Enable with `CSQ_TELEMETRY=1` (any value
//! other than empty or `0`) or programmatically with [`set_telemetry`]
//! (tests use the latter to avoid process-global env mutation).
//!
//! When enabled, every cleanly completed epoch appends to the global
//! registry's time series — training loss, held-out accuracy, the
//! element-weighted average precision, gate sparsity (fraction of bit
//! gates currently pruned), the temperature β, the budget gap Δ_S, and
//! one `train.layer_bits.<path>` series per weight tensor — the data
//! behind the paper's Figures 2–4. Epochs re-run after a NaN-storm
//! rewind appear once per attempt at the same step; consumers that want
//! the final trajectory should keep the last point per step.

use crate::scheme::QuantScheme;
use crate::trainer::EpochStats;
use csq_nn::Layer;
use std::sync::atomic::{AtomicU8, Ordering};

// 0 = uninitialized (consult CSQ_TELEMETRY), 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether per-epoch telemetry is enabled. After the one-time
/// `CSQ_TELEMETRY` lookup this is a single relaxed atomic load.
#[inline]
pub fn telemetry_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var("CSQ_TELEMETRY") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    };
    // First writer wins so a racing programmatic override is kept.
    let new = if on { 2 } else { 1 };
    match STATE.compare_exchange(0, new, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => on,
        Err(current) => current == 2,
    }
}

/// Programmatically enables or disables telemetry, overriding
/// `CSQ_TELEMETRY`.
pub fn set_telemetry(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Publishes one completed epoch to the global registry. `step` is the
/// epoch's ordinal across *all* phases of the run (prior history
/// included) so CSQ and finetune points land on one axis. No-op while
/// telemetry is disabled; never mutates the model.
pub fn record_epoch(model: &mut dyn Layer, stats: &EpochStats, step: u64) {
    if !telemetry_enabled() {
        return;
    }
    let reg = csq_obs::global_registry();
    reg.series("train.loss").push(step, f64::from(stats.loss));
    reg.series("train.train_acc")
        .push(step, f64::from(stats.train_acc));
    reg.series("train.test_acc")
        .push(step, f64::from(stats.test_acc));
    reg.series("train.avg_bits")
        .push(step, f64::from(stats.avg_bits));
    reg.series("train.beta").push(step, f64::from(stats.beta));
    reg.series("train.lr").push(step, f64::from(stats.lr));
    reg.series("train.delta_s")
        .push(step, f64::from(stats.delta_s));
    reg.counter("train.epochs").inc();
    reg.counter("train.skipped_batches")
        .add(stats.skipped as u64);

    // Gate sparsity and the per-layer bit-width series come from the
    // scheme currently encoded in the weight sources (hard-counted, so
    // the series shows the same numbers the final report will).
    let scheme = QuantScheme::extract(model);
    let mut kept = 0usize;
    let mut total = 0usize;
    for layer in &scheme.layers {
        if let Some(mask) = &layer.mask {
            kept += mask.iter().filter(|&&g| g).count();
            total += mask.len();
        }
        reg.series(&format!("train.layer_bits.{}", layer.path))
            .push(step, f64::from(layer.bits));
    }
    if total > 0 {
        reg.series("train.gate_sparsity")
            .push(step, 1.0 - kept as f64 / total as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_is_sticky() {
        set_telemetry(true);
        assert!(telemetry_enabled());
        set_telemetry(false);
        assert!(!telemetry_enabled());
    }
}
