//! Training diagnostics: how discrete the relaxed model currently is.
//!
//! Figure 1(a) of the paper illustrates the temperature sigmoid
//! sharpening toward a step function; this module measures the same
//! phenomenon on a live model — how close every gate's output is to
//! {0, 1} — which is the quantity that determines how much accuracy the
//! final hard snap can cost. The trainer's `beta_saturate` knob exists
//! precisely to drive these statistics toward 1 before finalization.

use crate::gate::temp_sigmoid;
use csq_nn::{Layer, ParamPath, ParamRole};

/// Discreteness statistics of a set of gates.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct GateStats {
    /// Number of gate values inspected.
    pub count: usize,
    /// Mean distance of gate outputs from the nearer of {0, 1}
    /// (0 = perfectly discrete, 0.5 = maximally soft).
    pub mean_softness: f32,
    /// Worst-case distance from {0, 1}.
    pub max_softness: f32,
    /// Fraction of gates within 0.01 of {0, 1}.
    pub frac_discrete: f32,
}

impl GateStats {
    fn from_values(values: impl Iterator<Item = f32>) -> GateStats {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut max = 0.0f32;
        let mut discrete = 0usize;
        for g in values {
            let d = g.min(1.0 - g).max(0.0);
            count += 1;
            sum += d as f64;
            max = max.max(d);
            if d <= 0.01 {
                discrete += 1;
            }
        }
        GateStats {
            count,
            mean_softness: if count == 0 {
                0.0
            } else {
                (sum / count as f64) as f32
            },
            max_softness: max,
            frac_discrete: if count == 0 {
                1.0
            } else {
                discrete as f32 / count as f32
            },
        }
    }
}

/// Gate-discreteness statistics of every `BitQuantizer`-style weight
/// source in a model, measured at the given temperature on the bit-mask
/// logits (the level-2 gates that decide layer precision).
///
/// Sources without a searched mask contribute nothing.
pub fn mask_gate_stats(model: &mut dyn Layer, beta: f32) -> GateStats {
    let mut values = Vec::new();
    model.visit_weight_sources(&mut |src| {
        if let Some(soft) = src.soft_precision() {
            // Reconstruct per-bit gate values only when the source also
            // exposes a mask; otherwise use the aggregate as one sample.
            if let Some(mask) = src.bit_mask() {
                if mask.len() > 0 {
                    // soft_precision is the sum of the mask gates; the
                    // per-bit values are not individually exposed through
                    // the trait, so sample the aggregate softness:
                    // distance between the soft sum and the hard count.
                    let hard = mask.iter().filter(|&&m| m).count() as f32;
                    let spread = (soft - hard).abs() / mask.len() as f32;
                    values.push(0.5 - (0.5 - spread).abs());
                }
            }
        }
    });
    let _ = beta;
    GateStats::from_values(values.into_iter())
}

/// Discreteness of a standalone logit set under `f_β` — the exact curve
/// of Figure 1(a): the same logits become arbitrarily discrete as β
/// grows.
pub fn logit_gate_stats(logits: &[f32], beta: f32) -> GateStats {
    GateStats::from_values(logits.iter().map(|&m| temp_sigmoid(m, beta)))
}

/// One row of a [`ModelSummary`]: a leaf layer, its parameters broken
/// down by role, and its current precision when it owns a weight source.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSummary {
    /// Stable hierarchical path of the layer (e.g. `"4.main.0"`; empty
    /// when the model is a single bare layer).
    pub path: String,
    /// Layer kind label ([`Layer::kind`]).
    pub kind: &'static str,
    /// Total trainable parameter elements owned by this layer.
    pub params: usize,
    /// Parameter element counts per role, in visitation order.
    pub roles: Vec<(ParamRole, usize)>,
    /// Hard-counted precision of the layer's weight source in bits
    /// (`None` for layers without one, or full-precision sources).
    pub bits: Option<f32>,
}

/// A per-layer map of a model: every leaf layer with its path, kind,
/// parameter/role breakdown and current hard-counted precision.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSummary {
    /// One row per leaf layer, in model order.
    pub layers: Vec<LayerSummary>,
    /// Total trainable parameter elements.
    pub total_params: usize,
}

/// Index of the leaf in `layers` whose path owns `path` (the longest
/// leaf path that is a dot-prefix of it).
fn owning_leaf(layers: &[LayerSummary], path: &str) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, l) in layers.iter().enumerate() {
        let owns = l.path.is_empty()
            || path == l.path
            || (path.starts_with(l.path.as_str()) && path.as_bytes().get(l.path.len()) == Some(&b'.'));
        if owns && best.map_or(true, |(_, len)| l.path.len() >= len) {
            best = Some((i, l.path.len()));
        }
    }
    best.map(|(i, _)| i)
}

/// Builds a per-layer summary of `model`: leaf layers with their paths,
/// kinds, per-role parameter counts and current hard-counted precision.
///
/// This is the table behind the bench bins' `--summary` flag; it lets a
/// scheme be discussed by layer name (`"4.main.0"`) instead of by
/// visitation index.
pub fn model_summary(model: &mut dyn Layer) -> ModelSummary {
    // Every layer (containers included) reports its kind; a leaf is an
    // entry no other entry nests under.
    let mut kinds: Vec<(String, &'static str)> = Vec::new();
    model.visit_kinds(&mut ParamPath::root(), &mut |path, kind| {
        kinds.push((path.to_string(), kind));
    });
    let is_leaf = |candidate: &str| {
        !kinds.iter().any(|(other, _)| {
            other != candidate
                && (candidate.is_empty()
                    || (other.starts_with(candidate)
                        && other.as_bytes().get(candidate.len()) == Some(&b'.')))
        })
    };
    let mut layers: Vec<LayerSummary> = kinds
        .iter()
        .filter(|(path, _)| is_leaf(path))
        .map(|(path, kind)| LayerSummary {
            path: path.clone(),
            kind,
            params: 0,
            roles: Vec::new(),
            bits: None,
        })
        .collect();

    let mut total = 0usize;
    model.visit_params(&mut |p| {
        total += p.value.numel();
        if let Some(i) = owning_leaf(&layers, p.path) {
            let row = &mut layers[i];
            row.params += p.value.numel();
            match row.roles.iter_mut().find(|(role, _)| *role == p.role) {
                Some((_, n)) => *n += p.value.numel(),
                None => row.roles.push((p.role, p.value.numel())),
            }
        }
    });
    model.visit_weight_sources_named(&mut ParamPath::root(), &mut |path, src| {
        if let Some(i) = owning_leaf(&layers, path) {
            layers[i].bits = src.precision();
        }
    });
    ModelSummary {
        layers,
        total_params: total,
    }
}

impl std::fmt::Display for ModelSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let path_w = self
            .layers
            .iter()
            .map(|l| l.path.len())
            .max()
            .unwrap_or(0)
            .max("layer".len());
        let kind_w = self
            .layers
            .iter()
            .map(|l| l.kind.len())
            .max()
            .unwrap_or(0)
            .max("kind".len());
        writeln!(
            f,
            "{:<path_w$}  {:<kind_w$}  {:>9}  {:>5}  roles",
            "layer", "kind", "params", "bits"
        )?;
        for l in &self.layers {
            let bits = match l.bits {
                Some(b) => format!("{b:.1}"),
                None => "-".to_string(),
            };
            let roles = l
                .roles
                .iter()
                .map(|(role, n)| format!("{} {n}", role.label()))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(
                f,
                "{:<path_w$}  {:<kind_w$}  {:>9}  {bits:>5}  {roles}",
                l.path, l.kind, l.params
            )?;
        }
        write!(
            f,
            "total: {} layers, {} params",
            self.layers.len(),
            self.total_params
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrep::csq_factory;
    use csq_nn::models::{resnet_cifar, ModelConfig};

    #[test]
    fn logits_sharpen_with_temperature() {
        let logits = [-0.5f32, -0.1, 0.05, 0.3, 1.0];
        let cold = logit_gate_stats(&logits, 1.0);
        let warm = logit_gate_stats(&logits, 20.0);
        let hot = logit_gate_stats(&logits, 500.0);
        assert_eq!(cold.count, 5);
        assert!(cold.mean_softness > warm.mean_softness);
        assert!(warm.mean_softness > hot.mean_softness);
        assert!(hot.frac_discrete > 0.9, "{hot:?}");
        assert!(cold.frac_discrete < 0.5, "{cold:?}");
    }

    #[test]
    fn empty_logits_are_trivially_discrete() {
        let s = logit_gate_stats(&[], 10.0);
        assert_eq!(s.count, 0);
        assert_eq!(s.frac_discrete, 1.0);
    }

    #[test]
    fn model_mask_stats_shrink_as_beta_grows() {
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        m.visit_weight_sources(&mut |src| src.set_beta(1.0));
        let soft = mask_gate_stats(&mut m, 1.0);
        m.visit_weight_sources(&mut |src| src.set_beta(500.0));
        let hard = mask_gate_stats(&mut m, 500.0);
        assert!(soft.count > 0);
        assert!(
            hard.mean_softness < soft.mean_softness,
            "{soft:?} vs {hard:?}"
        );
    }

    #[test]
    fn finalized_model_is_fully_discrete() {
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        m.visit_weight_sources(&mut |src| src.finalize());
        let s = mask_gate_stats(&mut m, 200.0);
        assert!(s.frac_discrete > 0.99, "{s:?}");
    }

    #[test]
    fn model_summary_names_layers_and_roles() {
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        let summary = model_summary(&mut m);
        assert!(summary.layers.len() > 10, "{summary}");
        // Rows are leaf layers with unique paths.
        let mut paths: Vec<&str> = summary.layers.iter().map(|l| l.path.as_str()).collect();
        let n = paths.len();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), n, "duplicate leaf paths");

        let stem = summary
            .layers
            .iter()
            .find(|l| l.path == "0")
            .expect("stem conv row");
        assert_eq!(stem.kind, "conv2d");
        assert_eq!(stem.bits, Some(8.0), "8-bit CSQ source, hard-counted");
        // A CSQ source's parameters are its scale and bit/gate logits.
        assert!(stem.roles.iter().any(|(r, _)| *r == ParamRole::QuantScale));
        assert!(stem.roles.iter().any(|(r, _)| *r == ParamRole::BitLogit));
        assert!(stem.roles.iter().any(|(r, _)| *r == ParamRole::GateLogit));
        // Residual-block convs appear under their branch path.
        assert!(summary.layers.iter().any(|l| l.path.contains(".main.")));

        // Role counts sum to the per-layer totals, and the grand total
        // matches the model's parameter count.
        for l in &summary.layers {
            let by_role: usize = l.roles.iter().map(|(_, n)| n).sum();
            assert_eq!(by_role, l.params, "role breakdown of `{}`", l.path);
        }
        assert_eq!(
            summary.total_params,
            csq_nn::layer::count_params(&mut m),
            "summary covers every parameter"
        );
    }

    #[test]
    fn model_summary_display_is_a_table() {
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        let text = model_summary(&mut m).to_string();
        assert!(text.contains("layer"), "{text}");
        assert!(text.contains("conv2d"), "{text}");
        assert!(text.contains("bit_logit"), "{text}");
        assert!(text.contains("total:"), "{text}");
    }

    #[test]
    fn model_summary_of_float_model_has_no_bits() {
        let mut fac = csq_nn::weight::float_factory();
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        let summary = model_summary(&mut m);
        assert!(summary.layers.iter().all(|l| l.bits.is_none()));
    }
}
