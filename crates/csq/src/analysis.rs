//! Training diagnostics: how discrete the relaxed model currently is.
//!
//! Figure 1(a) of the paper illustrates the temperature sigmoid
//! sharpening toward a step function; this module measures the same
//! phenomenon on a live model — how close every gate's output is to
//! {0, 1} — which is the quantity that determines how much accuracy the
//! final hard snap can cost. The trainer's `beta_saturate` knob exists
//! precisely to drive these statistics toward 1 before finalization.

use crate::gate::temp_sigmoid;
use csq_nn::Layer;

/// Discreteness statistics of a set of gates.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct GateStats {
    /// Number of gate values inspected.
    pub count: usize,
    /// Mean distance of gate outputs from the nearer of {0, 1}
    /// (0 = perfectly discrete, 0.5 = maximally soft).
    pub mean_softness: f32,
    /// Worst-case distance from {0, 1}.
    pub max_softness: f32,
    /// Fraction of gates within 0.01 of {0, 1}.
    pub frac_discrete: f32,
}

impl GateStats {
    fn from_values(values: impl Iterator<Item = f32>) -> GateStats {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut max = 0.0f32;
        let mut discrete = 0usize;
        for g in values {
            let d = g.min(1.0 - g).max(0.0);
            count += 1;
            sum += d as f64;
            max = max.max(d);
            if d <= 0.01 {
                discrete += 1;
            }
        }
        GateStats {
            count,
            mean_softness: if count == 0 {
                0.0
            } else {
                (sum / count as f64) as f32
            },
            max_softness: max,
            frac_discrete: if count == 0 {
                1.0
            } else {
                discrete as f32 / count as f32
            },
        }
    }
}

/// Gate-discreteness statistics of every `BitQuantizer`-style weight
/// source in a model, measured at the given temperature on the bit-mask
/// logits (the level-2 gates that decide layer precision).
///
/// Sources without a searched mask contribute nothing.
pub fn mask_gate_stats(model: &mut dyn Layer, beta: f32) -> GateStats {
    let mut values = Vec::new();
    model.visit_weight_sources(&mut |src| {
        if let Some(soft) = src.soft_precision() {
            // Reconstruct per-bit gate values only when the source also
            // exposes a mask; otherwise use the aggregate as one sample.
            if let Some(mask) = src.bit_mask() {
                if mask.len() > 0 {
                    // soft_precision is the sum of the mask gates; the
                    // per-bit values are not individually exposed through
                    // the trait, so sample the aggregate softness:
                    // distance between the soft sum and the hard count.
                    let hard = mask.iter().filter(|&&m| m).count() as f32;
                    let spread = (soft - hard).abs() / mask.len() as f32;
                    values.push(0.5 - (0.5 - spread).abs());
                }
            }
        }
    });
    let _ = beta;
    GateStats::from_values(values.into_iter())
}

/// Discreteness of a standalone logit set under `f_β` — the exact curve
/// of Figure 1(a): the same logits become arbitrarily discrete as β
/// grows.
pub fn logit_gate_stats(logits: &[f32], beta: f32) -> GateStats {
    GateStats::from_values(logits.iter().map(|&m| temp_sigmoid(m, beta)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrep::csq_factory;
    use csq_nn::models::{resnet_cifar, ModelConfig};

    #[test]
    fn logits_sharpen_with_temperature() {
        let logits = [-0.5f32, -0.1, 0.05, 0.3, 1.0];
        let cold = logit_gate_stats(&logits, 1.0);
        let warm = logit_gate_stats(&logits, 20.0);
        let hot = logit_gate_stats(&logits, 500.0);
        assert_eq!(cold.count, 5);
        assert!(cold.mean_softness > warm.mean_softness);
        assert!(warm.mean_softness > hot.mean_softness);
        assert!(hot.frac_discrete > 0.9, "{hot:?}");
        assert!(cold.frac_discrete < 0.5, "{cold:?}");
    }

    #[test]
    fn empty_logits_are_trivially_discrete() {
        let s = logit_gate_stats(&[], 10.0);
        assert_eq!(s.count, 0);
        assert_eq!(s.frac_discrete, 1.0);
    }

    #[test]
    fn model_mask_stats_shrink_as_beta_grows() {
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        m.visit_weight_sources(&mut |src| src.set_beta(1.0));
        let soft = mask_gate_stats(&mut m, 1.0);
        m.visit_weight_sources(&mut |src| src.set_beta(500.0));
        let hard = mask_gate_stats(&mut m, 500.0);
        assert!(soft.count > 0);
        assert!(
            hard.mean_softness < soft.mean_softness,
            "{soft:?} vs {hard:?}"
        );
    }

    #[test]
    fn finalized_model_is_fully_discrete() {
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        m.visit_weight_sources(&mut |src| src.finalize());
        let s = mask_gate_stats(&mut m, 200.0);
        assert!(s.frac_discrete > 0.99, "{s:?}");
    }
}
