//! Extension: continuous-sparsification search over *activation*
//! precision.
//!
//! The paper explicitly leaves activations out of the search ("CSQ does
//! not control activation quantization, we quantize the activation
//! uniformly throughout the training process", §IV-A). This module
//! extends the CSQ idea to that remaining axis: each activation
//! quantizer carries per-bit selection logits `m_A` relaxed with the same
//! temperature sigmoid, so its *precision* becomes differentiable:
//!
//! ```text
//! p(soft) = Σ_b f_β(m_A^(b))         (soft bit count)
//! step    = r / (2^p − 1)            (continuous level count)
//! y       = round(clamp(x, 0, r) / step) · step
//! ```
//!
//! Gradients reach `m_A` through the step size with the LSQ-style
//! estimator `∂y/∂step ≈ round(x/step) − x/step` (Esser et al. 2020),
//! chained through `∂step/∂p = −r·ln2·2^p/(2^p−1)²`. A per-layer budget
//! term `λ_A·(p_hard − target)` pushes the bit count toward a requested
//! activation precision, mirroring the weight-side Δ_S mechanism at
//! layer granularity. As with weights, β annealing plus
//! [`finalize`](SearchedActQuant::finalize) yields an exact integer
//! precision at the end.
//!
//! This is a faithful *extension*, not part of the reproduced paper; the
//! benchmark tables all use the paper's fixed uniform activations.

use crate::gate::{temp_sigmoid, temp_sigmoid_grad};
use csq_nn::{Layer, ParamMut, ParamPath, ParamRole};
use csq_tensor::Tensor;

/// Activation quantizer with searched precision (see module docs).
#[derive(Debug)]
pub struct SearchedActQuant {
    /// Per-bit selection logits.
    m_a: Tensor,
    grad_a: Tensor,
    bits: usize,
    beta: f32,
    /// Clipping range (EMA of batch max, frozen at eval).
    range: f32,
    range_momentum: f32,
    initialized: bool,
    /// Per-layer activation-bit budget strength and target.
    lambda: f32,
    target_bits: f32,
    /// Finalized: precision is the hard count, gates are steps.
    hard: bool,
    cache: Option<ActCache>,
}

#[derive(Debug)]
struct ActCache {
    /// Quantization residual `round(x/step) − x/step` per element
    /// (zero outside the clip range), for the step gradient.
    residual: Vec<f32>,
    /// STE pass mask.
    pass: Vec<bool>,
    soft_p: f32,
}

impl SearchedActQuant {
    /// Creates a searched activation quantizer with `bits` candidate
    /// planes, a per-layer budget target and strength λ_A.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16`, the target is not positive,
    /// or λ_A is negative.
    pub fn new(bits: usize, target_bits: f32, lambda: f32) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(target_bits > 0.0, "target must be positive");
        assert!(lambda >= 0.0, "lambda must be non-negative");
        SearchedActQuant {
            m_a: Tensor::from_vec((0..bits).map(|b| 0.05 + 0.03 * b as f32).collect(), &[bits]),
            grad_a: Tensor::zeros(&[bits]),
            bits,
            beta: 1.0,
            range: 1.0,
            range_momentum: 0.99,
            initialized: false,
            lambda,
            target_bits,
            hard: false,
            cache: None,
        }
    }

    /// Number of candidate bit planes.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Soft bit count `Σ_b f_β(m_A)`.
    pub fn soft_precision(&self) -> f32 {
        if self.hard {
            return self.hard_precision();
        }
        self.m_a.iter().map(|&m| temp_sigmoid(m, self.beta)).sum()
    }

    /// Hard bit count `Σ_b [m_A ≥ 0]` (at least 1 — a 0-bit activation
    /// path would zero the network).
    pub fn hard_precision(&self) -> f32 {
        (self.m_a.iter().filter(|&&m| m >= 0.0).count() as f32).max(1.0)
    }

    /// Sets the gate temperature (shared schedule with the weights).
    pub fn set_beta(&mut self, beta: f32) {
        assert!(beta > 0.0, "temperature must be positive");
        self.beta = beta;
    }

    /// Snaps the precision to its hard bit count permanently.
    pub fn finalize(&mut self) {
        self.hard = true;
        self.cache = None;
    }

    fn effective_precision(&self) -> f32 {
        if self.hard {
            self.hard_precision()
        } else {
            self.soft_precision().max(1.0)
        }
    }
}

impl Layer for SearchedActQuant {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train && !self.hard {
            let batch_max = input.max_abs().max(1e-6);
            if self.initialized {
                self.range =
                    self.range_momentum * self.range + (1.0 - self.range_momentum) * batch_max;
            } else {
                self.range = batch_max;
                self.initialized = true;
            }
        }
        let r = self.range.max(1e-6);
        let p = self.effective_precision();
        let levels = (2.0f32.powf(p) - 1.0).max(1.0);
        let step = r / levels;
        let out = input.map(|v| {
            let c = v.clamp(0.0, r);
            (c / step).round() * step
        });
        if train {
            let mut residual = Vec::with_capacity(input.numel());
            let mut pass = Vec::with_capacity(input.numel());
            for &v in input.iter() {
                let in_range = (0.0..=r).contains(&v);
                pass.push(in_range);
                residual.push(if in_range {
                    (v / step).round() - v / step
                } else {
                    0.0
                });
            }
            self.cache = Some(ActCache {
                residual,
                pass,
                soft_p: p,
            });
        } else {
            self.cache = None;
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = match self.cache.take() {
            Some(c) => c,
            None => panic!("SearchedActQuant::backward called before a training forward"),
        };
        assert_eq!(cache.pass.len(), grad_output.numel(), "grad shape mismatch");

        // STE toward the input, clipped.
        let mut g = grad_output.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(cache.pass.iter()) {
            if !keep {
                *v = 0.0;
            }
        }

        if !self.hard {
            // dL/dstep via the LSQ residual estimator.
            let dstep: f32 = grad_output
                .data()
                .iter()
                .zip(cache.residual.iter())
                .map(|(&gy, &res)| gy * res)
                .sum();
            // dstep/dp for step = r/(2^p − 1).
            let p = cache.soft_p;
            let two_p = 2.0f32.powf(p);
            let denom = (two_p - 1.0).max(1e-6);
            let dstep_dp = -self.range * std::f32::consts::LN_2 * two_p / (denom * denom);
            // Per-layer budget on the hard count.
            let budget = self.lambda * (self.hard_precision() - self.target_bits);
            let dl_dp = dstep * dstep_dp + budget;
            for (b, gm) in self.grad_a.data_mut().iter_mut().enumerate() {
                let gate = temp_sigmoid(self.m_a.data()[b], self.beta);
                *gm += dl_dp * temp_sigmoid_grad(gate, self.beta);
            }
        }
        g
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        path.scoped("m_a", |p| {
            f(ParamMut::new(
                p.as_str(),
                ParamRole::GateLogit,
                &mut self.m_a,
                &mut self.grad_a,
            ))
        });
    }

    fn kind(&self) -> &'static str {
        "searched_act_quant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn starts_at_full_precision_and_on_grid() {
        let mut q = SearchedActQuant::new(8, 4.0, 0.0);
        assert_eq!(q.hard_precision(), 8.0);
        let x = Tensor::from_vec(vec![0.0, 0.3, 0.7, 1.0], &[4]);
        let y = q.forward(&x, true);
        // All outputs on the current (soft-precision) grid.
        let p = q.soft_precision().max(1.0);
        let step = q.range / (2.0f32.powf(p) - 1.0);
        for &v in y.iter() {
            let k = v / step;
            assert!((k - k.round()).abs() < 1e-4, "{v} off grid {step}");
        }
    }

    #[test]
    fn budget_prunes_activation_bits() {
        // Pure budget pressure (no task signal): hard precision should
        // descend from 8 toward the 3-bit target under SGD on m_A.
        let mut q = SearchedActQuant::new(8, 3.0, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::uniform(&[64], 0.0, 1.0, &mut rng);
        for _ in 0..200 {
            q.forward(&x, true);
            q.backward(&Tensor::zeros(&[64]));
            // Plain gradient step on the logits.
            let grads: Vec<f32> = q.grad_a.data().to_vec();
            for (m, g) in q.m_a.data_mut().iter_mut().zip(grads) {
                *m -= 0.05 * g;
            }
            q.grad_a.fill(0.0);
        }
        let p = q.hard_precision();
        assert!(
            (p - 3.0).abs() <= 1.0,
            "activation precision {p} should approach the 3-bit target"
        );
    }

    #[test]
    fn budget_grows_bits_from_below() {
        let mut q = SearchedActQuant::new(8, 6.0, 0.5);
        // Start with most bits off.
        for m in q.m_a.data_mut().iter_mut() {
            *m = -0.2;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = init::uniform(&[64], 0.0, 1.0, &mut rng);
        for _ in 0..200 {
            q.forward(&x, true);
            q.backward(&Tensor::zeros(&[64]));
            let grads: Vec<f32> = q.grad_a.data().to_vec();
            for (m, g) in q.m_a.data_mut().iter_mut().zip(grads) {
                *m -= 0.05 * g;
            }
            q.grad_a.fill(0.0);
        }
        assert!(
            q.hard_precision() >= 5.0,
            "budget should grow activation bits, got {}",
            q.hard_precision()
        );
    }

    #[test]
    fn reconstruction_pressure_defends_bits() {
        // With a task gradient that penalizes quantization error (dL/dy
        // pointing along the residual), the step gradient should oppose
        // pruning relative to pure budget pressure.
        let mut pruned = SearchedActQuant::new(8, 1.0, 0.2);
        let mut defended = SearchedActQuant::new(8, 1.0, 0.2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = init::uniform(&[128], 0.0, 1.0, &mut rng);
        for _ in 0..150 {
            // Budget-only path.
            pruned.forward(&x, true);
            pruned.backward(&Tensor::zeros(&[128]));
            // Reconstruction path: gradient = y − x (MSE toward x).
            let y = defended.forward(&x, true);
            let gy = y.sub(&x).mul_scalar(8.0);
            defended.backward(&gy);
            for q in [&mut pruned, &mut defended] {
                let grads: Vec<f32> = q.grad_a.data().to_vec();
                for (m, g) in q.m_a.data_mut().iter_mut().zip(grads) {
                    *m -= 0.05 * g;
                }
                q.grad_a.fill(0.0);
            }
        }
        assert!(
            defended.hard_precision() >= pruned.hard_precision(),
            "task pressure should retain at least as many bits: {} vs {}",
            defended.hard_precision(),
            pruned.hard_precision()
        );
    }

    #[test]
    fn finalize_fixes_precision() {
        let mut q = SearchedActQuant::new(8, 4.0, 0.1);
        q.m_a.data_mut()[6] = -1.0;
        q.m_a.data_mut()[7] = -1.0;
        q.finalize();
        assert_eq!(q.hard_precision(), 6.0);
        // Backward no longer moves the logits.
        let x = Tensor::from_vec(vec![0.5; 8], &[8]);
        q.forward(&x, true);
        q.backward(&Tensor::ones(&[8]));
        assert!(q.grad_a.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn zero_bit_floor_is_one() {
        let mut q = SearchedActQuant::new(4, 2.0, 0.0);
        for m in q.m_a.data_mut().iter_mut() {
            *m = -5.0;
        }
        assert_eq!(q.hard_precision(), 1.0, "never collapses to 0 bits");
        let x = Tensor::from_vec(vec![0.2, 0.9], &[2]);
        let y = q.forward(&x, false);
        assert!(y.all_finite());
    }
}
