//! Extraction and serialization of mixed-precision quantization schemes
//! (the per-layer precision assignments of Figure 4 and the `Comp(×)`
//! columns of every table).

use crate::budget::model_precision;
use csq_nn::Layer;
use serde::{Deserialize, Serialize};

/// The quantization state of one weight tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerScheme {
    /// Position among the model's weight tensors (construction order).
    pub index: usize,
    /// Stable hierarchical path of the weight tensor (e.g.
    /// `"4.main.0.weight"`). Empty in schemes serialized before paths
    /// existed.
    #[serde(default)]
    pub path: String,
    /// Number of weight elements.
    pub numel: usize,
    /// Assigned precision in bits.
    pub bits: f32,
    /// Per-bit keep mask, LSB first (absent for methods without one).
    pub mask: Option<Vec<bool>>,
}

/// A full mixed-precision quantization scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantScheme {
    /// Per-layer assignments in model order.
    pub layers: Vec<LayerScheme>,
    /// Element-weighted average precision.
    pub avg_bits: f32,
    /// Weight compression versus FP32.
    pub compression: f32,
}

impl QuantScheme {
    /// Extracts the scheme currently encoded in `model`'s weight sources.
    pub fn extract(model: &mut dyn Layer) -> QuantScheme {
        let mut layers = Vec::new();
        let mut index = 0usize;
        model.visit_weight_sources_named(&mut csq_nn::ParamPath::root(), &mut |path, src| {
            layers.push(LayerScheme {
                index,
                path: path.to_string(),
                numel: src.numel(),
                bits: src.precision().unwrap_or(32.0),
                mask: src.bit_mask(),
            });
            index += 1;
        });
        let stats = model_precision(model);
        QuantScheme {
            layers,
            avg_bits: stats.avg_bits,
            compression: stats.compression_ratio(),
        }
    }

    /// Per-layer precisions in model order (the series plotted in
    /// Figure 4).
    pub fn layer_bits(&self) -> Vec<f32> {
        self.layers.iter().map(|l| l.bits).collect()
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics in practice (the type is plain data).
    pub fn to_json(&self) -> String {
        match serde_json::to_string_pretty(self) {
            Ok(s) => s,
            // Unreachable for this plain-data type; kept explicit so a
            // failure would be loud rather than silently truncated.
            Err(e) => panic!("scheme serialization failed: {e}"),
        }
    }

    /// Parses a scheme from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(s: &str) -> Result<QuantScheme, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl std::fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "scheme: avg {:.2} bits, compression {:.2}x, {} layers",
            self.avg_bits,
            self.compression,
            self.layers.len()
        )?;
        let width = self
            .layers
            .iter()
            .map(|l| l.path.len())
            .max()
            .unwrap_or(0)
            .max(8);
        for l in &self.layers {
            // Fall back to the positional index for schemes that predate
            // layer paths.
            let name = if l.path.is_empty() {
                format!("layer {}", l.index)
            } else {
                l.path.clone()
            };
            writeln!(
                f,
                "  {name:<width$}  {:>5.1} bits  ({} params)",
                l.bits, l.numel
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrep::csq_factory;
    use csq_nn::models::{resnet_cifar, ModelConfig};

    fn tiny_model() -> csq_nn::Sequential {
        let mut fac = csq_factory(8);
        resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1)
    }

    #[test]
    fn extract_covers_every_weight_source() {
        let mut m = tiny_model();
        let scheme = QuantScheme::extract(&mut m);
        // ResNet-8: stem + 6 block convs + 2 shortcuts + fc = 10.
        assert_eq!(scheme.layers.len(), 10);
        assert!(scheme.layers.iter().all(|l| l.bits == 8.0));
        assert!((scheme.avg_bits - 8.0).abs() < 1e-6);
        assert!((scheme.compression - 4.0).abs() < 1e-6);
    }

    #[test]
    fn json_round_trip() {
        let mut m = tiny_model();
        let scheme = QuantScheme::extract(&mut m);
        let json = scheme.to_json();
        let back = QuantScheme::from_json(&json).unwrap();
        assert_eq!(scheme, back);
    }

    #[test]
    fn layer_bits_in_model_order() {
        let mut m = tiny_model();
        let scheme = QuantScheme::extract(&mut m);
        assert_eq!(scheme.layer_bits().len(), 10);
        let indices: Vec<usize> = scheme.layers.iter().map(|l| l.index).collect();
        assert_eq!(indices, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = tiny_model();
        let s = QuantScheme::extract(&mut m).to_string();
        assert!(s.contains("compression"));
        assert!(s.lines().count() > 5);
    }

    #[test]
    fn extract_records_layer_paths() {
        let mut m = tiny_model();
        let scheme = QuantScheme::extract(&mut m);
        assert!(scheme.layers.iter().all(|l| !l.path.is_empty()));
        assert_eq!(scheme.layers[0].path, "0.weight", "stem conv");
        // Residual-block convs carry their branch in the path.
        assert!(
            scheme.layers.iter().any(|l| l.path.contains(".main.")),
            "{:?}",
            scheme.layers.iter().map(|l| &l.path).collect::<Vec<_>>()
        );
        let display = scheme.to_string();
        assert!(display.contains("0.weight"), "{display}");
    }

    #[test]
    fn legacy_scheme_json_without_paths_parses() {
        let mut m = tiny_model();
        let scheme = QuantScheme::extract(&mut m);
        // Simulate a scheme serialized before paths existed.
        let mut doc: serde_json::Value = serde_json::from_str(&scheme.to_json()).unwrap();
        for layer in doc["layers"].as_array_mut().unwrap() {
            layer.as_object_mut().unwrap().remove("path");
        }
        let back = QuantScheme::from_json(&doc.to_string()).unwrap();
        assert!(back.layers.iter().all(|l| l.path.is_empty()));
        assert_eq!(back.layer_bits(), scheme.layer_bits());
        // Pathless schemes fall back to positional labels in Display.
        assert!(back.to_string().contains("layer 0"));
    }
}
