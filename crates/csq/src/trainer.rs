//! Training loops: the generic quantization-aware `fit` routine shared by
//! all methods, and [`CsqTrainer`] implementing the paper's Algorithm 1
//! (CSQ training + optional mask-frozen finetuning with temperature
//! rewind).

use crate::budget::{model_precision, BudgetRegularizer};
use crate::gate::TemperatureSchedule;
use crate::scheme::QuantScheme;
use csq_data::{DataLoader, Dataset, Split};
use csq_nn::{accuracy, softmax_cross_entropy, Adam, CosineSchedule, Layer, Sgd};

/// Which optimizer a training phase uses.
///
/// The paper uses SGD with momentum throughout; the reduced-scale
/// configurations default to [`OptimKind::Adam`] because the bit-level
/// logit gradients are orders of magnitude smaller than float weight
/// gradients and SGD cannot traverse the logit space in a few hundred
/// steps (see `csq_nn::Adam` and DESIGN.md §2). Every method in a
/// comparison uses the same optimizer, so rankings remain fair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimKind {
    /// SGD with momentum (the paper's optimizer).
    Sgd,
    /// Adam (reduced-scale default).
    Adam,
}

#[derive(Debug)]
enum Optimizer {
    Sgd(Sgd),
    Adam(Adam),
}

impl Optimizer {
    fn new(kind: OptimKind, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        match kind {
            OptimKind::Sgd => Optimizer::Sgd(Sgd::new(lr, momentum, weight_decay)),
            OptimKind::Adam => Optimizer::Adam(Adam::new(lr, weight_decay)),
        }
    }

    fn set_lr(&mut self, lr: f32) {
        match self {
            Optimizer::Sgd(o) => o.set_lr(lr),
            Optimizer::Adam(o) => o.set_lr(lr),
        }
    }

    fn step(&mut self, model: &mut dyn Layer) {
        match self {
            Optimizer::Sgd(o) => o.step(model),
            Optimizer::Adam(o) => o.step(model),
        }
    }
}

/// Per-epoch training telemetry (the series behind Figures 2–3).
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct EpochStats {
    /// 0-based epoch index within its phase.
    pub epoch: usize,
    /// Whether this epoch belongs to the finetuning phase.
    pub finetune: bool,
    /// Mean training loss (cross entropy + nothing else; the budget
    /// regularizer acts through gradients).
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub train_acc: f32,
    /// Held-out accuracy after the epoch.
    pub test_acc: f32,
    /// Element-weighted average precision, hard-counted (`Σ_b [m_B ≥ 0]`).
    pub avg_bits: f32,
    /// Gate temperature β used this epoch.
    pub beta: f32,
    /// Learning rate used this epoch.
    pub lr: f32,
    /// Budget gap Δ_S at the end of the epoch (0 when no budget is set).
    pub delta_s: f32,
}

/// Configuration of one [`fit`] phase.
#[derive(Debug, Clone, Copy)]
pub struct FitConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (cosine-annealed to zero).
    pub base_lr: f32,
    /// Linear warmup epochs (paper: 5 on ImageNet, 0 on CIFAR).
    pub warmup_epochs: usize,
    /// SGD momentum (paper: 0.9).
    pub momentum: f32,
    /// Weight decay applied to decaying parameters (paper: 5e-4 CIFAR,
    /// 1e-4 ImageNet).
    pub weight_decay: f32,
    /// Gate-temperature schedule, applied to all weight sources each
    /// epoch. `None` leaves temperatures untouched (float/STE baselines).
    pub beta: Option<TemperatureSchedule>,
    /// Budget-aware regularizer, applied every optimization step.
    pub budget: Option<BudgetRegularizer>,
    /// Shuffle seed for the data loader.
    pub seed: u64,
    /// Optimizer used for this phase.
    pub optim: OptimKind,
}

impl FitConfig {
    /// A reasonable default for the reduced-scale experiments.
    pub fn fast(epochs: usize) -> Self {
        FitConfig {
            epochs,
            batch_size: 32,
            base_lr: 2e-2,
            warmup_epochs: 0,
            momentum: 0.9,
            weight_decay: 5e-4,
            beta: None,
            budget: None,
            seed: 0,
            optim: OptimKind::Adam,
        }
    }
}

/// Evaluates mean loss and accuracy of `model` over a data split.
pub fn evaluate(model: &mut dyn Layer, split: &Split, batch_size: usize) -> (f32, f32) {
    let mut loader = DataLoader::new(batch_size, false, 0);
    let mut loss_acc = 0.0f64;
    let mut correct = 0.0f64;
    let mut n = 0usize;
    for batch in loader.epoch(split) {
        let logits = model.forward(&batch.images, false);
        let (loss, _) = softmax_cross_entropy(&logits, &batch.labels);
        let acc = accuracy(&logits, &batch.labels);
        let b = batch.labels.len();
        loss_acc += loss as f64 * b as f64;
        correct += acc as f64 * b as f64;
        n += b;
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        ((loss_acc / n as f64) as f32, (correct / n as f64) as f32)
    }
}

/// Runs one training phase: SGD with cosine LR, optional temperature
/// scheduling and optional budget regularization. Returns per-epoch
/// statistics.
///
/// # Panics
///
/// Panics on a degenerate configuration (zero epochs or batch size).
pub fn fit(
    model: &mut dyn Layer,
    data: &Dataset,
    cfg: &FitConfig,
    finetune_phase: bool,
) -> Vec<EpochStats> {
    assert!(cfg.epochs > 0, "fit requires at least one epoch");
    let lr_schedule = CosineSchedule::new(cfg.base_lr, cfg.warmup_epochs, cfg.epochs);
    let mut opt = Optimizer::new(cfg.optim, cfg.base_lr, cfg.momentum, cfg.weight_decay);
    let mut loader = DataLoader::new(cfg.batch_size, true, cfg.seed);
    let mut history = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        let lr = lr_schedule.lr_at(epoch);
        opt.set_lr(lr);
        let beta = match &cfg.beta {
            Some(s) => {
                let b = s.beta_at(epoch);
                model.visit_weight_sources(&mut |src| src.set_beta(b));
                b
            }
            None => 1.0,
        };

        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut seen = 0usize;
        let mut last_delta = 0.0f32;
        for batch in loader.epoch(&data.train) {
            model.zero_grads();
            let logits = model.forward(&batch.images, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &batch.labels);
            assert!(
                loss.is_finite(),
                "non-finite loss at epoch {epoch} (lr {lr}, beta {beta}) — \
                 training diverged or parameters are corrupted"
            );
            let acc = accuracy(&logits, &batch.labels);
            model.backward(&grad);
            if let Some(budget) = &cfg.budget {
                last_delta = budget.apply(model);
            }
            opt.step(model);
            let b = batch.labels.len();
            loss_sum += loss as f64 * b as f64;
            acc_sum += acc as f64 * b as f64;
            seen += b;
        }
        model.visit_weight_sources(&mut |src| src.on_epoch_end(epoch));

        let (_, test_acc) = evaluate(model, &data.test, cfg.batch_size);
        let stats = model_precision(model);
        history.push(EpochStats {
            epoch,
            finetune: finetune_phase,
            loss: (loss_sum / seen.max(1) as f64) as f32,
            train_acc: (acc_sum / seen.max(1) as f64) as f32,
            test_acc,
            avg_bits: stats.avg_bits,
            beta,
            lr,
            delta_s: last_delta,
        });
    }
    history
}

/// Configuration of the full CSQ pipeline (Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct CsqConfig {
    /// CSQ training epochs `T`.
    pub epochs: usize,
    /// Finetuning epochs `T'` (0 disables the finetuning phase; the paper
    /// uses 0 on CIFAR-10 and 100 on ImageNet).
    pub finetune_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (paper: 0.1).
    pub base_lr: f32,
    /// Linear LR warmup epochs (paper: 5 on ImageNet).
    pub warmup_epochs: usize,
    /// SGD momentum (paper: 0.9).
    pub momentum: f32,
    /// Weight decay (paper: 5e-4 CIFAR / 1e-4 ImageNet).
    pub weight_decay: f32,
    /// Base regularization strength λ (paper: 0.01).
    pub lambda: f32,
    /// Target element-weighted average precision in bits.
    pub target_bits: f32,
    /// Initial gate temperature β₀ (paper: 1).
    pub beta0: f32,
    /// Maximum temperature β_max (paper: 200).
    pub beta_max: f32,
    /// Fraction of the epochs after which β_max is reached and held
    /// (paper: 1.0 = reached in the last epoch; reduced-scale default
    /// 0.75 so the model settles in the near-discrete regime).
    pub beta_saturate: f32,
    /// Loader shuffle seed.
    pub seed: u64,
    /// Optimizer for both phases (see [`OptimKind`]).
    pub optim: OptimKind,
}

impl CsqConfig {
    /// Reduced-scale defaults suitable for single-core runs.
    ///
    /// λ is set to 0.3 rather than the paper's 0.01: the paper shows the
    /// final precision is insensitive to λ across `[1e-3, 1]` (Figure 2)
    /// *given hundreds of thousands of optimizer steps*; at the reduced
    /// scale of this reproduction (hundreds of steps) a value near the
    /// top of that insensitive range is needed for the mask logits to
    /// traverse the gate boundary at all. The fig2 bench sweeps λ and
    /// reproduces the paper's sensitivity shape at this scale.
    pub fn fast(target_bits: f32) -> Self {
        CsqConfig {
            epochs: 20,
            finetune_epochs: 0,
            batch_size: 32,
            base_lr: 2e-2,
            warmup_epochs: 0,
            momentum: 0.9,
            weight_decay: 5e-4,
            lambda: 0.3,
            target_bits,
            beta0: 1.0,
            beta_max: 200.0,
            beta_saturate: 0.75,
            seed: 0,
            optim: OptimKind::Adam,
        }
    }

    /// The paper's CIFAR-10 hyperparameters (600 epochs for ResNet-20).
    pub fn paper_cifar(target_bits: f32, epochs: usize) -> Self {
        CsqConfig {
            epochs,
            finetune_epochs: 0,
            batch_size: 128,
            base_lr: 0.1,
            warmup_epochs: 0,
            momentum: 0.9,
            weight_decay: 5e-4,
            lambda: 0.01,
            target_bits,
            beta0: 1.0,
            beta_max: 200.0,
            beta_saturate: 1.0,
            seed: 0,
            optim: OptimKind::Sgd,
        }
    }

    /// The paper's ImageNet hyperparameters (200 + 100 epochs).
    pub fn paper_imagenet(target_bits: f32, epochs: usize, finetune_epochs: usize) -> Self {
        CsqConfig {
            epochs,
            finetune_epochs,
            batch_size: 128,
            base_lr: 0.1,
            warmup_epochs: 5,
            momentum: 0.9,
            weight_decay: 1e-4,
            lambda: 0.01,
            target_bits,
            beta0: 1.0,
            beta_max: 200.0,
            beta_saturate: 1.0,
            seed: 0,
            optim: OptimKind::Sgd,
        }
    }

    /// Builder-style override of the training epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style override of the finetuning epochs.
    pub fn with_finetune(mut self, finetune_epochs: usize) -> Self {
        self.finetune_epochs = finetune_epochs;
        self
    }

    /// Builder-style override of λ.
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of a full training pipeline.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch telemetry, CSQ phase followed by the finetune phase.
    pub history: Vec<EpochStats>,
    /// Held-out accuracy of the *finalized* (exactly quantized) model.
    pub final_test_accuracy: f32,
    /// Final element-weighted average precision.
    pub final_avg_bits: f32,
    /// Final weight compression versus FP32.
    pub final_compression: f32,
    /// The discovered quantization scheme.
    pub scheme: QuantScheme,
}

/// Algorithm 1 of the paper: bi-level continuous sparsification training,
/// hard finalization, and the optional mask-frozen finetuning phase with
/// temperature rewind.
#[derive(Debug, Clone, Copy)]
pub struct CsqTrainer {
    cfg: CsqConfig,
}

impl CsqTrainer {
    /// Creates a trainer from a config.
    pub fn new(cfg: CsqConfig) -> Self {
        CsqTrainer { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CsqConfig {
        &self.cfg
    }

    /// Runs the full pipeline on `model` (whose weight sources should be
    /// [`crate::BitQuantizer`]s) and returns the report.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero epochs).
    pub fn train(&self, model: &mut dyn Layer, data: &Dataset) -> TrainReport {
        let cfg = &self.cfg;
        // Phase 1: CSQ training with β scheduling and budget regularization.
        let phase1 = FitConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            base_lr: cfg.base_lr,
            warmup_epochs: cfg.warmup_epochs,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            beta: Some(
                TemperatureSchedule::new(cfg.beta0, cfg.beta_max, cfg.epochs)
                    .with_saturation(cfg.beta_saturate),
            ),
            budget: Some(BudgetRegularizer::new(cfg.lambda, cfg.target_bits)),
            seed: cfg.seed,
            optim: cfg.optim,
        };
        let mut history = fit(model, data, &phase1, false);

        // Fix the bit selection q_B = I(m_B ≥ 0).
        model.visit_weight_sources(&mut |src| src.freeze_mask());

        // Phase 2 (optional): finetune bit representations with the
        // temperature rewound to β₀ and re-annealed over T' epochs. No
        // budget regularization — the scheme is frozen.
        if cfg.finetune_epochs > 0 {
            let phase2 = FitConfig {
                epochs: cfg.finetune_epochs,
                batch_size: cfg.batch_size,
                base_lr: cfg.base_lr,
                warmup_epochs: 0,
                momentum: cfg.momentum,
                weight_decay: cfg.weight_decay,
                beta: Some(
                    TemperatureSchedule::new(cfg.beta0, cfg.beta_max, cfg.finetune_epochs)
                        .with_saturation(cfg.beta_saturate),
                ),
                budget: None,
                seed: cfg.seed.wrapping_add(1),
                optim: cfg.optim,
            };
            history.extend(fit(model, data, &phase2, true));
        }

        // Final hard quantization before validation ("we set all gate
        // functions to the unit-step function before the final
        // validation").
        model.visit_weight_sources(&mut |src| src.finalize());
        let (_, final_acc) = evaluate(model, &data.test, cfg.batch_size);
        let stats = model_precision(model);
        let scheme = QuantScheme::extract(model);
        TrainReport {
            history,
            final_test_accuracy: final_acc,
            final_avg_bits: stats.avg_bits,
            final_compression: stats.compression_ratio(),
            scheme,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrep::csq_factory;
    use csq_data::SyntheticSpec;
    use csq_nn::models::{resnet_cifar, ModelConfig};
    use csq_nn::weight::float_factory;

    fn tiny_data() -> Dataset {
        Dataset::synthetic(
            &SyntheticSpec::cifar_like(0)
                .with_samples(16, 8)
                .with_classes(4),
        )
    }

    /// Fast config with enough optimizer steps for the mask logits to
    /// traverse the gate boundary on the tiny dataset.
    fn tiny_csq_cfg(target: f32, epochs: usize) -> CsqConfig {
        let mut cfg = CsqConfig::fast(target).with_epochs(epochs);
        cfg.batch_size = 8;
        cfg
    }

    #[test]
    fn fit_improves_float_model() {
        let data = tiny_data();
        let mut fac = float_factory();
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = FitConfig::fast(6);
        let history = fit(&mut model, &data, &cfg, false);
        assert_eq!(history.len(), 6);
        let first = history.first().unwrap().loss;
        let last = history.last().unwrap().loss;
        assert!(last < first, "loss {first} -> {last}");
        assert!(!history.iter().any(|h| h.finetune));
    }

    #[test]
    fn csq_training_converges_to_target_precision() {
        let data = tiny_data();
        let mut fac = csq_factory(8);
        let mut cfg_m = ModelConfig::cifar_like(4, Some(3), 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = tiny_csq_cfg(3.0, 15);
        let report = CsqTrainer::new(cfg).train(&mut model, &data);
        assert!(
            (report.final_avg_bits - 3.0).abs() <= 1.0,
            "avg bits {} should be near the 3-bit target",
            report.final_avg_bits
        );
        assert!(report.final_compression > 8.0);
        assert_eq!(report.history.len(), 15);
    }

    #[test]
    fn finalized_model_is_exactly_quantized() {
        let data = tiny_data();
        let mut fac = csq_factory(8);
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = tiny_csq_cfg(4.0, 4);
        let _ = CsqTrainer::new(cfg).train(&mut model, &data);
        // Every weight source must now be hard: materialized weights on
        // the quantization grid.
        model.visit_weight_sources(&mut |src| {
            let step = src.quant_step().expect("CSQ sources expose a grid step");
            let w = src.materialize();
            for &v in w.iter() {
                let k = v / step;
                assert!(
                    (k - k.round()).abs() < 1e-2,
                    "weight {v} not on grid of step {step}"
                );
            }
        });
    }

    #[test]
    fn finetune_phase_keeps_scheme_fixed() {
        let data = tiny_data();
        let mut fac = csq_factory(8);
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = tiny_csq_cfg(3.0, 6).with_finetune(4);
        let report = CsqTrainer::new(cfg).train(&mut model, &data);
        assert_eq!(report.history.len(), 10);
        let ft: Vec<_> = report.history.iter().filter(|h| h.finetune).collect();
        assert_eq!(ft.len(), 4);
        // Precision must not change during finetuning.
        let bits_at_freeze = ft.first().unwrap().avg_bits;
        for h in &ft {
            assert_eq!(h.avg_bits, bits_at_freeze, "scheme drifted in finetune");
        }
    }

    #[test]
    fn beta_schedule_reaches_max_in_last_epoch() {
        let data = tiny_data();
        let mut fac = csq_factory(8);
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = tiny_csq_cfg(4.0, 5);
        let report = CsqTrainer::new(cfg).train(&mut model, &data);
        assert!((report.history[0].beta - 1.0).abs() < 1e-5);
        assert!((report.history[4].beta - 200.0).abs() < 1e-2);
    }

    #[test]
    fn evaluate_handles_empty_split() {
        let data = tiny_data();
        let mut fac = float_factory();
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let empty = csq_data::Split {
            images: csq_tensor::Tensor::zeros(&[0, 3, 16, 16]),
            labels: vec![],
        };
        let (loss, acc) = evaluate(&mut model, &empty, 8);
        assert_eq!(loss, 0.0);
        assert_eq!(acc, 0.0);
        let _ = data;
    }
}
