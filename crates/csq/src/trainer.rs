//! Training loops: the generic quantization-aware `fit` routine shared by
//! all methods, and [`CsqTrainer`] implementing the paper's Algorithm 1
//! (CSQ training + optional mask-frozen finetuning with temperature
//! rewind).
//!
//! Both loops are fault tolerant. A non-finite batch loss no longer
//! aborts the process: a configurable [`RecoveryPolicy`] skips the bad
//! batch, rewinds to the last known-good epoch with a learning-rate
//! backoff when a NaN storm sets in, and returns a structured
//! [`TrainError`] only after the retry budget is exhausted. A
//! [`SnapshotPolicy`] persists a [`TrainSnapshot`] every k epochs so an
//! interrupted run can continue via [`CsqTrainer::resume_from`] with a
//! trajectory identical to an uninterrupted run.

use crate::budget::{model_precision, BudgetRegularizer};
use crate::fault::FaultPlan;
use crate::gate::TemperatureSchedule;
use crate::resume::{
    capture_layer_state, restore_layer_state, SnapshotError, TrainPhase, TrainSnapshot,
};
use crate::scheme::QuantScheme;
use csq_data::{DataLoader, Dataset, Split};
use csq_nn::{
    accuracy, softmax_cross_entropy, Adam, Checkpoint, CosineSchedule, Layer, OptimState,
    OptimStateError, ParamRole, Sgd,
};
use std::path::{Path, PathBuf};

/// Which optimizer a training phase uses.
///
/// The paper uses SGD with momentum throughout; the reduced-scale
/// configurations default to [`OptimKind::Adam`] because the bit-level
/// logit gradients are orders of magnitude smaller than float weight
/// gradients and SGD cannot traverse the logit space in a few hundred
/// steps (see `csq_nn::Adam` and DESIGN.md §2). Every method in a
/// comparison uses the same optimizer, so rankings remain fair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimKind {
    /// SGD with momentum (the paper's optimizer).
    Sgd,
    /// Adam (reduced-scale default).
    Adam,
}

#[derive(Debug)]
enum Optimizer {
    Sgd(Sgd),
    Adam(Adam),
}

impl Optimizer {
    fn new(kind: OptimKind, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        match kind {
            OptimKind::Sgd => Optimizer::Sgd(Sgd::new(lr, momentum, weight_decay)),
            OptimKind::Adam => Optimizer::Adam(Adam::new(lr, weight_decay)),
        }
    }

    fn set_lr(&mut self, lr: f32) {
        match self {
            Optimizer::Sgd(o) => o.set_lr(lr),
            Optimizer::Adam(o) => o.set_lr(lr),
        }
    }

    fn step(&mut self, model: &mut dyn Layer, frozen: &[ParamRole]) {
        match self {
            Optimizer::Sgd(o) => o.step_with_frozen(model, frozen),
            Optimizer::Adam(o) => o.step_with_frozen(model, frozen),
        }
    }

    fn export_state(&self) -> OptimState {
        match self {
            Optimizer::Sgd(o) => o.export_state(),
            Optimizer::Adam(o) => o.export_state(),
        }
    }

    fn import_state(&mut self, state: OptimState) -> Result<(), OptimStateError> {
        match self {
            Optimizer::Sgd(o) => o.import_state(state),
            Optimizer::Adam(o) => o.import_state(state),
        }
    }
}

/// Per-epoch training telemetry (the series behind Figures 2–3).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpochStats {
    /// 0-based epoch index within its phase.
    pub epoch: usize,
    /// Whether this epoch belongs to the finetuning phase.
    pub finetune: bool,
    /// Mean training loss (cross entropy + nothing else; the budget
    /// regularizer acts through gradients).
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub train_acc: f32,
    /// Held-out accuracy after the epoch.
    pub test_acc: f32,
    /// Element-weighted average precision, hard-counted (`Σ_b [m_B ≥ 0]`).
    pub avg_bits: f32,
    /// Gate temperature β used this epoch.
    pub beta: f32,
    /// Learning rate used this epoch (after any recovery backoff).
    pub lr: f32,
    /// Budget gap Δ_S at the end of the epoch (0 when no budget is set).
    pub delta_s: f32,
    /// Batches skipped this epoch because their loss was non-finite.
    #[serde(default)]
    pub skipped: usize,
}

/// Structured training failure. Replaces the panics the loops used to
/// raise, so callers (benches, long campaigns) can handle divergence and
/// interruption without losing the process.
#[derive(Debug)]
pub enum TrainError {
    /// A phase was configured with zero epochs.
    ZeroEpochs,
    /// Training kept producing non-finite losses after exhausting the
    /// [`RecoveryPolicy`] retry budget.
    Diverged {
        /// Phase-local epoch in which the final storm hit.
        epoch: usize,
        /// Rewinds spent before giving up.
        rewinds: usize,
    },
    /// A [`FaultPlan`] crash injection fired (tests only).
    InjectedCrash {
        /// Phase-local epoch after which the simulated crash occurred.
        epoch: usize,
    },
    /// Saving, loading or applying a [`TrainSnapshot`] failed.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::ZeroEpochs => write!(f, "training phase requires at least one epoch"),
            TrainError::Diverged { epoch, rewinds } => write!(
                f,
                "training diverged at epoch {epoch}: non-finite losses persisted after {rewinds} rewind(s)"
            ),
            TrainError::InjectedCrash { epoch } => {
                write!(f, "injected crash after epoch {epoch}")
            }
            TrainError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for TrainError {
    fn from(e: SnapshotError) -> Self {
        TrainError::Snapshot(e)
    }
}

/// How the training loop reacts to non-finite losses.
///
/// A batch whose loss is not finite is *skipped* (no backward, no
/// optimizer step). When more than `max_bad_steps` consecutive batches
/// are skipped — or an epoch ends with no good step at all — the run is
/// in a NaN storm: parameters, optimizer moments, layer state and the
/// loader are rewound to the last epoch that ended cleanly, the learning
/// rate is scaled by `lr_backoff`, and the epoch is retried. After
/// `max_rewinds` rewinds the loop gives up with [`TrainError::Diverged`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Consecutive skipped batches tolerated before declaring a storm.
    pub max_bad_steps: usize,
    /// Rewind-and-retry attempts before giving up.
    pub max_rewinds: usize,
    /// Multiplier applied to the learning rate at each rewind.
    pub lr_backoff: f32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_bad_steps: 2,
            max_rewinds: 2,
            lr_backoff: 0.5,
        }
    }
}

impl RecoveryPolicy {
    /// Zero tolerance: the first non-finite loss fails the run. This is
    /// the old `assert!`-and-abort behaviour, minus the process kill.
    pub fn strict() -> Self {
        RecoveryPolicy {
            max_bad_steps: 0,
            max_rewinds: 0,
            lr_backoff: 1.0,
        }
    }
}

/// When and where to persist [`TrainSnapshot`]s.
///
/// The snapshot file is rewritten (atomically) after every `every`-th
/// completed epoch of a phase and after the final epoch of each phase,
/// so at most one epoch of work is lost to a crash when `every == 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPolicy {
    /// Snapshot after every `every` completed epochs (≥ 1).
    pub every: usize,
    /// File the snapshot is written to.
    pub path: PathBuf,
}

impl SnapshotPolicy {
    /// Snapshots every `every` epochs into `path`.
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero.
    pub fn every_epochs(every: usize, path: impl Into<PathBuf>) -> Self {
        assert!(every > 0, "snapshot interval must be at least one epoch");
        SnapshotPolicy {
            every,
            path: path.into(),
        }
    }

    fn due(&self, completed: usize, total: usize) -> bool {
        completed % self.every == 0 || completed == total
    }
}

/// Extended controls for [`fit_with`]: recovery, fault injection,
/// snapshotting and mid-phase resume. [`FitOptions::default`] reproduces
/// plain [`fit`].
#[derive(Debug)]
pub struct FitOptions<'a> {
    /// Reaction to non-finite losses.
    pub recovery: RecoveryPolicy,
    /// Deterministic fault injector (tests only).
    pub fault: Option<&'a mut FaultPlan>,
    /// Epoch-boundary snapshot persistence.
    pub snapshot: Option<&'a SnapshotPolicy>,
    /// Which Algorithm-1 phase this is; recorded in snapshots.
    pub phase: TrainPhase,
    /// First epoch to run (non-zero when resuming; the loader is
    /// fast-forwarded past the completed epochs).
    pub start_epoch: usize,
    /// Optimizer moments to restore before the first step (resume).
    pub init_optim: Option<OptimState>,
    /// Initial recovery learning-rate scale (resume; 1.0 otherwise).
    pub lr_scale: f32,
    /// History of epochs that precede `start_epoch` (earlier phases and
    /// the completed part of this one); embedded into snapshots so a
    /// resumed run's snapshot is indistinguishable from a straight run's.
    pub prior_history: &'a [EpochStats],
    /// Parameter roles the optimizer must not update this phase. The CSQ
    /// finetune phase freezes [`ParamRole::GateLogit`] so the discovered
    /// bit scheme cannot drift, complementing the hard mask freeze.
    pub frozen_roles: &'a [ParamRole],
}

impl Default for FitOptions<'_> {
    fn default() -> Self {
        FitOptions {
            recovery: RecoveryPolicy::default(),
            fault: None,
            snapshot: None,
            phase: TrainPhase::Csq,
            start_epoch: 0,
            init_optim: None,
            lr_scale: 1.0,
            prior_history: &[],
            frozen_roles: &[],
        }
    }
}

/// Everything needed to rewind training to the end of a known-good epoch.
#[derive(Debug)]
struct GoodState {
    params: Checkpoint,
    layer_state: Vec<(String, Vec<f32>)>,
    optim: OptimState,
    loader: DataLoader,
    /// Next epoch to run after restoring.
    epoch: usize,
    /// Phase-local history length at capture time.
    hist_len: usize,
}

impl GoodState {
    fn capture(
        model: &mut dyn Layer,
        opt: &Optimizer,
        loader: &DataLoader,
        epoch: usize,
        hist_len: usize,
    ) -> GoodState {
        GoodState {
            params: Checkpoint::capture(model),
            layer_state: capture_layer_state(model),
            optim: opt.export_state(),
            loader: loader.clone(),
            epoch,
            hist_len,
        }
    }

    /// Restores the captured state. The target is the very model/optimizer
    /// the state was captured from, so a mismatch is a logic bug, not a
    /// recoverable condition.
    fn restore(&self, model: &mut dyn Layer, opt: &mut Optimizer, loader: &mut DataLoader) {
        if let Err(e) = self.params.restore(model) {
            panic!("rewind failed to restore parameters: {e}");
        }
        if let Err(e) = restore_layer_state(model, &self.layer_state) {
            panic!("rewind failed to restore layer state: {e}");
        }
        if let Err(e) = opt.import_state(self.optim.clone()) {
            panic!("rewind failed to restore optimizer state: {e}");
        }
        *loader = self.loader.clone();
    }
}

/// True when every parameter and every non-parameter state buffer of
/// `model` is finite. Guards good-state captures and snapshot writes so a
/// late-epoch NaN injection cannot poison the rewind target.
fn model_is_finite(model: &mut dyn Layer) -> bool {
    let mut ok = true;
    model.visit_params(&mut |p| {
        if ok && !p.value.all_finite() {
            ok = false;
        }
    });
    model.visit_state(&mut |s| {
        if ok && !s.iter().all(|v| v.is_finite()) {
            ok = false;
        }
    });
    ok
}

/// Evaluates mean loss and accuracy of `model` over a data split.
pub fn evaluate(model: &mut dyn Layer, split: &Split, batch_size: usize) -> (f32, f32) {
    let mut loader = DataLoader::new(batch_size, false, 0);
    let mut loss_acc = 0.0f64;
    let mut correct = 0.0f64;
    let mut n = 0usize;
    for batch in loader.epoch(split) {
        let logits = model.forward(&batch.images, false);
        let (loss, _) = softmax_cross_entropy(&logits, &batch.labels);
        let acc = accuracy(&logits, &batch.labels);
        let b = batch.labels.len();
        loss_acc += loss as f64 * b as f64;
        correct += acc as f64 * b as f64;
        n += b;
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        ((loss_acc / n as f64) as f32, (correct / n as f64) as f32)
    }
}

/// Runs one training phase: SGD with cosine LR, optional temperature
/// scheduling and optional budget regularization. Returns per-epoch
/// statistics.
///
/// Equivalent to [`fit_with`] with [`FitOptions::default`]: default
/// recovery, no fault injection, no snapshots.
///
/// # Errors
///
/// [`TrainError::ZeroEpochs`] on a zero-epoch config;
/// [`TrainError::Diverged`] when losses stay non-finite past the default
/// [`RecoveryPolicy`] budget.
pub fn fit(
    model: &mut dyn Layer,
    data: &Dataset,
    cfg: &FitConfig,
    finetune_phase: bool,
) -> Result<Vec<EpochStats>, TrainError> {
    fit_with(model, data, cfg, finetune_phase, FitOptions::default())
}

/// [`fit`] with explicit fault-tolerance controls: recovery policy, fault
/// injection, snapshot persistence and mid-phase resume.
///
/// Returns the stats of the epochs *this call* ran
/// (`opts.start_epoch..cfg.epochs`); on resume the caller prepends the
/// already-completed history.
///
/// # Errors
///
/// See [`TrainError`].
///
/// # Panics
///
/// Panics when `opts.start_epoch` exceeds `cfg.epochs` (caller bug).
pub fn fit_with(
    model: &mut dyn Layer,
    data: &Dataset,
    cfg: &FitConfig,
    finetune_phase: bool,
    opts: FitOptions<'_>,
) -> Result<Vec<EpochStats>, TrainError> {
    if cfg.epochs == 0 {
        return Err(TrainError::ZeroEpochs);
    }
    assert!(
        opts.start_epoch <= cfg.epochs,
        "resume start epoch {} beyond configured epochs {}",
        opts.start_epoch,
        cfg.epochs
    );
    let lr_schedule = CosineSchedule::new(cfg.base_lr, cfg.warmup_epochs, cfg.epochs);
    let mut opt = Optimizer::new(cfg.optim, cfg.base_lr, cfg.momentum, cfg.weight_decay);
    if let Some(state) = opts.init_optim {
        opt.import_state(state).map_err(SnapshotError::Optim)?;
    }
    let mut loader = DataLoader::new(cfg.batch_size, true, cfg.seed);
    loader.fast_forward(opts.start_epoch as u64, data.train.len());

    let recovery = opts.recovery;
    let frozen = opts.frozen_roles;
    let mut fault = opts.fault;
    let mut lr_scale = opts.lr_scale;
    let mut history: Vec<EpochStats> = Vec::with_capacity(cfg.epochs - opts.start_epoch);
    let mut good = GoodState::capture(model, &opt, &loader, opts.start_epoch, 0);
    let mut rewinds = 0usize;
    let mut consecutive_bad = 0usize;
    let mut global_step = 0u64;

    let phase_name = match opts.phase {
        TrainPhase::Csq => "csq",
        TrainPhase::Finetune => "finetune",
    };
    let _phase_span = csq_obs::span!(
        "train",
        "phase",
        "phase" => phase_name,
        "epochs" => cfg.epochs,
        "start" => opts.start_epoch,
    );

    let mut epoch = opts.start_epoch;
    while epoch < cfg.epochs {
        let _epoch_span = csq_obs::span!(
            "train",
            "epoch",
            "epoch" => epoch,
            "phase" => phase_name,
        );
        let lr = lr_schedule.lr_at(epoch) * lr_scale;
        opt.set_lr(lr);
        let beta = match &cfg.beta {
            Some(s) => {
                let b = s.beta_at(epoch);
                model.visit_weight_sources(&mut |src| src.set_beta(b));
                b
            }
            None => 1.0,
        };

        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut seen = 0usize;
        let mut skipped = 0usize;
        let mut last_delta = 0.0f32;
        let mut storm = false;
        for batch in loader.epoch(&data.train) {
            let step = global_step;
            global_step += 1;
            model.zero_grads();
            let logits = model.forward(&batch.images, true);
            let (mut loss, grad) = softmax_cross_entropy(&logits, &batch.labels);
            if fault.as_deref_mut().is_some_and(|f| f.take_nan_loss(step)) {
                loss = f32::NAN;
            }
            if !loss.is_finite() {
                // Skip the batch: no backward, no step. Repeated skips
                // mean the parameters themselves are bad — storm.
                skipped += 1;
                consecutive_bad += 1;
                if consecutive_bad > recovery.max_bad_steps {
                    storm = true;
                    break;
                }
                continue;
            }
            consecutive_bad = 0;
            let acc = accuracy(&logits, &batch.labels);
            model.backward(&grad);
            if let Some(budget) = &cfg.budget {
                last_delta = budget.apply(model);
            }
            if fault.as_deref_mut().is_some_and(|f| f.take_nan_grads(step)) {
                model.visit_params(&mut |p| p.grad.fill(f32::NAN));
            }
            opt.step(model, frozen);
            let b = batch.labels.len();
            loss_sum += loss as f64 * b as f64;
            acc_sum += acc as f64 * b as f64;
            seen += b;
        }
        if !storm && seen == 0 {
            // Every batch was skipped: nothing was learned and the model
            // is almost certainly corrupt.
            storm = true;
        }
        if storm {
            if rewinds >= recovery.max_rewinds {
                csq_obs::event!(
                    "train",
                    "diverged",
                    "phase" => phase_name,
                    "epoch" => epoch,
                    "rewinds" => rewinds,
                );
                let _ = csq_obs::flight::dump_global("train_diverged");
                return Err(TrainError::Diverged { epoch, rewinds });
            }
            rewinds += 1;
            lr_scale *= recovery.lr_backoff;
            consecutive_bad = 0;
            csq_obs::event!(
                "train",
                "nan_rewind",
                "phase" => phase_name,
                "storm_epoch" => epoch,
                "rewind_to" => good.epoch,
                "rewinds" => rewinds,
                "lr_scale" => lr_scale,
            );
            let _ = csq_obs::flight::dump_global("nan_rewind");
            good.restore(model, &mut opt, &mut loader);
            history.truncate(good.hist_len);
            epoch = good.epoch;
            continue;
        }
        model.visit_weight_sources(&mut |src| src.on_epoch_end(epoch));

        let (_, test_acc) = evaluate(model, &data.test, cfg.batch_size);
        let stats = model_precision(model);
        let row = EpochStats {
            epoch,
            finetune: finetune_phase,
            loss: (loss_sum / seen.max(1) as f64) as f32,
            train_acc: (acc_sum / seen.max(1) as f64) as f32,
            test_acc,
            avg_bits: stats.avg_bits,
            beta,
            lr,
            delta_s: last_delta,
            skipped,
        };
        history.push(row);
        crate::telemetry::record_epoch(
            model,
            &row,
            (opts.prior_history.len() + history.len() - 1) as u64,
        );

        let completed = epoch + 1;
        // Advance the rewind target only past epochs that ended cleanly
        // on a finite model — a tail of skipped batches (or an injected
        // late NaN) must not poison the recovery point.
        let clean = consecutive_bad == 0 && model_is_finite(model);
        if clean {
            good = GoodState::capture(model, &opt, &loader, completed, history.len());
        }
        if let Some(policy) = opts.snapshot {
            if clean && policy.due(completed, cfg.epochs) {
                let snap = TrainSnapshot {
                    version: TrainSnapshot::VERSION,
                    phase: opts.phase,
                    epochs_done: completed,
                    total_epochs: cfg.epochs,
                    beta,
                    lr_scale,
                    seed: cfg.seed,
                    mask_frozen: opts.phase == TrainPhase::Finetune,
                    lambda: cfg.budget.map(|b| b.lambda),
                    target_bits: cfg.budget.map(|b| b.target_bits),
                    history: opts
                        .prior_history
                        .iter()
                        .chain(history.iter())
                        .copied()
                        .collect(),
                    params: Checkpoint::capture(model),
                    layer_state: capture_layer_state(model),
                    optim: opt.export_state(),
                    threads: csq_tensor::par::current_threads(),
                };
                snap.save(&policy.path)?;
            }
        }
        if fault.as_deref_mut().is_some_and(|f| f.take_crash(epoch)) {
            return Err(TrainError::InjectedCrash { epoch });
        }
        epoch += 1;
    }
    Ok(history)
}

/// Configuration of one [`fit`] phase.
#[derive(Debug, Clone, Copy)]
pub struct FitConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (cosine-annealed to zero).
    pub base_lr: f32,
    /// Linear warmup epochs (paper: 5 on ImageNet, 0 on CIFAR).
    pub warmup_epochs: usize,
    /// SGD momentum (paper: 0.9).
    pub momentum: f32,
    /// Weight decay applied to decaying parameters (paper: 5e-4 CIFAR,
    /// 1e-4 ImageNet).
    pub weight_decay: f32,
    /// Gate-temperature schedule, applied to all weight sources each
    /// epoch. `None` leaves temperatures untouched (float/STE baselines).
    pub beta: Option<TemperatureSchedule>,
    /// Budget-aware regularizer, applied every optimization step.
    pub budget: Option<BudgetRegularizer>,
    /// Shuffle seed for the data loader.
    pub seed: u64,
    /// Optimizer used for this phase.
    pub optim: OptimKind,
}

impl FitConfig {
    /// A reasonable default for the reduced-scale experiments.
    pub fn fast(epochs: usize) -> Self {
        FitConfig {
            epochs,
            batch_size: 32,
            base_lr: 2e-2,
            warmup_epochs: 0,
            momentum: 0.9,
            weight_decay: 5e-4,
            beta: None,
            budget: None,
            seed: 0,
            optim: OptimKind::Adam,
        }
    }
}

/// Configuration of the full CSQ pipeline (Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct CsqConfig {
    /// CSQ training epochs `T`.
    pub epochs: usize,
    /// Finetuning epochs `T'` (0 disables the finetuning phase; the paper
    /// uses 0 on CIFAR-10 and 100 on ImageNet).
    pub finetune_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (paper: 0.1).
    pub base_lr: f32,
    /// Linear LR warmup epochs (paper: 5 on ImageNet).
    pub warmup_epochs: usize,
    /// SGD momentum (paper: 0.9).
    pub momentum: f32,
    /// Weight decay (paper: 5e-4 CIFAR / 1e-4 ImageNet).
    pub weight_decay: f32,
    /// Base regularization strength λ (paper: 0.01).
    pub lambda: f32,
    /// Target element-weighted average precision in bits.
    pub target_bits: f32,
    /// Initial gate temperature β₀ (paper: 1).
    pub beta0: f32,
    /// Maximum temperature β_max (paper: 200).
    pub beta_max: f32,
    /// Fraction of the epochs after which β_max is reached and held
    /// (paper: 1.0 = reached in the last epoch; reduced-scale default
    /// 0.75 so the model settles in the near-discrete regime).
    pub beta_saturate: f32,
    /// Loader shuffle seed.
    pub seed: u64,
    /// Optimizer for both phases (see [`OptimKind`]).
    pub optim: OptimKind,
}

impl CsqConfig {
    /// Reduced-scale defaults suitable for single-core runs.
    ///
    /// λ is set to 0.3 rather than the paper's 0.01: the paper shows the
    /// final precision is insensitive to λ across `[1e-3, 1]` (Figure 2)
    /// *given hundreds of thousands of optimizer steps*; at the reduced
    /// scale of this reproduction (hundreds of steps) a value near the
    /// top of that insensitive range is needed for the mask logits to
    /// traverse the gate boundary at all. The fig2 bench sweeps λ and
    /// reproduces the paper's sensitivity shape at this scale.
    pub fn fast(target_bits: f32) -> Self {
        CsqConfig {
            epochs: 20,
            finetune_epochs: 0,
            batch_size: 32,
            base_lr: 2e-2,
            warmup_epochs: 0,
            momentum: 0.9,
            weight_decay: 5e-4,
            lambda: 0.3,
            target_bits,
            beta0: 1.0,
            beta_max: 200.0,
            beta_saturate: 0.75,
            seed: 0,
            optim: OptimKind::Adam,
        }
    }

    /// The paper's CIFAR-10 hyperparameters (600 epochs for ResNet-20).
    pub fn paper_cifar(target_bits: f32, epochs: usize) -> Self {
        CsqConfig {
            epochs,
            finetune_epochs: 0,
            batch_size: 128,
            base_lr: 0.1,
            warmup_epochs: 0,
            momentum: 0.9,
            weight_decay: 5e-4,
            lambda: 0.01,
            target_bits,
            beta0: 1.0,
            beta_max: 200.0,
            beta_saturate: 1.0,
            seed: 0,
            optim: OptimKind::Sgd,
        }
    }

    /// The paper's ImageNet hyperparameters (200 + 100 epochs).
    pub fn paper_imagenet(target_bits: f32, epochs: usize, finetune_epochs: usize) -> Self {
        CsqConfig {
            epochs,
            finetune_epochs,
            batch_size: 128,
            base_lr: 0.1,
            warmup_epochs: 5,
            momentum: 0.9,
            weight_decay: 1e-4,
            lambda: 0.01,
            target_bits,
            beta0: 1.0,
            beta_max: 200.0,
            beta_saturate: 1.0,
            seed: 0,
            optim: OptimKind::Sgd,
        }
    }

    /// Builder-style override of the training epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style override of the finetuning epochs.
    pub fn with_finetune(mut self, finetune_epochs: usize) -> Self {
        self.finetune_epochs = finetune_epochs;
        self
    }

    /// Builder-style override of λ.
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of a full training pipeline.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch telemetry, CSQ phase followed by the finetune phase.
    pub history: Vec<EpochStats>,
    /// Held-out accuracy of the *finalized* (exactly quantized) model.
    pub final_test_accuracy: f32,
    /// Final element-weighted average precision.
    pub final_avg_bits: f32,
    /// Final weight compression versus FP32.
    pub final_compression: f32,
    /// The discovered quantization scheme.
    pub scheme: QuantScheme,
}

/// Algorithm 1 of the paper: bi-level continuous sparsification training,
/// hard finalization, and the optional mask-frozen finetuning phase with
/// temperature rewind — with optional crash-safe snapshots, resume, and
/// NaN recovery.
#[derive(Debug, Clone)]
pub struct CsqTrainer {
    cfg: CsqConfig,
    snapshot: Option<SnapshotPolicy>,
    recovery: RecoveryPolicy,
    resume: Option<PathBuf>,
    fault: Option<FaultPlan>,
}

impl CsqTrainer {
    /// Creates a trainer from a config.
    pub fn new(cfg: CsqConfig) -> Self {
        CsqTrainer {
            cfg,
            snapshot: None,
            recovery: RecoveryPolicy::default(),
            resume: None,
            fault: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CsqConfig {
        &self.cfg
    }

    /// Persists a [`TrainSnapshot`] per `policy` at epoch boundaries.
    #[must_use]
    pub fn with_snapshots(mut self, policy: SnapshotPolicy) -> Self {
        self.snapshot = Some(policy);
        self
    }

    /// Overrides the non-finite-loss [`RecoveryPolicy`].
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Resumes from the snapshot at `path` if it exists; starts fresh
    /// otherwise (so a first run and a restart share one command line).
    /// The snapshot must come from the same configuration — a mismatch
    /// fails with [`SnapshotError::ConfigMismatch`].
    #[must_use]
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Injects deterministic faults while training (tests only).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Checks that `snap` belongs to the phase of `cfg` it claims.
    fn validate_snapshot(snap: &TrainSnapshot, cfg: &CsqConfig) -> Result<(), TrainError> {
        let mismatch =
            |what: String| Err(TrainError::Snapshot(SnapshotError::ConfigMismatch { what }));
        let (total, seed) = match snap.phase {
            TrainPhase::Csq => (cfg.epochs, cfg.seed),
            TrainPhase::Finetune => (cfg.finetune_epochs, cfg.seed.wrapping_add(1)),
        };
        if snap.total_epochs != total {
            return mismatch(format!(
                "snapshot phase has {} epochs, config has {total}",
                snap.total_epochs
            ));
        }
        if snap.epochs_done > total {
            return mismatch(format!(
                "snapshot claims {} completed epochs of {total}",
                snap.epochs_done
            ));
        }
        if snap.seed != seed {
            return mismatch(format!(
                "snapshot seed {} differs from config seed {seed}",
                snap.seed
            ));
        }
        if snap.phase == TrainPhase::Csq {
            if snap.lambda != Some(cfg.lambda) {
                return mismatch(format!(
                    "snapshot lambda {:?} differs from config lambda {}",
                    snap.lambda, cfg.lambda
                ));
            }
            if snap.target_bits != Some(cfg.target_bits) {
                return mismatch(format!(
                    "snapshot target {:?} differs from config target {}",
                    snap.target_bits, cfg.target_bits
                ));
            }
        }
        Ok(())
    }

    /// Runs the full pipeline on `model` (whose weight sources should be
    /// [`crate::BitQuantizer`]s) and returns the report.
    ///
    /// # Errors
    ///
    /// See [`TrainError`]. Zero-epoch configs return
    /// [`TrainError::ZeroEpochs`]; persistent non-finite losses return
    /// [`TrainError::Diverged`]; snapshot i/o or mismatch problems return
    /// [`TrainError::Snapshot`].
    pub fn train(&self, model: &mut dyn Layer, data: &Dataset) -> Result<TrainReport, TrainError> {
        let cfg = &self.cfg;
        if cfg.epochs == 0 {
            return Err(TrainError::ZeroEpochs);
        }

        // Load and apply a resume snapshot, if one is present on disk.
        let mut history: Vec<EpochStats> = Vec::new();
        let mut p1_start = 0usize;
        let mut p1_optim: Option<OptimState> = None;
        let mut p1_scale = 1.0f32;
        let mut p2_start = 0usize;
        let mut p2_optim: Option<OptimState> = None;
        let mut p2_scale = 1.0f32;
        if let Some(path) = self.resume.as_deref().filter(|p: &&Path| p.exists()) {
            let snap = TrainSnapshot::load(path)?;
            Self::validate_snapshot(&snap, cfg)?;
            // Thread-count drift is safe (the parallel runtime is
            // bit-deterministic at any width) — warn, don't fail.
            if snap.threads != 0 {
                let now = csq_tensor::par::current_threads();
                if snap.threads != now {
                    eprintln!(
                        "warning: snapshot was written with {} worker thread(s), resuming with \
                         {now}; trajectories remain bit-identical under the deterministic \
                         parallel runtime",
                        snap.threads
                    );
                }
            }
            snap.restore_model(model)?;
            history = snap.history.clone();
            match snap.phase {
                TrainPhase::Csq => {
                    p1_start = snap.epochs_done;
                    p1_optim = Some(snap.optim);
                    p1_scale = snap.lr_scale;
                }
                TrainPhase::Finetune => {
                    p1_start = cfg.epochs;
                    p2_start = snap.epochs_done;
                    p2_optim = Some(snap.optim);
                    p2_scale = snap.lr_scale;
                }
            }
        }
        let mut fault = self.fault.clone();

        // Phase 1: CSQ training with β scheduling and budget regularization.
        if p1_start < cfg.epochs {
            let phase1 = FitConfig {
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                base_lr: cfg.base_lr,
                warmup_epochs: cfg.warmup_epochs,
                momentum: cfg.momentum,
                weight_decay: cfg.weight_decay,
                beta: Some(
                    TemperatureSchedule::new(cfg.beta0, cfg.beta_max, cfg.epochs)
                        .with_saturation(cfg.beta_saturate),
                ),
                budget: Some(BudgetRegularizer::new(cfg.lambda, cfg.target_bits)),
                seed: cfg.seed,
                optim: cfg.optim,
            };
            let ran = fit_with(
                model,
                data,
                &phase1,
                false,
                FitOptions {
                    recovery: self.recovery,
                    fault: fault.as_mut(),
                    snapshot: self.snapshot.as_ref(),
                    phase: TrainPhase::Csq,
                    start_epoch: p1_start,
                    init_optim: p1_optim,
                    lr_scale: p1_scale,
                    prior_history: &history,
                    frozen_roles: &[],
                },
            )?;
            history.extend(ran);
        }

        // Fix the bit selection q_B = I(m_B ≥ 0). On a finetune-phase
        // resume this recomputes the same mask from the restored m_B.
        model.visit_weight_sources(&mut |src| src.freeze_mask());

        // Phase 2 (optional): finetune bit representations with the
        // temperature rewound to β₀ and re-annealed over T' epochs. No
        // budget regularization — the scheme is frozen, and the gate
        // logits (`ParamRole::GateLogit`) are excluded from optimizer
        // updates by role so the mask freeze cannot be undone.
        if cfg.finetune_epochs > 0 && p2_start < cfg.finetune_epochs {
            let phase2 = FitConfig {
                epochs: cfg.finetune_epochs,
                batch_size: cfg.batch_size,
                base_lr: cfg.base_lr,
                warmup_epochs: 0,
                momentum: cfg.momentum,
                weight_decay: cfg.weight_decay,
                beta: Some(
                    TemperatureSchedule::new(cfg.beta0, cfg.beta_max, cfg.finetune_epochs)
                        .with_saturation(cfg.beta_saturate),
                ),
                budget: None,
                seed: cfg.seed.wrapping_add(1),
                optim: cfg.optim,
            };
            let ran = fit_with(
                model,
                data,
                &phase2,
                true,
                FitOptions {
                    recovery: self.recovery,
                    fault: fault.as_mut(),
                    snapshot: self.snapshot.as_ref(),
                    phase: TrainPhase::Finetune,
                    start_epoch: p2_start,
                    init_optim: p2_optim,
                    lr_scale: p2_scale,
                    prior_history: &history,
                    frozen_roles: &[ParamRole::GateLogit],
                },
            )?;
            history.extend(ran);
        }

        // Final hard quantization before validation ("we set all gate
        // functions to the unit-step function before the final
        // validation").
        model.visit_weight_sources(&mut |src| src.finalize());
        let (_, final_acc) = evaluate(model, &data.test, cfg.batch_size);
        let stats = model_precision(model);
        let scheme = QuantScheme::extract(model);
        Ok(TrainReport {
            history,
            final_test_accuracy: final_acc,
            final_avg_bits: stats.avg_bits,
            final_compression: stats.compression_ratio(),
            scheme,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrep::csq_factory;
    use csq_data::SyntheticSpec;
    use csq_nn::models::{resnet_cifar, ModelConfig};
    use csq_nn::weight::float_factory;

    fn tiny_data() -> Dataset {
        Dataset::synthetic(
            &SyntheticSpec::cifar_like(0)
                .with_samples(16, 8)
                .with_classes(4),
        )
    }

    /// Fast config with enough optimizer steps for the mask logits to
    /// traverse the gate boundary on the tiny dataset.
    fn tiny_csq_cfg(target: f32, epochs: usize) -> CsqConfig {
        let mut cfg = CsqConfig::fast(target).with_epochs(epochs);
        cfg.batch_size = 8;
        cfg
    }

    #[test]
    fn fit_improves_float_model() {
        let data = tiny_data();
        let mut fac = float_factory();
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = FitConfig::fast(6);
        let history = fit(&mut model, &data, &cfg, false).unwrap();
        assert_eq!(history.len(), 6);
        let first = history.first().unwrap().loss;
        let last = history.last().unwrap().loss;
        assert!(last < first, "loss {first} -> {last}");
        assert!(!history.iter().any(|h| h.finetune));
        assert!(history.iter().all(|h| h.skipped == 0));
    }

    #[test]
    fn zero_epoch_fit_is_a_structured_error() {
        let data = tiny_data();
        let mut fac = float_factory();
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = FitConfig::fast(0);
        assert!(matches!(
            fit(&mut model, &data, &cfg, false),
            Err(TrainError::ZeroEpochs)
        ));
        let csq = tiny_csq_cfg(3.0, 5).with_epochs(0);
        assert!(matches!(
            CsqTrainer::new(csq).train(&mut model, &data),
            Err(TrainError::ZeroEpochs)
        ));
    }

    #[test]
    fn csq_training_converges_to_target_precision() {
        let data = tiny_data();
        let mut fac = csq_factory(8);
        let mut cfg_m = ModelConfig::cifar_like(4, Some(3), 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = tiny_csq_cfg(3.0, 15);
        let report = CsqTrainer::new(cfg).train(&mut model, &data).unwrap();
        assert!(
            (report.final_avg_bits - 3.0).abs() <= 1.0,
            "avg bits {} should be near the 3-bit target",
            report.final_avg_bits
        );
        assert!(report.final_compression > 8.0);
        assert_eq!(report.history.len(), 15);
    }

    #[test]
    fn finalized_model_is_exactly_quantized() {
        let data = tiny_data();
        let mut fac = csq_factory(8);
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = tiny_csq_cfg(4.0, 4);
        let _ = CsqTrainer::new(cfg).train(&mut model, &data).unwrap();
        // Every weight source must now be hard: materialized weights on
        // the quantization grid.
        model.visit_weight_sources(&mut |src| {
            let step = src.quant_step().expect("CSQ sources expose a grid step");
            let w = src.materialize();
            for &v in w.iter() {
                let k = v / step;
                assert!(
                    (k - k.round()).abs() < 1e-2,
                    "weight {v} not on grid of step {step}"
                );
            }
        });
    }

    #[test]
    fn finetune_phase_keeps_scheme_fixed() {
        let data = tiny_data();
        let mut fac = csq_factory(8);
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = tiny_csq_cfg(3.0, 6).with_finetune(4);
        let report = CsqTrainer::new(cfg).train(&mut model, &data).unwrap();
        assert_eq!(report.history.len(), 10);
        let ft: Vec<_> = report.history.iter().filter(|h| h.finetune).collect();
        assert_eq!(ft.len(), 4);
        // Precision must not change during finetuning.
        let bits_at_freeze = ft.first().unwrap().avg_bits;
        for h in &ft {
            assert_eq!(h.avg_bits, bits_at_freeze, "scheme drifted in finetune");
        }
    }

    #[test]
    fn beta_schedule_reaches_max_in_last_epoch() {
        let data = tiny_data();
        let mut fac = csq_factory(8);
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = tiny_csq_cfg(4.0, 5);
        let report = CsqTrainer::new(cfg).train(&mut model, &data).unwrap();
        assert!((report.history[0].beta - 1.0).abs() < 1e-5);
        assert!((report.history[4].beta - 200.0).abs() < 1e-2);
    }

    #[test]
    fn evaluate_handles_empty_split() {
        let data = tiny_data();
        let mut fac = float_factory();
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let empty = csq_data::Split {
            images: csq_tensor::Tensor::zeros(&[0, 3, 16, 16]),
            labels: vec![],
        };
        let (loss, acc) = evaluate(&mut model, &empty, 8);
        assert_eq!(loss, 0.0);
        assert_eq!(acc, 0.0);
        let _ = data;
    }

    #[test]
    fn skipped_batch_does_not_abort_training() {
        let data = tiny_data();
        let mut fac = float_factory();
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = FitConfig::fast(3);
        let mut plan = FaultPlan::new().nan_loss_at(1);
        let history = fit_with(
            &mut model,
            &data,
            &cfg,
            false,
            FitOptions {
                fault: Some(&mut plan),
                ..FitOptions::default()
            },
        )
        .unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(history[0].skipped, 1, "one batch skipped in epoch 0");
        assert_eq!(history[1].skipped + history[2].skipped, 0);
        assert!(plan.is_spent());
    }

    #[test]
    fn strict_recovery_fails_fast_on_nan() {
        let data = tiny_data();
        let mut fac = float_factory();
        let mut cfg_m = ModelConfig::cifar_like(4, None, 0);
        cfg_m.num_classes = 4;
        let mut model = resnet_cifar(cfg_m, &mut fac, 1);
        let cfg = FitConfig::fast(3);
        let mut plan = FaultPlan::new().nan_loss_at(0);
        let err = fit_with(
            &mut model,
            &data,
            &cfg,
            false,
            FitOptions {
                recovery: RecoveryPolicy::strict(),
                fault: Some(&mut plan),
                ..FitOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                TrainError::Diverged {
                    epoch: 0,
                    rewinds: 0
                }
            ),
            "{err}"
        );
    }
}
