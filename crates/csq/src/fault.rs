//! Deterministic fault injection for exercising the recovery paths.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of failures the
//! trainer consults at fixed points in its loop:
//!
//! * **NaN loss at step k** — the batch loss is replaced with NaN just
//!   before the finiteness check, modelling a numerically exploding
//!   forward pass.
//! * **NaN gradients at step k** — every parameter gradient is poisoned
//!   after backward/regularization but before the optimizer step,
//!   modelling a corrupted backward pass whose damage only shows up in
//!   *later* losses (a NaN storm).
//! * **Crash at epoch e** — training aborts right after the epoch-end
//!   snapshot write, modelling a process kill at an epoch boundary.
//!
//! A [`ChaosPlan`] is the serving-side counterpart, consulted by the
//! `csq-serve` engine at batch boundaries:
//!
//! * **Kill worker w at its batch b** — the worker thread dies abruptly
//!   (unwinds past the batch it holds), exercising worker supervision
//!   and the `WorkerFailed` ticket path.
//! * **Poison global batch k** — the kernel panics *inside* the
//!   containment boundary, so only that batch's tickets fail.
//! * **Delay global batch k** — injected latency, for driving requests
//!   past their deadlines deterministically.
//! * **Burst at tick t / corrupt artifact** — schedule entries consumed
//!   by the test harness itself (overload generators, pre-swap file
//!   corruption via [`flip_bit`]) so a whole chaos scenario lives in
//!   one seeded plan.
//! * **Fleet-level entries** — kill the entire replica group of one
//!   model ([`ChaosPlan::kill_replica_group`]) and corrupt a specific
//!   registry artifact before the scan
//!   ([`ChaosPlan::corrupt_registry_entry`]), consumed by the
//!   `csq-fleet` chaos harness.
//!
//! Each injection fires exactly once and is then spent, so a rewound
//! epoch replays cleanly. File-corruption helpers ([`truncate_file`],
//! [`flip_bit`]) complete the kit for testing snapshot integrity
//! checking.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::Path;
use std::time::Duration;

/// A reproducible schedule of injected training faults.
///
/// Build one explicitly with [`FaultPlan::new`] plus the `*_at` setters,
/// or derive a pseudo-random NaN storm from a seed with
/// [`FaultPlan::seeded_storm`]. Injection points are *global* batch-step
/// indices (counted across epochs from the start of the phase) or
/// phase-local epoch indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    nan_loss_steps: Vec<u64>,
    nan_grad_steps: Vec<u64>,
    crash_epochs: Vec<usize>,
}

impl FaultPlan {
    /// An empty plan that injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Injects a NaN loss at global batch step `step`.
    #[must_use]
    pub fn nan_loss_at(mut self, step: u64) -> FaultPlan {
        self.nan_loss_steps.push(step);
        self
    }

    /// Injects NaN gradients at global batch step `step`.
    #[must_use]
    pub fn nan_grads_at(mut self, step: u64) -> FaultPlan {
        self.nan_grad_steps.push(step);
        self
    }

    /// Simulates a crash right after epoch `epoch` completes (and after
    /// its snapshot, if due, has been written).
    #[must_use]
    pub fn crash_at_epoch(mut self, epoch: usize) -> FaultPlan {
        self.crash_epochs.push(epoch);
        self
    }

    /// A seeded burst of `count` NaN-loss injections at pseudo-random
    /// steps in `[start, start + span)`. Deterministic for a given seed.
    pub fn seeded_storm(seed: u64, start: u64, span: u64, count: usize) -> FaultPlan {
        assert!(span > 0, "seeded_storm requires a non-empty step range");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let step = start + rng.gen_range(0..span);
            if !plan.nan_loss_steps.contains(&step) {
                plan.nan_loss_steps.push(step);
            }
        }
        plan
    }

    /// True when nothing is left to inject.
    pub fn is_spent(&self) -> bool {
        self.nan_loss_steps.is_empty()
            && self.nan_grad_steps.is_empty()
            && self.crash_epochs.is_empty()
    }

    /// Consumes a pending NaN-loss injection for `step`, if any.
    pub fn take_nan_loss(&mut self, step: u64) -> bool {
        take(&mut self.nan_loss_steps, &step)
    }

    /// Consumes a pending NaN-gradient injection for `step`, if any.
    pub fn take_nan_grads(&mut self, step: u64) -> bool {
        take(&mut self.nan_grad_steps, &step)
    }

    /// Consumes a pending crash injection for `epoch`, if any.
    pub fn take_crash(&mut self, epoch: usize) -> bool {
        take(&mut self.crash_epochs, &epoch)
    }
}

/// A reproducible schedule of injected *serving* faults.
///
/// The engine consults the plan at batch boundaries (worker kills,
/// batch poisoning, injected latency); the chaos test harness consumes
/// the remaining entries itself (overload bursts, artifact corruption).
/// Like [`FaultPlan`], every injection fires exactly once: a consumed
/// entry is spent, so a restarted worker replays cleanly.
///
/// Worker kills are keyed by `(worker id, per-worker batch ordinal)` —
/// each worker counts its own batches from 0 (and again from 0 after a
/// restart), which keeps the schedule deterministic regardless of how
/// batches interleave across workers. Poison and delay entries are
/// keyed by the engine's global batch sequence number.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    worker_kills: Vec<(usize, u64)>,
    poison_batches: Vec<u64>,
    batch_delays: Vec<(u64, Duration)>,
    overload_bursts: Vec<(u64, usize)>,
    artifact_flips: Vec<(u64, u8)>,
    replica_group_kills: Vec<String>,
    registry_corruptions: Vec<(usize, u64, u8)>,
}

impl ChaosPlan {
    /// An empty plan that injects nothing.
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Kills worker `worker` just before it runs its `batch`-th batch
    /// (0-based, counted per worker since that worker thread started).
    #[must_use]
    pub fn kill_worker_at(mut self, worker: usize, batch: u64) -> ChaosPlan {
        self.worker_kills.push((worker, batch));
        self
    }

    /// Panics the kernel *inside* the containment boundary on global
    /// batch `batch`, failing only that batch's tickets.
    #[must_use]
    pub fn poison_batch_at(mut self, batch: u64) -> ChaosPlan {
        self.poison_batches.push(batch);
        self
    }

    /// Sleeps for `delay` before running global batch `batch`,
    /// modelling a stalled kernel or an overloaded machine.
    #[must_use]
    pub fn delay_batch_at(mut self, batch: u64, delay: Duration) -> ChaosPlan {
        self.batch_delays.push((batch, delay));
        self
    }

    /// Schedules `extra` additional submissions at load-generator tick
    /// `tick` (consumed by the harness, not the engine).
    #[must_use]
    pub fn burst_at(mut self, tick: u64, extra: usize) -> ChaosPlan {
        self.overload_bursts.push((tick, extra));
        self
    }

    /// Schedules one artifact bit flip (byte `byte_index`, bit `bit`)
    /// to apply with [`flip_bit`] before a hot-swap (consumed by the
    /// harness, not the engine).
    #[must_use]
    pub fn corrupt_artifact_at(mut self, byte_index: u64, bit: u8) -> ChaosPlan {
        self.artifact_flips.push((byte_index, bit));
        self
    }

    /// Schedules the fleet harness to kill the entire replica group
    /// serving `model_id` (every engine in the group goes down at
    /// once), exercising the router's group-down typed-error path and
    /// its restart-from-artifact recovery. Consumed by the harness, not
    /// the engine.
    #[must_use]
    pub fn kill_replica_group(mut self, model_id: impl Into<String>) -> ChaosPlan {
        self.replica_group_kills.push(model_id.into());
        self
    }

    /// Schedules one registry-artifact bit flip: the `entry`-th `.csqm`
    /// file of a registry directory in deterministic scan order gets
    /// bit `bit` of byte `byte_index` flipped with [`flip_bit`] before
    /// the registry scan. Consumed by the harness, not the engine.
    #[must_use]
    pub fn corrupt_registry_entry(mut self, entry: usize, byte_index: u64, bit: u8) -> ChaosPlan {
        self.registry_corruptions.push((entry, byte_index, bit));
        self
    }

    /// A seeded schedule: `kills` worker kills spread over `workers`
    /// workers and per-worker batch ordinals in `[0, batch_span)`, plus
    /// `delays` injected latencies of up to `max_delay` on global
    /// batches in the same span. Deterministic for a given seed.
    pub fn seeded(
        seed: u64,
        workers: usize,
        batch_span: u64,
        kills: usize,
        delays: usize,
        max_delay: Duration,
    ) -> ChaosPlan {
        assert!(workers > 0, "seeded chaos requires at least one worker");
        assert!(
            batch_span > 0,
            "seeded chaos requires a non-empty batch range"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = ChaosPlan::new();
        for _ in 0..kills {
            let kill = (rng.gen_range(0..workers), rng.gen_range(0..batch_span));
            if !plan.worker_kills.contains(&kill) {
                plan.worker_kills.push(kill);
            }
        }
        let delay_nanos = max_delay.as_nanos().max(1) as u64;
        for _ in 0..delays {
            let batch = rng.gen_range(0..batch_span);
            if plan.batch_delays.iter().all(|(b, _)| *b != batch) {
                let d = Duration::from_nanos(rng.gen_range(0..=delay_nanos));
                plan.batch_delays.push((batch, d));
            }
        }
        plan
    }

    /// True when nothing is left to inject.
    pub fn is_spent(&self) -> bool {
        self.worker_kills.is_empty()
            && self.poison_batches.is_empty()
            && self.batch_delays.is_empty()
            && self.overload_bursts.is_empty()
            && self.artifact_flips.is_empty()
            && self.replica_group_kills.is_empty()
            && self.registry_corruptions.is_empty()
    }

    /// Consumes a pending kill for worker `worker` at its per-worker
    /// batch ordinal `batch`, if any.
    pub fn take_worker_kill(&mut self, worker: usize, batch: u64) -> bool {
        take(&mut self.worker_kills, &(worker, batch))
    }

    /// Consumes a pending poison injection for global batch `batch`.
    pub fn take_batch_poison(&mut self, batch: u64) -> bool {
        take(&mut self.poison_batches, &batch)
    }

    /// Consumes a pending latency injection for global batch `batch`.
    pub fn take_batch_delay(&mut self, batch: u64) -> Option<Duration> {
        take_keyed(&mut self.batch_delays, batch)
    }

    /// Consumes a pending overload burst for load-generator tick
    /// `tick`, returning the number of extra submissions to fire.
    pub fn take_burst(&mut self, tick: u64) -> Option<usize> {
        take_keyed(&mut self.overload_bursts, tick)
    }

    /// Consumes the next scheduled artifact bit flip, in insertion
    /// order: `(byte_index, bit)` for [`flip_bit`].
    pub fn take_artifact_flip(&mut self) -> Option<(u64, u8)> {
        if self.artifact_flips.is_empty() {
            None
        } else {
            Some(self.artifact_flips.remove(0))
        }
    }

    /// Consumes a pending replica-group kill for `model_id`, if any.
    pub fn take_replica_group_kill(&mut self, model_id: &str) -> bool {
        match self.replica_group_kills.iter().position(|m| m == model_id) {
            Some(i) => {
                self.replica_group_kills.remove(i);
                true
            }
            None => false,
        }
    }

    /// Consumes the next scheduled registry corruption, in insertion
    /// order: `(entry, byte_index, bit)` — flip the given bit of the
    /// `entry`-th registry file (deterministic scan order) with
    /// [`flip_bit`].
    pub fn take_registry_corruption(&mut self) -> Option<(usize, u64, u8)> {
        if self.registry_corruptions.is_empty() {
            None
        } else {
            Some(self.registry_corruptions.remove(0))
        }
    }
}

fn take_keyed<K: PartialEq, V>(pending: &mut Vec<(K, V)>, key: K) -> Option<V> {
    pending
        .iter()
        .position(|(k, _)| *k == key)
        .map(|i| pending.remove(i).1)
}

fn take<T: PartialEq>(pending: &mut Vec<T>, key: &T) -> bool {
    match pending.iter().position(|p| p == key) {
        Some(i) => {
            pending.remove(i);
            true
        }
        None => false,
    }
}

/// Truncates the file at `path` by `bytes` bytes (to empty if it is
/// shorter), simulating a write cut short by a crash.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn truncate_file(path: &Path, bytes: u64) -> std::io::Result<()> {
    let len = std::fs::metadata(path)?.len();
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len.saturating_sub(bytes))?;
    file.sync_all()
}

/// Flips one bit of the file at `path` (bit `bit` of byte `byte_index`),
/// simulating silent on-disk corruption.
///
/// # Errors
///
/// Propagates filesystem errors; fails with `InvalidInput` when
/// `byte_index` is out of range or `bit > 7`.
pub fn flip_bit(path: &Path, byte_index: u64, bit: u8) -> std::io::Result<()> {
    if bit > 7 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("bit index {bit} out of range (0..=7)"),
        ));
    }
    let mut bytes = std::fs::read(path)?;
    let idx = usize::try_from(byte_index).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "byte index does not fit usize",
        )
    })?;
    match bytes.get_mut(idx) {
        Some(b) => *b ^= 1u8 << bit,
        None => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("byte index {byte_index} beyond file length {}", bytes.len()),
            ))
        }
    }
    std::fs::write(path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_fire_once() {
        let mut plan = FaultPlan::new()
            .nan_loss_at(3)
            .nan_grads_at(5)
            .crash_at_epoch(1);
        assert!(!plan.take_nan_loss(2));
        assert!(plan.take_nan_loss(3));
        assert!(!plan.take_nan_loss(3), "spent after first hit");
        assert!(plan.take_nan_grads(5));
        assert!(plan.take_crash(1));
        assert!(plan.is_spent());
    }

    #[test]
    fn seeded_storm_is_deterministic() {
        let a = FaultPlan::seeded_storm(9, 10, 20, 4);
        let b = FaultPlan::seeded_storm(9, 10, 20, 4);
        assert_eq!(a, b);
        assert!(!a.is_spent());
    }

    #[test]
    fn chaos_injections_fire_once() {
        let mut plan = ChaosPlan::new()
            .kill_worker_at(1, 3)
            .poison_batch_at(5)
            .delay_batch_at(7, Duration::from_millis(2))
            .burst_at(4, 16)
            .corrupt_artifact_at(10, 3)
            .kill_replica_group("alpha")
            .corrupt_registry_entry(2, 64, 5);
        assert!(!plan.take_worker_kill(0, 3), "wrong worker must not match");
        assert!(!plan.take_worker_kill(1, 2), "wrong batch must not match");
        assert!(plan.take_worker_kill(1, 3));
        assert!(!plan.take_worker_kill(1, 3), "spent after first hit");
        assert!(plan.take_batch_poison(5));
        assert!(!plan.take_batch_poison(5));
        assert_eq!(plan.take_batch_delay(7), Some(Duration::from_millis(2)));
        assert_eq!(plan.take_batch_delay(7), None);
        assert_eq!(plan.take_burst(4), Some(16));
        assert_eq!(plan.take_artifact_flip(), Some((10, 3)));
        assert_eq!(plan.take_artifact_flip(), None);
        assert!(!plan.take_replica_group_kill("beta"), "wrong group");
        assert!(plan.take_replica_group_kill("alpha"));
        assert!(!plan.take_replica_group_kill("alpha"), "spent");
        assert_eq!(plan.take_registry_corruption(), Some((2, 64, 5)));
        assert_eq!(plan.take_registry_corruption(), None);
        assert!(plan.is_spent());
    }

    #[test]
    fn seeded_chaos_is_deterministic() {
        let a = ChaosPlan::seeded(11, 4, 32, 3, 2, Duration::from_millis(5));
        let b = ChaosPlan::seeded(11, 4, 32, 3, 2, Duration::from_millis(5));
        assert_eq!(a, b);
        assert!(!a.is_spent());
        let c = ChaosPlan::seeded(12, 4, 32, 3, 2, Duration::from_millis(5));
        assert_ne!(a, c, "different seeds must give different schedules");
    }

    #[test]
    fn truncate_and_flip_corrupt_files() {
        let path = std::env::temp_dir().join("csq_fault_corrupt.bin");
        std::fs::write(&path, b"hello world").unwrap();
        flip_bit(&path, 0, 0).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[0], b'h' ^ 1);
        truncate_file(&path, 6).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 5);
        truncate_file(&path, 100).unwrap();
        assert!(std::fs::read(&path).unwrap().is_empty());
        assert!(flip_bit(&path, 0, 0).is_err(), "empty file has no byte 0");
        std::fs::remove_file(&path).ok();
    }
}
