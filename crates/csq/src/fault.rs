//! Deterministic fault injection for exercising the recovery paths.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of failures the
//! trainer consults at fixed points in its loop:
//!
//! * **NaN loss at step k** — the batch loss is replaced with NaN just
//!   before the finiteness check, modelling a numerically exploding
//!   forward pass.
//! * **NaN gradients at step k** — every parameter gradient is poisoned
//!   after backward/regularization but before the optimizer step,
//!   modelling a corrupted backward pass whose damage only shows up in
//!   *later* losses (a NaN storm).
//! * **Crash at epoch e** — training aborts right after the epoch-end
//!   snapshot write, modelling a process kill at an epoch boundary.
//!
//! Each injection fires exactly once and is then spent, so a rewound
//! epoch replays cleanly. File-corruption helpers ([`truncate_file`],
//! [`flip_bit`]) complete the kit for testing snapshot integrity
//! checking.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::Path;

/// A reproducible schedule of injected training faults.
///
/// Build one explicitly with [`FaultPlan::new`] plus the `*_at` setters,
/// or derive a pseudo-random NaN storm from a seed with
/// [`FaultPlan::seeded_storm`]. Injection points are *global* batch-step
/// indices (counted across epochs from the start of the phase) or
/// phase-local epoch indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    nan_loss_steps: Vec<u64>,
    nan_grad_steps: Vec<u64>,
    crash_epochs: Vec<usize>,
}

impl FaultPlan {
    /// An empty plan that injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Injects a NaN loss at global batch step `step`.
    #[must_use]
    pub fn nan_loss_at(mut self, step: u64) -> FaultPlan {
        self.nan_loss_steps.push(step);
        self
    }

    /// Injects NaN gradients at global batch step `step`.
    #[must_use]
    pub fn nan_grads_at(mut self, step: u64) -> FaultPlan {
        self.nan_grad_steps.push(step);
        self
    }

    /// Simulates a crash right after epoch `epoch` completes (and after
    /// its snapshot, if due, has been written).
    #[must_use]
    pub fn crash_at_epoch(mut self, epoch: usize) -> FaultPlan {
        self.crash_epochs.push(epoch);
        self
    }

    /// A seeded burst of `count` NaN-loss injections at pseudo-random
    /// steps in `[start, start + span)`. Deterministic for a given seed.
    pub fn seeded_storm(seed: u64, start: u64, span: u64, count: usize) -> FaultPlan {
        assert!(span > 0, "seeded_storm requires a non-empty step range");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let step = start + rng.gen_range(0..span);
            if !plan.nan_loss_steps.contains(&step) {
                plan.nan_loss_steps.push(step);
            }
        }
        plan
    }

    /// True when nothing is left to inject.
    pub fn is_spent(&self) -> bool {
        self.nan_loss_steps.is_empty()
            && self.nan_grad_steps.is_empty()
            && self.crash_epochs.is_empty()
    }

    /// Consumes a pending NaN-loss injection for `step`, if any.
    pub fn take_nan_loss(&mut self, step: u64) -> bool {
        take(&mut self.nan_loss_steps, &step)
    }

    /// Consumes a pending NaN-gradient injection for `step`, if any.
    pub fn take_nan_grads(&mut self, step: u64) -> bool {
        take(&mut self.nan_grad_steps, &step)
    }

    /// Consumes a pending crash injection for `epoch`, if any.
    pub fn take_crash(&mut self, epoch: usize) -> bool {
        take(&mut self.crash_epochs, &epoch)
    }
}

fn take<T: PartialEq>(pending: &mut Vec<T>, key: &T) -> bool {
    match pending.iter().position(|p| p == key) {
        Some(i) => {
            pending.remove(i);
            true
        }
        None => false,
    }
}

/// Truncates the file at `path` by `bytes` bytes (to empty if it is
/// shorter), simulating a write cut short by a crash.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn truncate_file(path: &Path, bytes: u64) -> std::io::Result<()> {
    let len = std::fs::metadata(path)?.len();
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len.saturating_sub(bytes))?;
    file.sync_all()
}

/// Flips one bit of the file at `path` (bit `bit` of byte `byte_index`),
/// simulating silent on-disk corruption.
///
/// # Errors
///
/// Propagates filesystem errors; fails with `InvalidInput` when
/// `byte_index` is out of range or `bit > 7`.
pub fn flip_bit(path: &Path, byte_index: u64, bit: u8) -> std::io::Result<()> {
    if bit > 7 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("bit index {bit} out of range (0..=7)"),
        ));
    }
    let mut bytes = std::fs::read(path)?;
    let idx = usize::try_from(byte_index).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "byte index does not fit usize",
        )
    })?;
    match bytes.get_mut(idx) {
        Some(b) => *b ^= 1u8 << bit,
        None => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("byte index {byte_index} beyond file length {}", bytes.len()),
            ))
        }
    }
    std::fs::write(path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_fire_once() {
        let mut plan = FaultPlan::new()
            .nan_loss_at(3)
            .nan_grads_at(5)
            .crash_at_epoch(1);
        assert!(!plan.take_nan_loss(2));
        assert!(plan.take_nan_loss(3));
        assert!(!plan.take_nan_loss(3), "spent after first hit");
        assert!(plan.take_nan_grads(5));
        assert!(plan.take_crash(1));
        assert!(plan.is_spent());
    }

    #[test]
    fn seeded_storm_is_deterministic() {
        let a = FaultPlan::seeded_storm(9, 10, 20, 4);
        let b = FaultPlan::seeded_storm(9, 10, 20, 4);
        assert_eq!(a, b);
        assert!(!a.is_spent());
    }

    #[test]
    fn truncate_and_flip_corrupt_files() {
        let path = std::env::temp_dir().join("csq_fault_corrupt.bin");
        std::fs::write(&path, b"hello world").unwrap();
        flip_bit(&path, 0, 0).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[0], b'h' ^ 1);
        truncate_file(&path, 6).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 5);
        truncate_file(&path, 100).unwrap();
        assert!(std::fs::read(&path).unwrap().is_empty());
        assert!(flip_bit(&path, 0, 0).is_err(), "empty file has no byte 0");
        std::fs::remove_file(&path).ok();
    }
}
