//! Crash-safe training snapshots.
//!
//! A [`TrainSnapshot`] captures everything Algorithm 1 needs to continue
//! mid-run as if it had never stopped:
//!
//! * model parameters keyed by their stable hierarchical path — for CSQ
//!   sources that includes the scales `s` and the gate logits `m_p`,
//!   `m_n`, `m_B` (the whole bi-level relaxation state),
//! * non-parameter layer state ([`csq_nn::Layer::visit_state_named`]),
//!   also keyed by path: BatchNorm running statistics and
//!   activation-range EMAs,
//! * optimizer moments ([`csq_nn::OptimState`]),
//! * the phase ([`TrainPhase`]), epochs completed within it, and the full
//!   [`EpochStats`](crate::EpochStats) history so far,
//! * the recovery learning-rate scale and the loader seed,
//! * the worker-thread count of the writing process (informational:
//!   the deterministic parallel runtime makes resuming under a
//!   different `CSQ_THREADS` bit-exact, so a mismatch only warns).
//!
//! Deliberately *not* stored (recomputed deterministically instead):
//! the temperature β (a pure function of the epoch index via
//! [`crate::TemperatureSchedule`]), the frozen bit mask (recomputed from
//! the `m_B` logits by `freeze_mask`), and the data loader RNG position
//! (replayed with [`csq_data::DataLoader::fast_forward`]).
//!
//! Snapshots are persisted through [`csq_nn::persist`]: an atomic
//! temp-file → fsync → rename write framed with a CRC32 header, so a
//! crash mid-save leaves the previous snapshot intact and a truncated or
//! bit-flipped file is rejected with a checksum error instead of being
//! deserialized into garbage.
//!
//! # Format history
//!
//! * **v3** (current): parameters, optimizer buffers and layer state are
//!   keyed by parameter path (e.g. `"0.weight.m_b"`); restore validates
//!   paths and shapes and names both sides on a mismatch.
//! * **v1** (legacy): everything keyed by visitation order. Still loaded
//!   bit-exactly — unnamed entries are validated and applied
//!   positionally, and adopt the model's paths on the next save.

use crate::trainer::EpochStats;
use csq_nn::checkpoint::RestoreError;
use csq_nn::optim::OptimStateError;
use csq_nn::persist::{self, PersistError};
use csq_nn::{Checkpoint, Layer, OptimState};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Which phase of Algorithm 1 a snapshot was taken in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainPhase {
    /// Phase 1: CSQ training with β scheduling and the budget regularizer.
    Csq,
    /// Phase 2: mask-frozen finetuning with the temperature rewound.
    Finetune,
}

/// Error saving, loading or restoring a [`TrainSnapshot`].
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem or integrity (checksum/truncation) failure.
    Persist(PersistError),
    /// The payload is not a valid snapshot document.
    Json(serde_json::Error),
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The snapshot does not fit the model architecture.
    Restore(RestoreError),
    /// The snapshot's non-parameter layer state does not fit the model.
    StateMismatch {
        /// State buffers in the snapshot.
        expected: usize,
        /// State buffers in the model.
        actual: usize,
    },
    /// The snapshot's optimizer state does not fit the configured
    /// optimizer.
    Optim(OptimStateError),
    /// The snapshot belongs to a different training configuration.
    ConfigMismatch {
        /// Human-readable description of the disagreeing field.
        what: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Persist(e) => write!(f, "snapshot file error: {e}"),
            SnapshotError::Json(e) => write!(f, "snapshot payload is not valid: {e}"),
            SnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
            SnapshotError::Restore(e) => write!(f, "snapshot does not fit the model: {e}"),
            SnapshotError::StateMismatch { expected, actual } => write!(
                f,
                "snapshot has {expected} layer-state buffers but the model has {actual}"
            ),
            SnapshotError::Optim(e) => write!(f, "snapshot optimizer state mismatch: {e}"),
            SnapshotError::ConfigMismatch { what } => {
                write!(
                    f,
                    "snapshot was taken under a different configuration: {what}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Persist(e) => Some(e),
            SnapshotError::Json(e) => Some(e),
            SnapshotError::Restore(e) => Some(e),
            SnapshotError::Optim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for SnapshotError {
    fn from(e: PersistError) -> Self {
        SnapshotError::Persist(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Json(e)
    }
}

impl From<RestoreError> for SnapshotError {
    fn from(e: RestoreError) -> Self {
        SnapshotError::Restore(e)
    }
}

impl From<OptimStateError> for SnapshotError {
    fn from(e: OptimStateError) -> Self {
        SnapshotError::Optim(e)
    }
}

/// A versioned, self-contained capture of a training run in flight.
///
/// See the module docs for what is stored versus recomputed. Snapshots
/// round-trip bit-exactly: every field is either an integer or an `f32`
/// whose JSON encoding (via `f64`) is lossless, so a resumed run
/// reproduces the interrupted run's trajectory exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainSnapshot {
    /// Format version ([`TrainSnapshot::VERSION`]).
    pub version: u32,
    /// Phase the run was in.
    pub phase: TrainPhase,
    /// Epochs completed *within this phase*.
    pub epochs_done: usize,
    /// Total epochs configured for this phase.
    pub total_epochs: usize,
    /// Temperature β of the last completed epoch (informational — β is
    /// recomputed from the schedule on resume).
    pub beta: f32,
    /// Recovery learning-rate scale in effect (1.0 unless a NaN storm
    /// forced a backoff).
    pub lr_scale: f32,
    /// Loader shuffle seed of this phase.
    pub seed: u64,
    /// Whether the bit mask was frozen (true from the finetune phase on).
    pub mask_frozen: bool,
    /// Budget regularizer strength λ, when the phase uses one.
    pub lambda: Option<f32>,
    /// Budget target precision, when the phase uses one.
    pub target_bits: Option<f32>,
    /// Full per-epoch history up to the snapshot (all phases).
    pub history: Vec<EpochStats>,
    /// Model parameters keyed by path (includes quantizer scales and
    /// gate logits). Legacy order-keyed entries carry empty paths.
    pub params: Checkpoint,
    /// Non-parameter layer state keyed by path (BatchNorm running
    /// statistics, activation-range EMAs). Legacy v1 snapshots stored
    /// bare buffers; those deserialize with empty paths and are applied
    /// positionally.
    #[serde(deserialize_with = "de_named_state")]
    pub layer_state: Vec<(String, Vec<f32>)>,
    /// Optimizer moments.
    pub optim: OptimState,
    /// Worker-thread count of the writing process (0 when unknown, e.g.
    /// a snapshot from an older format). Informational: the parallel
    /// runtime is deterministic, so resuming under a different count is
    /// safe and only triggers a warning.
    #[serde(default)]
    pub threads: usize,
}

/// Deserializes layer state from either the current named encoding
/// (`[["0.running_mean", [..]], ..]`) or the legacy v1 encoding of bare
/// buffers (`[[..], ..]`), which yields empty paths.
fn de_named_state<'de, D>(d: D) -> Result<Vec<(String, Vec<f32>)>, D::Error>
where
    D: serde::Deserializer<'de>,
{
    #[derive(Deserialize)]
    #[serde(untagged)]
    enum Repr {
        Named(Vec<(String, Vec<f32>)>),
        Legacy(Vec<Vec<f32>>),
    }
    Ok(match Repr::deserialize(d)? {
        Repr::Named(v) => v,
        Repr::Legacy(v) => v.into_iter().map(|s| (String::new(), s)).collect(),
    })
}

/// Collects every non-parameter state buffer of `model`, keyed by its
/// stable parameter path (e.g. `"1.running_mean"`).
pub fn capture_layer_state(model: &mut dyn Layer) -> Vec<(String, Vec<f32>)> {
    let mut out = Vec::new();
    model.visit_state_named(&mut csq_nn::ParamPath::root(), &mut |path, s| {
        out.push((path.to_string(), s.to_vec()));
    });
    out
}

/// Writes `state` (captured by [`capture_layer_state`]) back into
/// `model`. Buffers are applied in visitation order; when a saved entry
/// carries a path (v3 snapshots) it must match the model's path at that
/// position, so a renamed or reordered architecture is rejected by name.
///
/// # Errors
///
/// [`SnapshotError::StateMismatch`] when the buffer count or any buffer
/// length disagrees; [`SnapshotError::ConfigMismatch`] when a named
/// buffer's path disagrees with the model. The model is left unchanged
/// in either case.
pub fn restore_layer_state(
    model: &mut dyn Layer,
    state: &[(String, Vec<f32>)],
) -> Result<(), SnapshotError> {
    // Validate first so a failed restore never half-applies.
    let mut count = 0usize;
    let mut bad_len = false;
    let mut bad_path: Option<(String, String)> = None;
    model.visit_state_named(&mut csq_nn::ParamPath::root(), &mut |path, s| {
        if let Some((name, saved)) = state.get(count) {
            if saved.len() != s.len() {
                bad_len = true;
            }
            if !name.is_empty() && name != path && bad_path.is_none() {
                bad_path = Some((name.clone(), path.to_string()));
            }
        }
        count += 1;
    });
    if count != state.len() || bad_len {
        return Err(SnapshotError::StateMismatch {
            expected: state.len(),
            actual: count,
        });
    }
    if let Some((saved, model_path)) = bad_path {
        return Err(SnapshotError::ConfigMismatch {
            what: format!(
                "layer state buffer is `{saved}` in the snapshot but `{model_path}` in the model"
            ),
        });
    }
    let mut idx = 0usize;
    model.visit_state(&mut |s| {
        s.copy_from_slice(&state[idx].1);
        idx += 1;
    });
    Ok(())
}

impl TrainSnapshot {
    /// The snapshot format version this build writes.
    pub const VERSION: u32 = 3;

    /// Legacy format versions this build still reads (see the module
    /// docs' format history). v1 snapshots key everything by visitation
    /// order and restore bit-exactly through the positional compat path.
    pub const LEGACY_VERSIONS: &'static [u32] = &[1];

    /// Restores the snapshot's parameters and layer state into `model`.
    /// Does *not* re-freeze the bit mask — the trainer does that from the
    /// restored `m_B` logits when [`TrainSnapshot::mask_frozen`] says so.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the snapshot does not fit the model.
    pub fn restore_model(&self, model: &mut dyn Layer) -> Result<(), SnapshotError> {
        self.params.restore(model)?;
        restore_layer_state(model, &self.layer_state)
    }

    /// Serializes and writes the snapshot to `path` atomically with a
    /// CRC32 integrity header.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on serialization or filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let payload = serde_json::to_vec(self)?;
        persist::write_checksummed(path, &payload).map_err(PersistError::Io)?;
        Ok(())
    }

    /// Reads, verifies and parses a snapshot written by
    /// [`TrainSnapshot::save`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Persist`] on i/o failure, missing framing,
    /// truncation or checksum mismatch; [`SnapshotError::Json`] on a
    /// malformed payload; [`SnapshotError::VersionMismatch`] on a
    /// future/foreign format version.
    pub fn load(path: &Path) -> Result<TrainSnapshot, SnapshotError> {
        let payload = persist::read_checksummed(path)?;
        let snap: TrainSnapshot = serde_json::from_slice(&payload)?;
        if snap.version != Self::VERSION && !Self::LEGACY_VERSIONS.contains(&snap.version) {
            return Err(SnapshotError::VersionMismatch {
                found: snap.version,
                supported: Self::VERSION,
            });
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_nn::{BatchNorm2d, Layer, Linear, Sequential};
    use csq_tensor::Tensor;

    fn model() -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::with_float_weights(3, 4, 0)) as Box<dyn Layer>,
            Box::new(Linear::with_float_weights(4, 2, 1)),
        ])
    }

    fn snapshot_for(m: &mut dyn Layer) -> TrainSnapshot {
        TrainSnapshot {
            version: TrainSnapshot::VERSION,
            phase: TrainPhase::Csq,
            epochs_done: 3,
            total_epochs: 10,
            beta: 4.5,
            lr_scale: 1.0,
            seed: 7,
            mask_frozen: false,
            lambda: Some(0.3),
            target_bits: Some(3.0),
            history: Vec::new(),
            params: Checkpoint::capture(m),
            layer_state: capture_layer_state(m),
            optim: OptimState::Sgd { buffers: vec![] },
            threads: 1,
        }
    }

    #[test]
    fn save_load_round_trip_is_exact() {
        let mut m = model();
        let snap = snapshot_for(&mut m);
        let path = std::env::temp_dir().join("csq_resume_roundtrip.snap");
        snap.save(&path).unwrap();
        let back = TrainSnapshot::load(&path).unwrap();
        assert_eq!(back, snap, "bit-exact round trip");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let mut m = model();
        let snap = snapshot_for(&mut m);
        let path = std::env::temp_dir().join("csq_resume_corrupt.snap");
        snap.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = TrainSnapshot::load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Persist(PersistError::ChecksumMismatch { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let mut m = model();
        let snap = snapshot_for(&mut m);
        let path = std::env::temp_dir().join("csq_resume_trunc.snap");
        snap.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        let err = TrainSnapshot::load(&path).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Persist(PersistError::Truncated { .. })),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_gate_rejects_future_formats() {
        let mut m = model();
        let mut snap = snapshot_for(&mut m);
        snap.version = 99;
        let path = std::env::temp_dir().join("csq_resume_version.snap");
        snap.save(&path).unwrap();
        let err = TrainSnapshot::load(&path).unwrap_err();
        assert!(
            matches!(err, SnapshotError::VersionMismatch { found: 99, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn layer_state_round_trips_running_stats() {
        let mut bn = Sequential::new(vec![Box::new(BatchNorm2d::new(2)) as Box<dyn Layer>]);
        bn.forward(&Tensor::ones(&[2, 2, 3, 3]), true);
        let state = capture_layer_state(&mut bn);
        assert_eq!(state.len(), 2, "running mean + running var");
        assert_eq!(state[0].0, "0.running_mean");
        assert_eq!(state[1].0, "0.running_var");
        let mut fresh = Sequential::new(vec![Box::new(BatchNorm2d::new(2)) as Box<dyn Layer>]);
        restore_layer_state(&mut fresh, &state).unwrap();
        assert_eq!(capture_layer_state(&mut fresh), state);
    }

    #[test]
    fn layer_state_restore_rejects_mismatch() {
        let mut bn = Sequential::new(vec![Box::new(BatchNorm2d::new(2)) as Box<dyn Layer>]);
        let err =
            restore_layer_state(&mut bn, &[("0.running_mean".to_string(), vec![0.0; 2])])
                .unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::StateMismatch {
                    expected: 1,
                    actual: 2
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn layer_state_restore_rejects_wrong_path() {
        let mut bn = Sequential::new(vec![Box::new(BatchNorm2d::new(2)) as Box<dyn Layer>]);
        let err = restore_layer_state(
            &mut bn,
            &[
                ("0.running_var".to_string(), vec![0.0; 2]),
                ("0.running_mean".to_string(), vec![0.0; 2]),
            ],
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(err, SnapshotError::ConfigMismatch { .. }),
            "{msg}"
        );
        assert!(
            msg.contains("0.running_var") && msg.contains("0.running_mean"),
            "mismatch names both sides: {msg}"
        );
    }

    #[test]
    fn legacy_unnamed_layer_state_restores_positionally() {
        let mut bn = Sequential::new(vec![Box::new(BatchNorm2d::new(2)) as Box<dyn Layer>]);
        bn.forward(&Tensor::ones(&[2, 2, 3, 3]), true);
        let named = capture_layer_state(&mut bn);
        let legacy: Vec<(String, Vec<f32>)> = named
            .iter()
            .map(|(_, s)| (String::new(), s.clone()))
            .collect();
        let mut fresh = Sequential::new(vec![Box::new(BatchNorm2d::new(2)) as Box<dyn Layer>]);
        restore_layer_state(&mut fresh, &legacy).unwrap();
        assert_eq!(capture_layer_state(&mut fresh), named);
    }

    #[test]
    fn legacy_v1_snapshot_json_still_loads() {
        let mut m = model();
        let snap = snapshot_for(&mut m);
        // Rewrite the document into the v1 order-keyed shape: version 1,
        // bare state buffers, unnamed checkpoint entries under "params".
        let mut doc = serde_json::to_value(&snap).unwrap();
        doc["version"] = serde_json::json!(1);
        let state: Vec<serde_json::Value> = doc["layer_state"]
            .as_array()
            .unwrap()
            .iter()
            .map(|pair| pair[1].clone())
            .collect();
        doc["layer_state"] = serde_json::Value::Array(state);
        let tensors: Vec<serde_json::Value> = doc["params"]["entries"]
            .as_array()
            .unwrap()
            .iter()
            .map(|pair| pair[1].clone())
            .collect();
        doc["params"] = serde_json::json!({ "params": tensors });
        let back: TrainSnapshot = serde_json::from_value(doc).unwrap();
        assert_eq!(back.version, 1);
        assert!(TrainSnapshot::LEGACY_VERSIONS.contains(&back.version));
        let mut fresh = model();
        fresh.visit_params(&mut |p| p.value.fill(0.5));
        back.restore_model(&mut fresh).unwrap();
        assert_eq!(Checkpoint::capture(&mut fresh), snap.params);
    }

    #[test]
    fn restore_model_applies_params() {
        let mut a = model();
        let snap = snapshot_for(&mut a);
        let mut b = model();
        // Perturb b so restore has something to do.
        b.visit_params(&mut |p| p.value.fill(0.123));
        snap.restore_model(&mut b).unwrap();
        assert_eq!(Checkpoint::capture(&mut b), snap.params);
    }
}
