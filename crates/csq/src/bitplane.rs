//! Bit-plane native inference kernels: u64-packed AND/popcount matmul.
//!
//! CSQ's central representation (Eq. 3) is that a quantized weight *is* a
//! sum of bit planes: `w = s/(2^n−1) · Σ_b 2^b·(plane_b⁺ − plane_b⁻)`.
//! The integer kernels in [`crate::qinfer`] ignore that structure — they
//! multiply dense fixed-point codes element by element, paying the same
//! `i64`-multiply cost whether the learned precision is 2 bits or 8.
//! This module finally exploits the decomposition at inference time.
//!
//! # Kernel math
//!
//! Write the weight code as sign/magnitude planes and the (unsigned
//! 8-bit) activation code as its bit planes:
//!
//! ```text
//! w[o,k] = Σ_p ±2^p · W±p[o,k]        (W±p ∈ {0,1}, sign split per plane)
//! x[b,k] = Σ_q  2^q · Xq[b,k]         (Xq  ∈ {0,1}, q < 8)
//! ```
//!
//! then the integer dot product every quantized kernel computes factors
//! into pure bit arithmetic:
//!
//! ```text
//! Σ_k x[b,k]·w[o,k] = Σ_p Σ_q 2^(p+q) · ( |Xq ∧ W⁺p| − |Xq ∧ W⁻p| )
//! ```
//!
//! where `|·|` is `popcount` over the K axis. At pack time
//! ([`BitplaneWeight::from_packed`]) each weight plane is transposed into
//! K-dim bit-packed `u64` lanes, one packed matrix per *active*
//! plane×sign pair — planes with no set bit (CSQ's pruned planes) are
//! dropped entirely and cost literally nothing at run time. At run time
//! the activation codes of a row block are transposed into the same lane
//! layout and every output element becomes `passes × 8` AND+`popcount`
//! sweeps over `⌈K/64⌉` words: a 3-bit layer costs ~3 plane passes
//! instead of K dense multiplies.
//!
//! All accumulation is exact integer arithmetic, and the single
//! `acc as f32 * step_w·step_x` conversion at the end is the same
//! expression the dense kernels use — so the bit-plane kernels are
//! **bit-exact** against [`crate::qinfer::linear_integer`] and
//! [`crate::qinfer::conv2d_integer`] by construction (and by proptest).
//!
//! # Routine selection
//!
//! [`select_kernel`] adapts the workspace-wide selector's bit-serial
//! cost table ([`csq_tensor::selector::bit_serial`], measured on the
//! dense kernels this module competes with): packed panel GEMM for
//! batched inputs, a vecmat routine for batch-1, and a fall back to the
//! dense integer kernel where planes are dense or shapes are tiny. The
//! decision depends only on shapes and the packed plane structure —
//! never on timing — so serving stays deterministic.
//!
//! Row parallelism goes through [`csq_tensor::par`]: output chunks are a
//! function of the problem shape only and every chunk is an independent
//! exact integer reduction, so results are bit-identical at any thread
//! count.

use crate::pack::PackedWeight;
use crate::qinfer::{QinferError, QuantizedActivations};
use csq_tensor::conv::ConvSpec;
use csq_tensor::par::{self, ScratchPool};
use csq_tensor::Tensor;

/// Number of activation bit planes (activations are unsigned 8-bit
/// codes, so the activation side always has at most 8 planes). Shared
/// with the workspace-wide selector's bit-serial cost table.
pub const ACT_PLANES: usize = bit_serial::ACT_PLANES;

/// One packed weight plane×sign pass: the K-dim bit-packed lanes of a
/// single magnitude plane restricted to one code sign.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanePass {
    /// Magnitude-plane index `p`: this pass contributes `±2^p` per hit.
    pub shift: u32,
    /// Whether this pass subtracts (negative weight codes).
    pub negative: bool,
    /// Bit-packed lanes, row-major: `rows × words` u64 words; bit `k%64`
    /// of word `r·words + k/64` is plane bit `p` of `|codes[r,k]|` for
    /// codes of this sign.
    mask: Vec<u64>,
    /// Per output row: does this pass have any set bit in that row?
    /// Rows whose plane is empty are skipped without touching lanes.
    nonzero: Vec<bool>,
}

/// Why a packed weight could not be transposed into bit-plane lanes.
#[derive(Debug, Clone, PartialEq)]
pub enum BitplaneError {
    /// The weight tensor has no output axis or no reduction axis.
    DegenerateShape {
        /// The offending dims.
        dims: Vec<usize>,
    },
    /// `codes.len()` disagrees with the dims product (corrupt artifact).
    CodeCountMismatch {
        /// Elements implied by the dims.
        expected: usize,
        /// Codes actually present.
        actual: usize,
    },
}

impl std::fmt::Display for BitplaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitplaneError::DegenerateShape { dims } => {
                write!(f, "weight dims {dims:?} have no output or reduction axis")
            }
            BitplaneError::CodeCountMismatch { expected, actual } => {
                write!(
                    f,
                    "weight dims imply {expected} codes but {actual} are present"
                )
            }
        }
    }
}

impl std::error::Error for BitplaneError {}

/// A weight matrix transposed into u64-packed bit-plane lanes, ready for
/// AND/popcount matmul. Built once at artifact load/compile time from a
/// [`PackedWeight`]; immutable afterwards.
///
/// The reduction axis is everything after the first dim: a linear weight
/// `[OUT, IN]` packs `IN` per row; a conv weight `[OC, IC, KH, KW]`
/// packs `IC·KH·KW` per row (exactly the im2col patch layout).
#[derive(Debug, Clone, PartialEq)]
pub struct BitplaneWeight {
    /// Stable path of the source weight tensor.
    pub path: String,
    /// Output rows (dim 0 of the source weight).
    pub rows: usize,
    /// Reduction length (product of the remaining dims).
    pub k: usize,
    /// `⌈k/64⌉` — u64 words per packed row.
    pub words: usize,
    /// Grid step of the source codes (`float = code · step`).
    pub step: f32,
    /// Source weight dims (kept for kernel shape validation).
    pub dims: Vec<usize>,
    /// Active plane×sign passes, ascending `(shift, negative)` order.
    passes: Vec<PlanePass>,
    /// Magnitude planes spanned by the codes (`0` for an all-zero
    /// weight): `max |code| < 2^total_planes`.
    pub total_planes: usize,
    /// Plane×sign pairs dropped at pack time because no code used them —
    /// CSQ's pruned planes, which now cost nothing at run time.
    pub skipped_passes: usize,
}

impl BitplaneWeight {
    /// Transposes a packed weight's codes into bit-plane lanes.
    ///
    /// # Errors
    ///
    /// [`BitplaneError::DegenerateShape`] when the weight has no output
    /// or reduction axis; [`BitplaneError::CodeCountMismatch`] when the
    /// code count disagrees with the dims (corrupt artifact).
    pub fn from_packed(w: &PackedWeight) -> Result<BitplaneWeight, BitplaneError> {
        if w.dims.len() < 2 || w.dims.contains(&0) {
            return Err(BitplaneError::DegenerateShape {
                dims: w.dims.clone(),
            });
        }
        let rows = w.dims[0];
        let k: usize = w.dims[1..].iter().product();
        if w.codes.len() != rows * k {
            return Err(BitplaneError::CodeCountMismatch {
                expected: rows * k,
                actual: w.codes.len(),
            });
        }
        let words = k.div_ceil(64);
        let max_mag = w.codes.iter().map(|c| c.unsigned_abs()).max().unwrap_or(0);
        let total_planes = (32 - max_mag.leading_zeros()) as usize;

        let mut passes = Vec::new();
        let mut skipped_passes = 0usize;
        for shift in 0..total_planes as u32 {
            for negative in [false, true] {
                let mut mask = vec![0u64; rows * words];
                let mut nonzero = vec![false; rows];
                let mut any = false;
                for r in 0..rows {
                    let row = &w.codes[r * k..(r + 1) * k];
                    let dst = &mut mask[r * words..(r + 1) * words];
                    let mut hit = false;
                    for (kk, &c) in row.iter().enumerate() {
                        if (c < 0) != negative || c == 0 {
                            continue;
                        }
                        if (c.unsigned_abs() >> shift) & 1 == 1 {
                            dst[kk / 64] |= 1u64 << (kk % 64);
                            hit = true;
                        }
                    }
                    nonzero[r] = hit;
                    any |= hit;
                }
                if any {
                    passes.push(PlanePass {
                        shift,
                        negative,
                        mask,
                        nonzero,
                    });
                } else {
                    skipped_passes += 1;
                }
            }
        }
        Ok(BitplaneWeight {
            path: w.path.clone(),
            rows,
            k,
            words,
            step: w.step,
            dims: w.dims.clone(),
            passes,
            total_planes,
            skipped_passes,
        })
    }

    /// Number of active plane×sign passes (the per-output cost driver).
    pub fn pass_count(&self) -> usize {
        self.passes.len()
    }

    /// Reconstructs the original integer codes from the packed lanes
    /// (round-trip check: equals the source `PackedWeight::codes`).
    pub fn reconstruct_codes(&self) -> Vec<i32> {
        let mut codes = vec![0i32; self.rows * self.k];
        for pass in &self.passes {
            let contrib = 1i32 << pass.shift;
            for r in 0..self.rows {
                if !pass.nonzero[r] {
                    continue;
                }
                let row = &pass.mask[r * self.words..(r + 1) * self.words];
                for (wi, &word) in row.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let kk = wi * 64 + bits.trailing_zeros() as usize;
                        if pass.negative {
                            codes[r * self.k + kk] -= contrib;
                        } else {
                            codes[r * self.k + kk] += contrib;
                        }
                        bits &= bits - 1;
                    }
                }
            }
        }
        codes
    }

    /// Bytes held by the packed lanes (diagnostics).
    pub fn lane_bytes(&self) -> usize {
        self.passes.len() * self.rows * self.words * std::mem::size_of::<u64>()
    }
}

// ---------------------------------------------------------------------------
// Routine selection
// ---------------------------------------------------------------------------

/// Which bit-plane routine to run for a given problem shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routine {
    /// Batched panel GEMM: activation planes packed per row block, all
    /// outputs of a row computed together.
    PanelGemm,
    /// Batch-1 matrix–vector: one packed activation row, parallelism
    /// over output rows instead of batch rows.
    Vecmat,
}

impl Routine {
    /// Short name used in kernel profiles (`panel_gemm` / `vecmat`).
    pub fn name(self) -> &'static str {
        match self {
            Routine::PanelGemm => "panel_gemm",
            Routine::Vecmat => "vecmat",
        }
    }

    /// Name of the tiling blueprint both bit-plane routines run with
    /// (the u64 lane layout, [`csq_tensor::blueprint::LANES_U64`]).
    pub fn blueprint(self) -> &'static str {
        csq_tensor::blueprint::LANES_U64.name
    }

    /// The routine for a given GEMM row count: [`Routine::Vecmat`] for a
    /// single row, [`Routine::PanelGemm`] otherwise. Delegates to the
    /// workspace-wide selector's bit-serial table.
    pub fn for_batch(batch_rows: usize) -> Routine {
        match bit_serial::routine_for_rows(batch_rows) {
            bit_serial::BitSerialRoutine::Vecmat => Routine::Vecmat,
            bit_serial::BitSerialRoutine::PanelGemm => Routine::PanelGemm,
        }
    }
}

/// The kernel class a weighted op should run on, per the selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Run the u64 AND/popcount kernels with the given routine.
    Bitplane(Routine),
    /// Fall back to the dense integer kernel (planes too dense or shape
    /// too tiny for bit-serial arithmetic to win).
    Integer,
}

/// Which dense kernel the bit-plane class competes against — their cost
/// per multiply-accumulate differs enormously (the conv kernel is a
/// branchy scalar loop; the linear kernel auto-vectorizes), so the
/// selector must know which one it is displacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedOpKind {
    /// `conv2d_integer`: padded, strided scalar loops.
    Conv2d,
    /// `linear_integer`: contiguous dense dot products.
    Linear,
}

use csq_tensor::selector::bit_serial;

/// Deterministic shape×bit-width routine table: picks the kernel class
/// for one weighted op given the batch row count (`batch_rows` = im2col
/// rows for conv, batch size for linear) and the packed plane structure.
///
/// This is a thin adapter over
/// [`csq_tensor::selector::bit_serial::select`] — the cost table
/// (constants and comparison) lives in the workspace-wide selector next
/// to the float tables, so no kernel consumer carries a private cost
/// model. Everything is integer arithmetic on shapes — no timing
/// feedback — so the same op on the same shape always picks the same
/// routine.
pub fn select_kernel(kind: WeightedOpKind, batch_rows: usize, w: &BitplaneWeight) -> KernelChoice {
    let op = match kind {
        WeightedOpKind::Conv2d => bit_serial::BitSerialOp::Conv2d,
        WeightedOpKind::Linear => bit_serial::BitSerialOp::Linear,
    };
    let shape = bit_serial::BitSerialShape {
        batch_rows,
        out_rows: w.rows,
        k: w.k,
        words: w.words,
        passes: w.passes.len(),
    };
    match bit_serial::select(op, &shape).choice {
        bit_serial::BitSerialChoice::Bitplane(r) => KernelChoice::Bitplane(match r {
            bit_serial::BitSerialRoutine::PanelGemm => Routine::PanelGemm,
            bit_serial::BitSerialRoutine::Vecmat => Routine::Vecmat,
        }),
        bit_serial::BitSerialChoice::DenseInteger => KernelChoice::Integer,
    }
}

// ---------------------------------------------------------------------------
// Activation packing
// ---------------------------------------------------------------------------

/// Transposes `rows` activation-code rows (`k` u8 codes each) into
/// bit-plane lanes: `lanes[row][q][word]`, `ACT_PLANES·words` u64 per
/// row. Returns nothing; per-row plane occupancy is written to `occ`
/// (bit `q` set ⇔ some code in that row has bit `q`), so the kernels
/// skip activation planes that are empty for a whole row — small
/// activations never pay for their unused high planes.
fn pack_act_rows(
    codes: &[u8],
    rows: usize,
    k: usize,
    words: usize,
    lanes: &mut [u64],
    occ: &mut [u8],
) {
    debug_assert_eq!(lanes.len(), rows * ACT_PLANES * words);
    debug_assert_eq!(occ.len(), rows);
    lanes.fill(0);
    for r in 0..rows {
        let base = r * ACT_PLANES * words;
        let row = &codes[r * k..(r + 1) * k];
        let mut seen: u8 = 0;
        for (kk, &c) in row.iter().enumerate() {
            seen |= c;
            let mut bits = c;
            let word = kk / 64;
            let bit = 1u64 << (kk % 64);
            while bits != 0 {
                let q = bits.trailing_zeros() as usize;
                lanes[base + q * words + word] |= bit;
                bits &= bits - 1;
            }
        }
        occ[r] = seen;
    }
}

/// Exact integer dot products for one packed activation row against a
/// range of weight output rows: `out[j] = Σ_k x·w[col0+j]` as `i64`.
fn lanes_dot_cols(
    lanes: &[u64],
    occ: u8,
    w: &BitplaneWeight,
    col0: usize,
    ncols: usize,
    out: &mut [i64],
) {
    let words = w.words;
    out[..ncols].fill(0);
    for pass in &w.passes {
        for (j, acc) in out[..ncols].iter_mut().enumerate() {
            let oi = col0 + j;
            if !pass.nonzero[oi] {
                continue;
            }
            let wrow = &pass.mask[oi * words..(oi + 1) * words];
            let mut part: i64 = 0;
            for q in 0..ACT_PLANES {
                if occ & (1 << q) == 0 {
                    continue;
                }
                let xq = &lanes[q * words..(q + 1) * words];
                let mut hits: u64 = 0;
                for (a, b) in xq.iter().zip(wrow.iter()) {
                    hits += (a & b).count_ones() as u64;
                }
                part += (hits as i64) << q;
            }
            if pass.negative {
                *acc -= part << pass.shift;
            } else {
                *acc += part << pass.shift;
            }
        }
    }
}

/// Panel body: packs `nrows` activation rows from `codes` and writes
/// `nrows × w.rows` scaled f32 outputs. Serial — callers parallelize by
/// carving disjoint row ranges.
fn gemm_rows_into(
    codes: &[u8],
    row0: usize,
    nrows: usize,
    w: &BitplaneWeight,
    scale: f32,
    lanes_pool: &ScratchPool<u64>,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), nrows * w.rows);
    let (k, words) = (w.k, w.words);
    let mut lanes = lanes_pool.take(ACT_PLANES * words);
    let mut occ = [0u8; 1];
    let mut accs = vec![0i64; w.rows];
    for i in 0..nrows {
        let r = row0 + i;
        pack_act_rows(
            &codes[r * k..(r + 1) * k],
            1,
            k,
            words,
            &mut lanes,
            &mut occ,
        );
        lanes_dot_cols(&lanes, occ[0], w, 0, w.rows, &mut accs);
        for (o, &a) in out[i * w.rows..(i + 1) * w.rows]
            .iter_mut()
            .zip(accs.iter())
        {
            *o = a as f32 * scale;
        }
    }
    lanes_pool.give(lanes);
}

// ---------------------------------------------------------------------------
// Public kernels
// ---------------------------------------------------------------------------

/// Bit-plane fully-connected layer: bit-exact replacement for
/// [`crate::qinfer::linear_integer`] on the same operands.
///
/// `x` is `[B, IN]` quantized activations; `w` packs a `[OUT, IN]`
/// weight. Returns float `[B, OUT]`. `routine` comes from
/// [`select_kernel`]; `lanes` recycles the u64 packing buffers.
pub fn bitplane_linear(
    x: &QuantizedActivations,
    w: &BitplaneWeight,
    routine: Routine,
    lanes: &ScratchPool<u64>,
) -> Result<Tensor, QinferError> {
    if x.dims.len() != 2 {
        return Err(QinferError::BadRank {
            what: "activations",
            expected: 2,
            actual: x.dims.len(),
        });
    }
    if w.dims.len() != 2 {
        return Err(QinferError::BadRank {
            what: "weights",
            expected: 2,
            actual: w.dims.len(),
        });
    }
    let (b, inf) = (x.dims[0], x.dims[1]);
    if inf != w.k {
        return Err(QinferError::ShapeMismatch {
            what: "features",
            activation: inf,
            weight: w.k,
        });
    }
    let scale = w.step * x.step;
    let mut out = vec![0.0f32; b * w.rows];
    match routine {
        Routine::PanelGemm => {
            let per_row = w.pass_count() * ACT_PLANES * w.words * w.rows + w.k;
            let rows_per_task = par::chunk_len(b, per_row);
            par::par_chunks_mut(&mut out, rows_per_task * w.rows, |_t, start, chunk| {
                let row0 = start / w.rows;
                let nrows = chunk.len() / w.rows;
                gemm_rows_into(&x.codes, row0, nrows, w, scale, lanes, chunk);
            });
        }
        Routine::Vecmat => {
            // One packed activation row at a time (the selector picks
            // this routine for batch 1); tasks carve disjoint
            // output-column ranges of that row.
            let mut xl = lanes.take(ACT_PLANES * w.words);
            let mut occ = [0u8; 1];
            let cols_per_task = par::chunk_len(w.rows, w.pass_count() * ACT_PLANES * w.words + 1);
            for r in 0..b {
                pack_act_rows(
                    &x.codes[r * w.k..(r + 1) * w.k],
                    1,
                    w.k,
                    w.words,
                    &mut xl,
                    &mut occ,
                );
                let xl_ref: &[u64] = &xl;
                let occ0 = occ[0];
                par::par_chunks_mut(
                    &mut out[r * w.rows..(r + 1) * w.rows],
                    cols_per_task,
                    |_t, start, chunk| {
                        let mut accs = vec![0i64; chunk.len()];
                        lanes_dot_cols(xl_ref, occ0, w, start, chunk.len(), &mut accs);
                        for (o, &a) in chunk.iter_mut().zip(accs.iter()) {
                            *o = a as f32 * scale;
                        }
                    },
                );
            }
            lanes.give(xl);
        }
    }
    Ok(Tensor::from_vec(out, &[b, w.rows]))
}

/// Bit-plane 2-D convolution: bit-exact replacement for
/// [`crate::qinfer::conv2d_integer`] on the same operands.
///
/// Lowers the convolution to the bit-plane GEMM over im2col patch rows
/// (zero padding is code 0, which contributes no set bit), then
/// scatters the `[N·OH·OW, OC]` panel back to `[N, OC, OH, OW]`.
/// `scratch` recycles the u8 patch buffer, `lanes` the u64 lane
/// buffers.
pub fn bitplane_conv2d(
    x: &QuantizedActivations,
    w: &BitplaneWeight,
    spec: ConvSpec,
    scratch: &ScratchPool<u8>,
    lanes: &ScratchPool<u64>,
) -> Result<Tensor, QinferError> {
    if x.dims.len() != 4 {
        return Err(QinferError::BadRank {
            what: "activations",
            expected: 4,
            actual: x.dims.len(),
        });
    }
    if w.dims.len() != 4 {
        return Err(QinferError::BadRank {
            what: "weights",
            expected: 4,
            actual: w.dims.len(),
        });
    }
    let (n, ic, h, wd) = (x.dims[0], x.dims[1], x.dims[2], x.dims[3]);
    let (oc, wic, kh, kw) = (w.dims[0], w.dims[1], w.dims[2], w.dims[3]);
    if ic != wic {
        return Err(QinferError::ShapeMismatch {
            what: "channels",
            activation: ic,
            weight: wic,
        });
    }
    if kh != spec.kernel || kw != spec.kernel {
        return Err(QinferError::ShapeMismatch {
            what: "kernel",
            activation: spec.kernel,
            weight: kh.max(kw),
        });
    }
    let (oh, ow) = (spec.out_size(h), spec.out_size(wd));
    let m = n * oh * ow;
    let k = w.k;
    let scale = w.step * x.step;

    // 1. im2col the u8 codes, one patch row per output position, zero
    //    padding as code 0. Samples own disjoint contiguous ranges.
    let mut cols = scratch.take(m * k);
    par::par_chunks_mut(&mut cols, oh * ow * k, |ni, _start, sample| {
        let mut c = 0usize;
        for oi in 0..oh {
            for oj in 0..ow {
                for ici in 0..ic {
                    let xbase = (ni * ic + ici) * h * wd;
                    for ki in 0..kh {
                        let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                        if ii < 0 || ii >= h as isize {
                            for _ in 0..kw {
                                sample[c] = 0;
                                c += 1;
                            }
                            continue;
                        }
                        for kj in 0..kw {
                            let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                            sample[c] = if jj < 0 || jj >= wd as isize {
                                0
                            } else {
                                x.codes[xbase + ii as usize * wd + jj as usize]
                            };
                            c += 1;
                        }
                    }
                }
            }
        }
    });

    // 2. Panel GEMM over the patch rows.
    let mut panel = vec![0.0f32; m * oc];
    let per_row = w.pass_count() * ACT_PLANES * w.words * oc + k;
    let rows_per_task = par::chunk_len(m, per_row);
    {
        let cols_ref: &[u8] = &cols;
        par::par_chunks_mut(&mut panel, rows_per_task * oc, |_t, start, chunk| {
            let row0 = start / oc;
            let nrows = chunk.len() / oc;
            gemm_rows_into(cols_ref, row0, nrows, w, scale, lanes, chunk);
        });
    }
    scratch.give(cols);

    // 3. Scatter the `[m, oc]` panel into `[N, OC, OH, OW]`.
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let data = out.data_mut();
    let per = oh * ow;
    for ni in 0..n {
        for s in 0..per {
            let row = &panel[(ni * per + s) * oc..(ni * per + s + 1) * oc];
            for (oci, &v) in row.iter().enumerate() {
                data[(ni * oc + oci) * per + s] = v;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qinfer::{conv2d_integer, linear_integer};

    fn packed(dims: &[usize], codes: Vec<i32>, step: f32) -> PackedWeight {
        PackedWeight {
            path: "weight".to_string(),
            codes,
            step,
            dims: dims.to_vec(),
            bits: 8.0,
        }
    }

    fn seeded_codes(n: usize, hi: i32, seed: u64) -> Vec<i32> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % (2 * hi as u64 + 1)) as i32 - hi
            })
            .collect()
    }

    fn seeded_acts(dims: &[usize], seed: u64) -> QuantizedActivations {
        let n: usize = dims.iter().product();
        let mut s = seed | 1;
        QuantizedActivations {
            codes: (0..n)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s % 256) as u8
                })
                .collect(),
            step: 0.01,
            dims: dims.to_vec(),
        }
    }

    #[test]
    fn round_trip_reconstructs_codes() {
        let codes = seeded_codes(6 * 10, 200, 3);
        let pw = packed(&[6, 10], codes.clone(), 0.02);
        let bw = BitplaneWeight::from_packed(&pw).unwrap();
        assert_eq!(bw.reconstruct_codes(), codes);
        assert_eq!(bw.rows, 6);
        assert_eq!(bw.k, 10);
        assert_eq!(bw.words, 1);
        assert_eq!(bw.total_planes, 8);
    }

    #[test]
    fn all_zero_weight_has_no_passes_and_zero_output() {
        let pw = packed(&[3, 70], vec![0; 210], 0.1);
        let bw = BitplaneWeight::from_packed(&pw).unwrap();
        assert_eq!(bw.pass_count(), 0);
        assert_eq!(bw.total_planes, 0);
        let x = seeded_acts(&[2, 70], 5);
        let lanes = ScratchPool::new();
        let y = bitplane_linear(&x, &bw, Routine::PanelGemm, &lanes).unwrap();
        assert!(y.iter().all(|&v| v == 0.0));
        assert_eq!(
            select_kernel(WeightedOpKind::Linear, 2, &bw),
            KernelChoice::Bitplane(Routine::PanelGemm),
            "a fully pruned weight is always free on the bit-plane path"
        );
    }

    #[test]
    fn pruned_planes_are_skipped_at_pack_time() {
        // Codes only use plane 2 (value ±4): planes 0,1 are empty.
        let pw = packed(
            &[2, 8],
            vec![4, -4, 0, 4, 0, 0, -4, 4, 4, 4, -4, 0, 0, 4, 0, -4],
            0.1,
        );
        let bw = BitplaneWeight::from_packed(&pw).unwrap();
        assert_eq!(bw.total_planes, 3);
        assert_eq!(bw.pass_count(), 2, "one positive + one negative pass");
        assert_eq!(bw.skipped_passes, 4, "planes 0 and 1, both signs");
    }

    #[test]
    fn linear_matches_integer_kernel_bit_exactly() {
        for (b, inf, outf, hi, seed) in [
            (4usize, 70usize, 5usize, 255, 1u64),
            (1, 9, 7, 3, 2),
            (3, 130, 2, 7, 3),
        ] {
            let pw = packed(&[outf, inf], seeded_codes(outf * inf, hi, seed), 0.013);
            let bw = BitplaneWeight::from_packed(&pw).unwrap();
            let x = seeded_acts(&[b, inf], seed + 10);
            let lanes = ScratchPool::new();
            let dense = linear_integer(&x, &pw).unwrap();
            for routine in [Routine::PanelGemm, Routine::Vecmat] {
                if routine == Routine::Vecmat && b != 1 {
                    continue;
                }
                let y = bitplane_linear(&x, &bw, routine, &lanes).unwrap();
                assert_eq!(y.dims(), dense.dims());
                assert_eq!(
                    y.data(),
                    dense.data(),
                    "b={b} inf={inf} routine={routine:?}"
                );
            }
        }
    }

    #[test]
    fn conv_matches_integer_kernel_bit_exactly() {
        let pw = packed(&[4, 3, 3, 3], seeded_codes(4 * 27, 100, 9), 0.02);
        let bw = BitplaneWeight::from_packed(&pw).unwrap();
        let x = seeded_acts(&[2, 3, 6, 6], 11);
        let spec = ConvSpec::new(3, 1, 1);
        let dense = conv2d_integer(&x, &pw, spec).unwrap();
        let scratch = ScratchPool::new();
        let lanes = ScratchPool::new();
        let y = bitplane_conv2d(&x, &bw, spec, &scratch, &lanes).unwrap();
        assert_eq!(y.dims(), dense.dims());
        assert_eq!(y.data(), dense.data());
    }

    #[test]
    fn conv_strided_no_padding_matches() {
        let pw = packed(&[2, 2, 3, 3], seeded_codes(2 * 18, 7, 21), 0.05);
        let bw = BitplaneWeight::from_packed(&pw).unwrap();
        let x = seeded_acts(&[1, 2, 7, 7], 22);
        let spec = ConvSpec::new(3, 2, 0);
        let dense = conv2d_integer(&x, &pw, spec).unwrap();
        let y = bitplane_conv2d(&x, &bw, spec, &ScratchPool::new(), &ScratchPool::new()).unwrap();
        assert_eq!(y.data(), dense.data());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let pw = packed(&[16, 200], seeded_codes(16 * 200, 15, 31), 0.004);
        let bw = BitplaneWeight::from_packed(&pw).unwrap();
        let x = seeded_acts(&[40, 200], 33);
        let lanes = ScratchPool::new();
        let serial = par::with_threads(1, || {
            bitplane_linear(&x, &bw, Routine::PanelGemm, &lanes).unwrap()
        });
        let parallel = par::with_threads(4, || {
            bitplane_linear(&x, &bw, Routine::PanelGemm, &lanes).unwrap()
        });
        assert_eq!(serial.data(), parallel.data());
    }

    #[test]
    fn selector_prefers_bitplane_for_sparse_conv_and_dense_linear_falls_back() {
        // 2-bit conv weight, big reduction axis: bit-plane wins.
        let pw = packed(&[32, 32, 3, 3], seeded_codes(32 * 288, 3, 41), 0.1);
        let bw = BitplaneWeight::from_packed(&pw).unwrap();
        assert!(matches!(
            select_kernel(WeightedOpKind::Conv2d, 256, &bw),
            KernelChoice::Bitplane(Routine::PanelGemm)
        ));
        // The same structure against the vectorized linear kernel with a
        // small output head: the dense kernel keeps it.
        let pw_lin = packed(&[4, 128], seeded_codes(4 * 128, 255, 42), 0.1);
        let bw_lin = BitplaneWeight::from_packed(&pw_lin).unwrap();
        assert_eq!(
            select_kernel(WeightedOpKind::Linear, 8, &bw_lin),
            KernelChoice::Integer
        );
        // Batch-1 picks the vecmat routine when bit-plane is chosen.
        let pw_zero = packed(&[8, 64], vec![0; 512], 0.1);
        let bw_zero = BitplaneWeight::from_packed(&pw_zero).unwrap();
        assert_eq!(
            select_kernel(WeightedOpKind::Linear, 1, &bw_zero),
            KernelChoice::Bitplane(Routine::Vecmat)
        );
    }

    #[test]
    fn degenerate_weights_are_rejected() {
        let pw = packed(&[4], vec![0; 4], 0.1);
        assert!(matches!(
            BitplaneWeight::from_packed(&pw),
            Err(BitplaneError::DegenerateShape { .. })
        ));
        let mut bad = packed(&[2, 3], vec![0; 5], 0.1);
        bad.codes.truncate(5);
        assert!(matches!(
            BitplaneWeight::from_packed(&bad),
            Err(BitplaneError::CodeCountMismatch {
                expected: 6,
                actual: 5
            })
        ));
    }
}
