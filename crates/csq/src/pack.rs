//! Fixed-point packing of finalized quantized models.
//!
//! The paper's motivation (§I) for linear quantization is that the
//! resulting fixed-point representation "enables the use of fixed-point
//! arithmetic units". This module performs that last step: it converts a
//! finalized model's weights into integer codes plus one scale per layer,
//! verifying exactness on the way, and accounts the deployed model size
//! that the `Comp(×)` columns of the paper promise.

use csq_nn::Layer;
use serde::{Deserialize, Serialize};

/// Error produced when a model cannot be packed.
#[derive(Debug, Clone, PartialEq)]
pub enum PackError {
    /// A weight source exposes no quantization grid (e.g. a float layer).
    NotQuantized {
        /// Path of the offending weight tensor (e.g. `"4.main.0.weight"`).
        layer: String,
    },
    /// A weight source still has soft (β-relaxed) gates: the model is
    /// mid-training and has not been finalized, so its materialized
    /// weights do not lie on the quantization grid yet.
    GatesNotHard {
        /// Path of the offending weight tensor.
        layer: String,
    },
    /// A weight is not an exact integer multiple of the grid step — the
    /// model was not finalized.
    OffGrid {
        /// Path of the offending weight tensor.
        layer: String,
        /// The offending value.
        value: f32,
        /// The layer's grid step.
        step: f32,
    },
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::NotQuantized { layer } => {
                write!(
                    f,
                    "layer `{layer}` has no quantization grid (finalize the model first)"
                )
            }
            PackError::GatesNotHard { layer } => write!(
                f,
                "layer `{layer}` still has soft gates (mid-training); finalize the model before packing"
            ),
            PackError::OffGrid { layer, value, step } => write!(
                f,
                "layer `{layer}` weight {value} is not a multiple of step {step}"
            ),
        }
    }
}

impl std::error::Error for PackError {}

/// One layer's weights in fixed-point form: integer codes and the scale
/// that reconstructs floats as `code · step`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedWeight {
    /// Stable path of the source weight tensor. Empty in models packed
    /// before paths existed.
    #[serde(default)]
    pub path: String,
    /// Signed integer codes, one per weight element (row-major).
    pub codes: Vec<i32>,
    /// Grid step: `float = code · step`.
    pub step: f32,
    /// Weight tensor shape.
    pub dims: Vec<usize>,
    /// Assigned precision in bits (mask-selected bit count).
    pub bits: f32,
}

impl PackedWeight {
    /// Reconstructs the float weight tensor exactly.
    pub fn unpack(&self) -> csq_tensor::Tensor {
        csq_tensor::Tensor::from_vec(
            self.codes.iter().map(|&c| c as f32 * self.step).collect(),
            &self.dims,
        )
    }

    /// Storage for this layer's codes at its assigned precision, in
    /// bytes (bit-packed, rounded up, plus one f32 scale). Sign bits are
    /// part of the paper's signed-digit budget, so `bits` already covers
    /// them.
    pub fn size_bytes(&self) -> usize {
        let bits_total = (self.codes.len() as f32 * self.bits).ceil() as usize;
        bits_total.div_ceil(8) + std::mem::size_of::<f32>()
    }
}

/// A fully packed model: every quantized weight tensor as fixed-point
/// codes.
///
/// # Example
///
/// ```
/// use csq_core::{csq_factory, PackedModel};
/// use csq_nn::models::{resnet_cifar, ModelConfig};
/// use csq_nn::Layer;
///
/// let mut factory = csq_factory(8);
/// let mut model = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut factory, 1);
/// model.visit_weight_sources(&mut |s| s.finalize());
/// let packed = PackedModel::pack(&mut model)?;
/// assert!(packed.size_bytes() < packed.fp32_size_bytes());
/// # Ok::<(), csq_core::pack::PackError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedModel {
    /// Per-layer packed weights, in model order.
    pub layers: Vec<PackedWeight>,
}

impl PackedModel {
    /// Packs every weight source of a *finalized* model.
    ///
    /// # Errors
    ///
    /// [`PackError::NotQuantized`] if a layer exposes no grid step;
    /// [`PackError::GatesNotHard`] if a quantized layer's gates are still
    /// soft (a mid-training pack attempt — call `finalize` first);
    /// [`PackError::OffGrid`] if any weight is nonetheless not exactly on
    /// its grid.
    pub fn pack(model: &mut dyn Layer) -> Result<PackedModel, PackError> {
        let mut layers = Vec::new();
        let mut failure: Option<PackError> = None;
        model.visit_weight_sources_named(&mut csq_nn::ParamPath::root(), &mut |path, src| {
            if failure.is_some() {
                return;
            }
            let Some(step) = src.quant_step() else {
                failure = Some(PackError::NotQuantized {
                    layer: path.to_string(),
                });
                return;
            };
            if !src.is_finalized() {
                failure = Some(PackError::GatesNotHard {
                    layer: path.to_string(),
                });
                return;
            }
            let bits = src.precision().unwrap_or(32.0);
            let w = src.materialize();
            let mut codes = Vec::with_capacity(w.numel());
            for &v in w.iter() {
                let k = v / step;
                if (k - k.round()).abs() > 1e-2 {
                    failure = Some(PackError::OffGrid {
                        layer: path.to_string(),
                        value: v,
                        step,
                    });
                    return;
                }
                codes.push(k.round() as i32);
            }
            layers.push(PackedWeight {
                path: path.to_string(),
                codes,
                step,
                dims: w.dims().to_vec(),
                bits,
            });
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(PackedModel { layers }),
        }
    }

    /// Total deployed weight storage in bytes.
    pub fn size_bytes(&self) -> usize {
        self.layers.iter().map(PackedWeight::size_bytes).sum()
    }

    /// Storage of the same weights at FP32, in bytes.
    pub fn fp32_size_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.codes.len() * 4).sum()
    }

    /// Achieved compression versus FP32 storage (scales included). An
    /// empty model reports 1.0 (no storage either way) rather than a
    /// degenerate 0/0.
    pub fn compression(&self) -> f32 {
        let fp32 = self.fp32_size_bytes();
        if fp32 == 0 {
            return 1.0;
        }
        fp32 as f32 / self.size_bytes().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrep::{csq_factory, BitQuantizer, QuantMode};
    use csq_nn::models::{resnet_cifar, ModelConfig};
    use csq_nn::weight::float_factory;
    use csq_nn::{Linear, WeightSource};
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn finalized_model() -> csq_nn::Sequential {
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        m.visit_weight_sources(&mut |src| src.finalize());
        m
    }

    #[test]
    fn pack_unpack_is_exact() {
        let mut m = finalized_model();
        let packed = PackedModel::pack(&mut m).unwrap();
        let mut idx = 0usize;
        m.visit_weight_sources(&mut |src| {
            let w = src.materialize();
            let back = packed.layers[idx].unpack();
            assert!(back.approx_eq(&w, 1e-6), "layer {idx} reconstruction");
            idx += 1;
        });
        assert_eq!(idx, packed.layers.len());
    }

    #[test]
    fn packed_size_beats_fp32() {
        let mut m = finalized_model();
        let packed = PackedModel::pack(&mut m).unwrap();
        assert!(packed.size_bytes() < packed.fp32_size_bytes());
        // 8-bit planes everywhere -> roughly 4x, minus scale overhead.
        let comp = packed.compression();
        assert!(comp > 3.0 && comp <= 4.1, "compression {comp}");
    }

    #[test]
    fn float_model_is_rejected() {
        let mut fac = float_factory();
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        let err = PackedModel::pack(&mut m).unwrap_err();
        assert!(matches!(
            err,
            PackError::NotQuantized { ref layer } if layer == "0.weight"
        ));
        assert!(err.to_string().contains("finalize"));
        assert!(err.to_string().contains("0.weight"), "{err}");
    }

    #[test]
    fn unfinalized_quantizer_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w = init::uniform(&[6, 6], -1.0, 1.0, &mut rng);
        let mut q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
        q.set_beta(2.0); // soft gates: mid-training state
        let mut layer = Linear::new(Box::new(q), 6, 6, false);
        let err = PackedModel::pack(&mut layer).unwrap_err();
        assert!(matches!(
            err,
            PackError::GatesNotHard { ref layer } if layer == "weight"
        ));
        assert!(err.to_string().contains("finalize"), "{err}");
    }

    #[test]
    fn empty_model_compression_is_one() {
        let empty = PackedModel { layers: Vec::new() };
        assert_eq!(empty.size_bytes(), 0);
        assert_eq!(empty.fp32_size_bytes(), 0);
        assert_eq!(empty.compression(), 1.0);
    }

    #[test]
    fn packed_layers_carry_paths() {
        let mut m = finalized_model();
        let packed = PackedModel::pack(&mut m).unwrap();
        assert!(packed.layers.iter().all(|l| !l.path.is_empty()));
        assert_eq!(packed.layers[0].path, "0.weight");
    }

    #[test]
    fn size_accounting_matches_bit_math() {
        let pw = PackedWeight {
            path: "0.weight".to_string(),
            codes: vec![0; 100],
            step: 0.1,
            dims: vec![100],
            bits: 3.0,
        };
        // 300 bits -> 38 bytes + 4 scale.
        assert_eq!(pw.size_bytes(), 42);
        assert_eq!(PackedModel { layers: vec![pw] }.fp32_size_bytes(), 400);
    }

    #[test]
    fn serde_round_trip() {
        let mut m = finalized_model();
        let packed = PackedModel::pack(&mut m).unwrap();
        let json = serde_json::to_string(&packed).unwrap();
        let back: PackedModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, packed);
    }

    #[test]
    fn masked_bits_shrink_deployed_size() {
        // Prune the top 5 planes of every layer -> 3-bit codes.
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        m.visit_weight_sources(&mut |src| {
            src.apply_precision_reg(0.0); // no-op, just exercises the path
        });
        // Reach in through a fresh model at lower precision instead:
        // build uniform 3-bit and compare sizes.
        let mut fac3 = crate::bitrep::csq_uniform_factory(3);
        let mut m3 = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac3, 1);
        m.visit_weight_sources(&mut |src| src.finalize());
        m3.visit_weight_sources(&mut |src| src.finalize());
        let p8 = PackedModel::pack(&mut m).unwrap();
        let p3 = PackedModel::pack(&mut m3).unwrap();
        assert!(p3.size_bytes() < p8.size_bytes());
    }
}
