//! The temperature sigmoid gate and its exponential schedule (Eq. 2,
//! Figure 1a of the paper).

/// The continuous-sparsification gate `f_β(x) = σ(βx) = 1/(1 + e^{−βx})`.
///
/// As `β → ∞` this converges pointwise to the unit step `I(x ≥ 0)`
/// (with `f(0) = 0.5`), which is exactly how CSQ anneals its relaxations
/// into discrete bits.
///
/// # Example
///
/// ```
/// use csq_core::temp_sigmoid;
/// assert!((temp_sigmoid(0.0, 1.0) - 0.5).abs() < 1e-6);
/// assert!(temp_sigmoid(0.5, 200.0) > 0.999);
/// assert!(temp_sigmoid(-0.5, 200.0) < 0.001);
/// ```
#[inline]
pub fn temp_sigmoid(x: f32, beta: f32) -> f32 {
    1.0 / (1.0 + (-beta * x).exp())
}

/// Derivative of [`temp_sigmoid`] with respect to `x`:
/// `β·σ(βx)·(1 − σ(βx))`.
///
/// Taking `g = f_β(x)` as input avoids recomputing the sigmoid in hot
/// backward loops.
#[inline]
pub fn temp_sigmoid_grad(gate_value: f32, beta: f32) -> f32 {
    beta * gate_value * (1.0 - gate_value)
}

/// The hard gate `I(x ≥ 0)` that every relaxation converges to.
#[inline]
pub fn hard_gate(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Exponential temperature schedule `β(e) = β₀ · β_max^(e / (T−1))`
/// (Algorithm 1: β₀ = 1, β_max = 200, reached in the last epoch).
///
/// The exponent is normalized by `T − 1` so that `β(T−1) = β₀·β_max`
/// exactly, matching the paper's statement that the maximum temperature
/// "will be reached in the last epoch".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureSchedule {
    beta0: f32,
    beta_max: f32,
    total_epochs: usize,
    saturate: f32,
}

impl TemperatureSchedule {
    /// Creates a schedule over `total_epochs` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs == 0`, or either temperature is
    /// non-positive, or `beta_max < 1`.
    pub fn new(beta0: f32, beta_max: f32, total_epochs: usize) -> Self {
        assert!(total_epochs > 0, "schedule needs at least one epoch");
        assert!(beta0 > 0.0, "beta0 must be positive");
        assert!(beta_max >= 1.0, "beta_max must be at least 1");
        TemperatureSchedule {
            beta0,
            beta_max,
            total_epochs,
            saturate: 1.0,
        }
    }

    /// The paper's default schedule: `β₀ = 1`, `β_max = 200`.
    pub fn paper_default(total_epochs: usize) -> Self {
        Self::new(1.0, 200.0, total_epochs)
    }

    /// Reaches `β_max` after `frac` of the epochs and holds it there for
    /// the remainder. The paper's schedule hits β_max exactly in the last
    /// epoch (`frac = 1`); at reduced epoch counts a slightly earlier
    /// saturation (e.g. `frac = 0.75`) gives the model a few epochs to
    /// settle in the near-discrete regime before the hard finalization —
    /// the "proper scheduling of the gate function parameter" the paper
    /// leaves as a knob.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frac ≤ 1`.
    pub fn with_saturation(mut self, frac: f32) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "saturation must be in (0, 1]");
        self.saturate = frac;
        self
    }

    /// Temperature at a (0-based) epoch. Epochs past the end saturate at
    /// `β₀·β_max`.
    pub fn beta_at(&self, epoch: usize) -> f32 {
        if self.total_epochs == 1 {
            return self.beta0 * self.beta_max;
        }
        let span = ((self.total_epochs - 1) as f32 * self.saturate).max(1.0);
        let t = (epoch.min(self.total_epochs - 1) as f32 / span).min(1.0);
        self.beta0 * self.beta_max.powf(t)
    }

    /// The final (maximum) temperature.
    pub fn beta_final(&self) -> f32 {
        self.beta0 * self.beta_max
    }

    /// Number of epochs the schedule spans.
    pub fn total_epochs(&self) -> usize {
        self.total_epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basic_values() {
        assert!((temp_sigmoid(0.0, 7.0) - 0.5).abs() < 1e-7);
        assert!((temp_sigmoid(1.0, 1.0) - 0.731_058_6).abs() < 1e-5);
        // Symmetry: σ(−x) = 1 − σ(x).
        for &x in &[0.1f32, 0.5, 2.0] {
            assert!((temp_sigmoid(-x, 3.0) - (1.0 - temp_sigmoid(x, 3.0))).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_converges_to_step() {
        for &x in &[0.01f32, 0.1, 1.0] {
            assert!(temp_sigmoid(x, 1000.0) > 0.99);
            assert!(temp_sigmoid(-x, 1000.0) < 0.01);
        }
        assert_eq!(hard_gate(0.0), 1.0);
        assert_eq!(hard_gate(-1e-9), 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let beta = 5.0f32;
        for &x in &[-1.0f32, -0.2, 0.0, 0.3, 1.5] {
            let eps = 1e-3;
            let num = (temp_sigmoid(x + eps, beta) - temp_sigmoid(x - eps, beta)) / (2.0 * eps);
            let ana = temp_sigmoid_grad(temp_sigmoid(x, beta), beta);
            assert!((num - ana).abs() < 1e-3, "x={x}: {num} vs {ana}");
        }
    }

    #[test]
    fn gradient_peaks_at_origin() {
        let beta = 10.0;
        let g0 = temp_sigmoid_grad(temp_sigmoid(0.0, beta), beta);
        let g1 = temp_sigmoid_grad(temp_sigmoid(1.0, beta), beta);
        assert!(g0 > g1);
        assert!((g0 - beta / 4.0).abs() < 1e-4);
    }

    #[test]
    fn schedule_is_exponential_and_hits_max() {
        let s = TemperatureSchedule::paper_default(100);
        assert!((s.beta_at(0) - 1.0).abs() < 1e-6);
        assert!((s.beta_at(99) - 200.0).abs() < 1e-3);
        // Mid-point of an exponential: sqrt(200) ≈ 14.14 near epoch 49.5.
        let mid = s.beta_at(50);
        assert!(mid > 10.0 && mid < 20.0, "mid beta {mid}");
        // Monotone increasing.
        for e in 1..100 {
            assert!(s.beta_at(e) > s.beta_at(e - 1));
        }
    }

    #[test]
    fn schedule_saturates_past_end() {
        let s = TemperatureSchedule::paper_default(10);
        assert_eq!(s.beta_at(50), s.beta_final());
    }

    #[test]
    fn one_epoch_schedule_is_max() {
        let s = TemperatureSchedule::new(1.0, 200.0, 1);
        assert_eq!(s.beta_at(0), 200.0);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        TemperatureSchedule::new(1.0, 200.0, 0);
    }

    #[test]
    fn saturation_reaches_max_early_and_holds() {
        let s = TemperatureSchedule::paper_default(20).with_saturation(0.75);
        // ceil(19 * 0.75) ≈ 14.25 -> epoch 15 onward is at beta_max.
        assert!((s.beta_at(15) - 200.0).abs() < 1e-2);
        assert!((s.beta_at(19) - 200.0).abs() < 1e-2);
        // Earlier epochs are still below max and monotone.
        assert!(s.beta_at(7) < 200.0);
        for e in 1..20 {
            assert!(s.beta_at(e) >= s.beta_at(e - 1));
        }
    }

    #[test]
    fn saturation_one_matches_default() {
        let a = TemperatureSchedule::paper_default(50);
        let b = TemperatureSchedule::paper_default(50).with_saturation(1.0);
        for e in 0..50 {
            assert_eq!(a.beta_at(e), b.beta_at(e));
        }
    }

    #[test]
    #[should_panic(expected = "saturation must be in (0, 1]")]
    fn zero_saturation_rejected() {
        TemperatureSchedule::paper_default(10).with_saturation(0.0);
    }
}
