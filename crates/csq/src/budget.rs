//! Budget-aware model-size regularization (Eqs. 6–7 of the paper).
//!
//! The regularizer `λ·Δ_S·Σ_layers Σ_b f_β(m_B^(b))` is what turns CSQ's
//! relaxed bit masks into a *growing* scheme: `Δ_S` is the current average
//! precision minus the target, so the mask logits are pushed down when the
//! model is over budget, pushed **up** (grown) when under budget, and left
//! alone at the target.

use csq_nn::Layer;

/// Precision accounting for a model: element-weighted average bits and
/// per-layer breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionStats {
    /// Element-weighted average precision in bits. Full-precision layers
    /// count as 32 bits.
    pub avg_bits: f32,
    /// `(element count, bits)` per quantized weight tensor, in model
    /// order.
    pub per_layer: Vec<(usize, f32)>,
    /// Total weight elements accounted.
    pub total_elements: usize,
}

impl PrecisionStats {
    /// Weight compression ratio versus a 32-bit float model
    /// (the paper's `Comp(×)` column).
    pub fn compression_ratio(&self) -> f32 {
        if self.avg_bits <= 0.0 {
            f32::INFINITY
        } else {
            32.0 / self.avg_bits
        }
    }
}

/// Computes the current precision statistics of a model by visiting its
/// weight sources. Uses the paper's counting rule: each layer's precision
/// is `Σ_b [m_B^(b) ≥ 0]` (hard-gated), regardless of gate softness.
pub fn model_precision(model: &mut dyn Layer) -> PrecisionStats {
    let mut per_layer = Vec::new();
    let mut weighted = 0.0f64;
    let mut total = 0usize;
    model.visit_weight_sources(&mut |src| {
        let bits = src.precision().unwrap_or(32.0);
        let n = src.numel();
        per_layer.push((n, bits));
        weighted += bits as f64 * n as f64;
        total += n;
    });
    PrecisionStats {
        avg_bits: if total == 0 {
            0.0
        } else {
            (weighted / total as f64) as f32
        },
        per_layer,
        total_elements: total,
    }
}

/// How the budget regularizer counts the current model precision when
/// computing `Δ_S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountRule {
    /// The paper's rule: `Σ_b [m_B^(b) ≥ 0]` per layer (hard counting
    /// even while gates are soft).
    #[default]
    Hard,
    /// Ablation: the relaxed sum `Σ_b f_β(m_B^(b))` — a smoother control
    /// signal, but not what the paper specifies.
    Soft,
}

/// The budget-aware regularizer: applies `λ·Δ_S` to every layer's bit
/// mask each step.
#[derive(Debug, Clone, Copy)]
pub struct BudgetRegularizer {
    /// Base regularization strength λ (paper default 0.01).
    pub lambda: f32,
    /// Target element-weighted average precision in bits.
    pub target_bits: f32,
    /// Precision counting rule for `Δ_S`.
    pub count: CountRule,
}

impl BudgetRegularizer {
    /// Creates a regularizer with the paper's hard counting rule.
    ///
    /// # Panics
    ///
    /// Panics if λ is negative or the target is not positive.
    pub fn new(lambda: f32, target_bits: f32) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        assert!(target_bits > 0.0, "target precision must be positive");
        BudgetRegularizer {
            lambda,
            target_bits,
            count: CountRule::Hard,
        }
    }

    /// Switches to soft precision counting (ablation).
    pub fn with_soft_counting(mut self) -> Self {
        self.count = CountRule::Soft;
        self
    }

    /// Current `Δ_S` = average precision − target.
    pub fn delta_s(&self, model: &mut dyn Layer) -> f32 {
        let avg = match self.count {
            CountRule::Hard => model_precision(model).avg_bits,
            CountRule::Soft => {
                let mut weighted = 0.0f64;
                let mut total = 0usize;
                model.visit_weight_sources(&mut |src| {
                    let bits = src
                        .soft_precision()
                        .or_else(|| src.precision())
                        .unwrap_or(32.0);
                    weighted += bits as f64 * src.numel() as f64;
                    total += src.numel();
                });
                if total == 0 {
                    0.0
                } else {
                    (weighted / total as f64) as f32
                }
            }
        };
        avg - self.target_bits
    }

    /// Adds the regularization gradient `λ·Δ_S · ∂R/∂m_B` to every
    /// layer's mask logits. Returns the `Δ_S` used (for logging /
    /// Figures 2–3).
    pub fn apply(&self, model: &mut dyn Layer) -> f32 {
        let delta = self.delta_s(model);
        let strength = self.lambda * delta;
        model.visit_weight_sources(&mut |src| src.apply_precision_reg(strength));
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrep::{csq_factory, BitQuantizer, QuantMode};
    use csq_nn::models::{resnet_cifar, ModelConfig};
    use csq_nn::weight::float_factory;
    use csq_nn::{Linear, WeightSource};
    use csq_tensor::{init, Tensor};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn quantized_linear(bits: usize, seed: u64) -> Linear {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = init::uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let src = BitQuantizer::from_float(&w, bits, QuantMode::Csq);
        Linear::new(Box::new(src), 4, 4, false)
    }

    #[test]
    fn fp_model_counts_32_bits() {
        let mut fac = float_factory();
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        let stats = model_precision(&mut m);
        assert_eq!(stats.avg_bits, 32.0);
        assert!((stats.compression_ratio() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn csq_model_starts_at_full_bit_width() {
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        let stats = model_precision(&mut m);
        assert_eq!(stats.avg_bits, 8.0);
        assert!((stats.compression_ratio() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn average_is_element_weighted() {
        // Two layers, same element count, 8 and 2 bits -> average 5.
        let mut model = csq_nn::Sequential::new(vec![
            Box::new(quantized_linear(8, 0)) as Box<dyn csq_nn::Layer>,
            Box::new(quantized_linear(2, 1)),
        ]);
        let stats = model_precision(&mut model);
        assert!((stats.avg_bits - 5.0).abs() < 1e-6);
        assert_eq!(stats.per_layer.len(), 2);
        assert_eq!(stats.total_elements, 32);
    }

    #[test]
    fn delta_s_sign_matches_budget_state() {
        let mut fac = csq_factory(8);
        let mut m = resnet_cifar(ModelConfig::cifar_like(4, None, 0), &mut fac, 1);
        // Model starts at 8 bits everywhere.
        let over = BudgetRegularizer::new(0.01, 3.0);
        assert!(over.delta_s(&mut m) > 0.0, "over budget: positive Δ_S");
        let under = BudgetRegularizer::new(0.01, 10.0);
        assert!(under.delta_s(&mut m) < 0.0, "under budget: negative Δ_S");
        let exact = BudgetRegularizer::new(0.01, 8.0);
        assert!(exact.delta_s(&mut m).abs() < 1e-6, "at budget: zero Δ_S");
    }

    #[test]
    fn apply_pushes_mask_gradients_in_the_right_direction() {
        let mut layer = quantized_linear(8, 2);
        // Over budget: gradients positive (SGD will reduce logits = prune).
        let reg = BudgetRegularizer::new(0.1, 3.0);
        let d = reg.apply(&mut layer);
        assert!(d > 0.0);
        let mut grads = Vec::new();
        layer.visit_weight_sources(&mut |src| {
            // Reach the mask gradient through a backward-free probe: the
            // precision-reg already accumulated into grad_b; check via
            // visit_params (4th param is the mask).
            let mut idx = 0;
            src.visit_params(&mut |p| {
                if idx == 3 {
                    grads.extend_from_slice(p.grad.data());
                }
                idx += 1;
            });
        });
        assert!(!grads.is_empty());
        assert!(
            grads.iter().all(|&g| g > 0.0),
            "pruning pressure: {grads:?}"
        );
    }

    #[test]
    fn at_budget_no_pressure() {
        let mut layer = quantized_linear(8, 3);
        let reg = BudgetRegularizer::new(0.1, 8.0);
        reg.apply(&mut layer);
        let mut grads = Vec::new();
        layer.visit_weight_sources(&mut |src| {
            let mut idx = 0;
            src.visit_params(&mut |p| {
                if idx == 3 {
                    grads.extend_from_slice(p.grad.data());
                }
                idx += 1;
            });
        });
        assert!(grads.iter().all(|&g| g.abs() < 1e-7));
    }

    #[test]
    fn soft_counting_tracks_gate_values() {
        let mut layer = quantized_linear(8, 5);
        // Hard counting: all mask logits positive -> 8 bits exactly.
        let hard = BudgetRegularizer::new(0.1, 3.0);
        assert!((hard.delta_s(&mut layer) - 5.0).abs() < 1e-5);
        // Soft counting: σ of small positive logits is just above 0.5
        // per bit, so the soft average sits well below 8.
        let soft = BudgetRegularizer::new(0.1, 3.0).with_soft_counting();
        let d = soft.delta_s(&mut layer);
        assert!(d < 5.0, "soft Δ_S {d} must be below the hard 5.0");
        assert!(d > 0.0, "still above a 3-bit target");
    }

    #[test]
    fn soft_and_hard_agree_on_finalized_sources() {
        let mut layer = quantized_linear(8, 6);
        layer.visit_weight_sources(&mut |src| src.finalize());
        let hard = BudgetRegularizer::new(0.1, 3.0).delta_s(&mut layer);
        let soft = BudgetRegularizer::new(0.1, 3.0)
            .with_soft_counting()
            .delta_s(&mut layer);
        assert!((hard - soft).abs() < 1e-5);
    }

    #[test]
    fn compression_of_empty_model_is_infinite() {
        let stats = PrecisionStats {
            avg_bits: 0.0,
            per_layer: vec![],
            total_elements: 0,
        };
        assert!(stats.compression_ratio().is_infinite());
    }

    #[test]
    fn finalized_source_keeps_reported_precision() {
        let w = Tensor::from_vec(vec![0.1, -0.5, 0.9, 0.3], &[4]);
        let mut q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
        q.finalize();
        assert_eq!(q.precision(), Some(8.0));
    }
}
