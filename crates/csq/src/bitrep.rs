//! The bi-level bit-level weight parameterization (Eqs. 3–5 of the paper).
//!
//! A layer weight `W` with `n` bit planes is materialized as
//!
//! ```text
//! W_i = s / (2^n − 1) · Σ_b ( f_β(m_p[b,i]) − f_β(m_n[b,i]) ) · 2^b · f_β(m_B[b])
//! ```
//!
//! with trainables:
//!
//! * `s` — the per-layer scaling factor,
//! * `m_p, m_n` — per-element, per-bit logits of the positive/negative bit
//!   planes (level 1 of the bi-level sparsification),
//! * `m_B` — per-layer, per-bit selection logits (level 2; determines the
//!   layer precision `Σ_b [m_B^(b) ≥ 0]`).
//!
//! Every factor is smooth, so the gradient of the loss reaches all four
//! groups exactly — no straight-through estimation anywhere. As the
//! temperature β grows, the gates converge to unit steps and the weight
//! converges to an exactly quantized value; [`BitQuantizer::finalize`]
//! snaps the gates to hard steps at the end of training.

use crate::gate::{hard_gate, temp_sigmoid, temp_sigmoid_grad};
use csq_nn::{ParamMut, ParamPath, ParamRole, WeightSource};
use csq_tensor::{par, Tensor};

/// Whether the bit mask is searched (full CSQ) or fixed (the CSQ-Uniform
/// ablation of Table IV, Eq. 3: all configured bits always on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Bi-level CSQ: the per-layer bit mask `m_B` is trainable and the
    /// budget regularizer grows/prunes it (Eq. 5).
    Csq,
    /// Uniform precision: no mask; every configured bit is always
    /// selected (Eq. 3). Used by the CSQ-Uniform ablation rows.
    Uniform,
}

/// Granularity of the learnable scale `s`.
///
/// The paper uses one scalar per layer; per-output-channel scales (as in
/// HAWQ-V3-style deployments) reduce quantization error for layers whose
/// channel magnitudes differ widely, at the cost of one float per
/// channel. Exposed as a design-axis ablation; note that per-channel
/// parameterizations do not expose a single [`WeightSource::quant_step`],
/// so fixed-point packing currently requires per-layer scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScaleGranularity {
    /// One scale for the whole weight tensor (the paper's choice).
    #[default]
    PerLayer,
    /// One scale per output channel (`dims[0]`).
    PerChannel,
}

#[derive(Debug)]
struct Cache {
    /// Gate values σ(β·m_p), laid out `[bits][numel]`.
    gp: Vec<f32>,
    /// Gate values σ(β·m_n), laid out `[bits][numel]`.
    gn: Vec<f32>,
    /// Mask gate values σ(β·m_B), one per bit.
    gb: Vec<f32>,
    /// Per-element bit sums Σ_b (gp−gn)·2^b·gb (the weight before `s/(2^n−1)`).
    bitsum: Vec<f32>,
}

/// The CSQ weight parameterization, usable anywhere a
/// [`csq_nn::WeightSource`] is expected.
///
/// # Example
///
/// ```
/// use csq_core::{BitQuantizer, QuantMode};
/// use csq_nn::WeightSource;
/// use csq_tensor::Tensor;
///
/// let w0 = Tensor::from_vec(vec![0.5, -0.25, 0.75, -1.0], &[2, 2]);
/// let mut q = BitQuantizer::from_float(&w0, 8, QuantMode::Csq);
/// assert_eq!(q.precision(), Some(8.0)); // starts with all bits selected
///
/// q.finalize(); // gates become unit steps: exactly quantized
/// let step = q.quant_step().unwrap();
/// for &v in q.materialize().iter() {
///     let k = v / step;
///     assert!((k - k.round()).abs() < 1e-3);
/// }
/// ```
#[derive(Debug)]
pub struct BitQuantizer {
    dims: Vec<usize>,
    numel: usize,
    bits: usize,
    mode: QuantMode,
    /// Number of scale groups (1 per-layer; dims[0] per-channel).
    n_scales: usize,
    s: Tensor,
    grad_s: Tensor,
    m_p: Tensor,
    grad_p: Tensor,
    m_n: Tensor,
    grad_n: Tensor,
    m_b: Tensor,
    grad_b: Tensor,
    beta: f32,
    /// Finetune phase: the mask is a hard constant, only `s, m_p, m_n`
    /// receive gradients.
    mask_frozen: bool,
    frozen_mask: Vec<bool>,
    /// Finalized: every gate is a unit step; the weight is exactly
    /// quantized.
    hard: bool,
    cache: Option<Cache>,
}

/// Magnitude of the ± logits used when decomposing an initial float
/// weight into bit-plane logits. At β = 1, σ(±0.3) ≈ 0.57/0.43 — soft
/// enough for early optimization while still encoding the initial bit
/// pattern, and close enough to the gate boundary that training can flip
/// bits within the plastic phase of the temperature schedule.
const INIT_LOGIT: f32 = 0.3;
/// Base value of the initial bit-mask logits: positive, so training
/// starts from the full `n`-bit scheme and the budget regularizer prunes
/// (or re-grows) from there.
const INIT_MASK_BASE: f32 = 0.05;
/// Per-bit stagger of the initial mask logits: the MSB starts slightly
/// higher than the LSB. The budget regularizer applies the *same*
/// gradient to every mask logit of a layer, so without symmetry breaking
/// all bits would cross zero in the same step and the layer precision
/// would collapse 8 → 0 instead of shrinking gradually; the stagger makes
/// low-significance bits (whose removal the task loss defends least)
/// reach the gate boundary first, which is the equilibrium the loss
/// gradients would produce anyway at paper scale.
const INIT_MASK_STAGGER: f32 = 0.03;

impl BitQuantizer {
    /// Builds the parameterization from an initialized float weight: the
    /// scale becomes `max |w|`, the logits encode the `bits`-bit linear
    /// quantization of `w`, and (in [`QuantMode::Csq`]) every mask logit
    /// starts positive (all bits selected).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16` or `w` is empty.
    pub fn from_float(w: &Tensor, bits: usize, mode: QuantMode) -> Self {
        Self::with_granularity(w, bits, mode, ScaleGranularity::PerLayer)
    }

    /// Like [`from_float`](BitQuantizer::from_float) with an explicit
    /// scale granularity.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16`, `w` is empty, or a
    /// per-channel granularity is requested for a rank-0 tensor.
    pub fn with_granularity(
        w: &Tensor,
        bits: usize,
        mode: QuantMode,
        granularity: ScaleGranularity,
    ) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(w.numel() > 0, "cannot quantize an empty weight");
        let numel = w.numel();
        let levels = (1u32 << bits) - 1;
        let n_scales = match granularity {
            ScaleGranularity::PerLayer => 1,
            ScaleGranularity::PerChannel => {
                assert!(w.rank() >= 1, "per-channel scale needs rank >= 1");
                w.dims()[0]
            }
        };
        let chunk = numel / n_scales;
        let mut scales = vec![0.0f32; n_scales];
        for (g, sc) in scales.iter_mut().enumerate() {
            *sc = w.data()[g * chunk..(g + 1) * chunk]
                .iter()
                .fold(0.0f32, |m, &v| m.max(v.abs()))
                .max(1e-8);
        }

        let mut m_p = vec![-INIT_LOGIT; bits * numel];
        let mut m_n = vec![-INIT_LOGIT; bits * numel];
        for (i, &wi) in w.data().iter().enumerate() {
            let s = scales[i / chunk];
            let mag = ((wi.abs() / s) * levels as f32).round().min(levels as f32) as u32;
            for b in 0..bits {
                if (mag >> b) & 1 == 1 {
                    if wi >= 0.0 {
                        m_p[b * numel + i] = INIT_LOGIT;
                    } else {
                        m_n[b * numel + i] = INIT_LOGIT;
                    }
                }
            }
        }

        BitQuantizer {
            dims: w.dims().to_vec(),
            numel,
            bits,
            mode,
            n_scales,
            grad_s: Tensor::zeros(&[n_scales]),
            s: Tensor::from_vec(scales, &[n_scales]),
            m_p: Tensor::from_vec(m_p, &[bits * numel]),
            grad_p: Tensor::zeros(&[bits * numel]),
            m_n: Tensor::from_vec(m_n, &[bits * numel]),
            grad_n: Tensor::zeros(&[bits * numel]),
            m_b: Tensor::from_vec(
                (0..bits)
                    .map(|b| INIT_MASK_BASE + INIT_MASK_STAGGER * b as f32)
                    .collect(),
                &[bits],
            ),
            grad_b: Tensor::zeros(&[bits]),
            beta: 1.0,
            mask_frozen: false,
            frozen_mask: Vec::new(),
            hard: false,
            cache: None,
        }
    }

    /// Number of bit planes configured (the paper uses 8).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The quantization mode.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Current temperature β.
    pub fn beta(&self) -> f32 {
        self.beta
    }

    /// Current scale `s` (first group for per-channel granularity).
    pub fn scale(&self) -> f32 {
        self.s.data()[0]
    }

    /// All scale groups (length 1 for per-layer granularity).
    pub fn scales(&self) -> &[f32] {
        self.s.data()
    }

    /// Elements covered by each scale group.
    fn scale_chunk(&self) -> usize {
        self.numel / self.n_scales
    }

    /// Whether [`finalize`](WeightSource::finalize) has run.
    pub fn is_hard(&self) -> bool {
        self.hard
    }

    /// Whether the mask has been frozen for finetuning.
    pub fn is_mask_frozen(&self) -> bool {
        self.mask_frozen
    }

    /// The raw mask logits (testing/inspection).
    pub fn mask_logits(&self) -> &[f32] {
        self.m_b.data()
    }

    /// Overrides the initial mask logits with `base + stagger·b` for bit
    /// `b`. The default stagger breaks the symmetry between bits (see the
    /// constant documentation); `stagger = 0` reproduces the naive
    /// uniform initialization used by the ablation bench.
    ///
    /// # Panics
    ///
    /// Panics if the mask is already frozen.
    pub fn set_mask_init(&mut self, base: f32, stagger: f32) {
        assert!(!self.mask_frozen, "cannot re-init a frozen mask");
        for (b, v) in self.m_b.data_mut().iter_mut().enumerate() {
            *v = base + stagger * b as f32;
        }
    }

    fn mask_gate(&self, b: usize) -> f32 {
        match self.mode {
            QuantMode::Uniform => 1.0,
            QuantMode::Csq => {
                if self.mask_frozen {
                    if self.frozen_mask[b] {
                        1.0
                    } else {
                        0.0
                    }
                } else if self.hard {
                    hard_gate(self.m_b.data()[b])
                } else {
                    temp_sigmoid(self.m_b.data()[b], self.beta)
                }
            }
        }
    }

    /// Whether mask gradients flow (soft, searched mask).
    fn mask_trainable(&self) -> bool {
        self.mode == QuantMode::Csq && !self.mask_frozen && !self.hard
    }
}

impl WeightSource for BitQuantizer {
    fn materialize(&mut self) -> Tensor {
        let levels = ((1u32 << self.bits) - 1) as f32;
        let chunk = self.scale_chunk();
        let numel = self.numel;
        let bits = self.bits;

        // Reuse the previous step's cache buffers (every element is
        // rewritten below), so steady-state training allocates only the
        // output tensor.
        let (mut gp, mut gn, mut gb, mut bitsum) = match self.cache.take() {
            Some(c) if c.gp.len() == bits * numel => (c.gp, c.gn, c.gb, c.bitsum),
            _ => (
                vec![0.0f32; bits * numel],
                vec![0.0f32; bits * numel],
                vec![0.0f32; bits],
                vec![0.0f32; numel],
            ),
        };
        // Mask gates: one temperature sigmoid per *bit*, hoisted out of
        // the per-element loops below.
        for (b, g) in gb.iter_mut().enumerate() {
            *g = self.mask_gate(b);
        }

        let hard = self.hard;
        let beta = self.beta;
        let mp_all = self.m_p.data();
        let mn_all = self.m_n.data();
        let scales = self.s.data();
        let gb_ro: &[f32] = &gb;

        // Element-chunk × bit-plane partition: each task owns a fixed
        // element range across every bit plane, accumulating its bitsum
        // in ascending-bit order — the serial accumulation order, hence
        // bit-identical results at any thread count.
        let mut w = vec![0.0f32; numel];
        let elem_chunk = par::chunk_len(numel, 8 * bits);
        let n_tasks = numel.div_ceil(elem_chunk);
        let gp_sh = par::SharedSliceMut::new(&mut gp);
        let gn_sh = par::SharedSliceMut::new(&mut gn);
        let bs_sh = par::SharedSliceMut::new(&mut bitsum);
        let w_sh = par::SharedSliceMut::new(&mut w);
        par::for_each_task(n_tasks, |t| {
            let e0 = t * elem_chunk;
            let len = elem_chunk.min(numel - e0);
            // SAFETY: element range e0..e0+len belongs to task t alone,
            // in the flat buffers and in every bit plane.
            let bs = unsafe { bs_sh.slice_mut(e0, len) };
            let ws = unsafe { w_sh.slice_mut(e0, len) };
            bs.fill(0.0);
            for b in 0..bits {
                let base = b * numel + e0;
                let mp = &mp_all[base..base + len];
                let mn = &mn_all[base..base + len];
                // SAFETY: same disjoint element range, plane b.
                let gpb = unsafe { gp_sh.slice_mut(base, len) };
                let gnb = unsafe { gn_sh.slice_mut(base, len) };
                let pow = (1u32 << b) as f32 * gb_ro[b];
                // The hard/soft gate branch is hoisted out of the
                // element loop (it is constant for a whole step).
                if hard {
                    for i in 0..len {
                        let p = hard_gate(mp[i]);
                        let n = hard_gate(mn[i]);
                        gpb[i] = p;
                        gnb[i] = n;
                        bs[i] += (p - n) * pow;
                    }
                } else {
                    for i in 0..len {
                        let p = temp_sigmoid(mp[i], beta);
                        let n = temp_sigmoid(mn[i], beta);
                        gpb[i] = p;
                        gnb[i] = n;
                        bs[i] += (p - n) * pow;
                    }
                }
            }
            for i in 0..len {
                ws[i] = bs[i] * scales[(e0 + i) / chunk] / levels;
            }
        });
        self.cache = Some(Cache { gp, gn, gb, bitsum });
        Tensor::from_vec(w, &self.dims)
    }

    fn backward(&mut self, grad_weight: &Tensor) {
        assert_eq!(
            grad_weight.dims(),
            self.dims.as_slice(),
            "grad_weight shape mismatch"
        );
        let cache = match self.cache.as_ref() {
            Some(c) => c,
            None => panic!("BitQuantizer::backward called before materialize"),
        };
        let levels = ((1u32 << self.bits) - 1) as f32;
        let chunk = self.scale_chunk();
        let numel = self.numel;
        let dw = grad_weight.data();

        // ds_g = Σ_{i in group g} dW_i · bitsum_i / (2^n − 1)
        for g in 0..self.n_scales {
            let ds: f32 = dw[g * chunk..(g + 1) * chunk]
                .iter()
                .zip(cache.bitsum[g * chunk..(g + 1) * chunk].iter())
                .map(|(&gv, &b)| gv * b)
                .sum::<f32>()
                / levels;
            self.grad_s.data_mut()[g] += ds;
        }

        if self.hard {
            // After finalization only `s` remains meaningfully trainable;
            // hard gates have zero derivative everywhere.
            return;
        }

        let beta = self.beta;
        let mask_trainable = self.mask_trainable();
        let bits = self.bits;
        let scales = self.s.data();
        let grad_p_sh = par::SharedSliceMut::new(self.grad_p.data_mut());
        let grad_n_sh = par::SharedSliceMut::new(self.grad_n.data_mut());

        // Same element-chunk partition as materialize. Logit gradients
        // go to disjoint ranges; each task returns one mask-gradient
        // partial per bit, and the partials are folded in ascending task
        // order — a fixed, thread-count-independent reduction order.
        let elem_chunk = par::chunk_len(numel, 10 * bits);
        let n_tasks = numel.div_ceil(elem_chunk);
        let partials = par::par_map_collect(n_tasks, |t| {
            let e0 = t * elem_chunk;
            let len = elem_chunk.min(numel - e0);
            let mut mask_partial = vec![0.0f32; if mask_trainable { bits } else { 0 }];
            for b in 0..bits {
                let gb = cache.gb[b];
                let pow = (1u32 << b) as f32;
                let base = b * numel + e0;
                let gpb = &cache.gp[base..base + len];
                let gnb = &cache.gn[base..base + len];
                // SAFETY: element range e0..e0+len of plane b belongs to
                // task t alone.
                let grad_pb = unsafe { grad_p_sh.slice_mut(base, len) };
                let grad_nb = unsafe { grad_n_sh.slice_mut(base, len) };
                let mut mask_acc = 0.0f32;
                for i in 0..len {
                    let common = scales[(e0 + i) / chunk] / levels * pow;
                    let g = dw[e0 + i] * common;
                    // d/dm_p: s/(2^n−1)·2^b·gb·β·σ'(m_p)
                    grad_pb[i] += g * gb * temp_sigmoid_grad(gpb[i], beta);
                    grad_nb[i] -= g * gb * temp_sigmoid_grad(gnb[i], beta);
                    if mask_trainable {
                        mask_acc += g * (gpb[i] - gnb[i]);
                    }
                }
                if mask_trainable {
                    mask_partial[b] = mask_acc;
                }
            }
            mask_partial
        });
        if mask_trainable {
            for b in 0..bits {
                let total: f32 = partials.iter().map(|p| p[b]).sum();
                self.grad_b.data_mut()[b] += total * temp_sigmoid_grad(cache.gb[b], beta);
            }
        }
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        path.scoped("s", |p| {
            f(ParamMut::new(
                p.as_str(),
                ParamRole::QuantScale,
                &mut self.s,
                &mut self.grad_s,
            ))
        });
        path.scoped("m_p", |p| {
            f(ParamMut::new(
                p.as_str(),
                ParamRole::BitLogit,
                &mut self.m_p,
                &mut self.grad_p,
            ))
        });
        path.scoped("m_n", |p| {
            f(ParamMut::new(
                p.as_str(),
                ParamRole::BitLogit,
                &mut self.m_n,
                &mut self.grad_n,
            ))
        });
        if self.mode == QuantMode::Csq {
            // Always visited (stable parameter ordering for the
            // optimizer); gradients stay zero once the mask is frozen, so
            // a fresh optimizer leaves the logits untouched.
            path.scoped("m_b", |p| {
                f(ParamMut::new(
                    p.as_str(),
                    ParamRole::GateLogit,
                    &mut self.m_b,
                    &mut self.grad_b,
                ))
            });
        }
    }

    fn set_beta(&mut self, beta: f32) {
        assert!(beta > 0.0, "temperature must be positive");
        self.beta = beta;
    }

    fn precision(&self) -> Option<f32> {
        let p = match self.mode {
            QuantMode::Uniform => self.bits as f32,
            QuantMode::Csq => {
                if self.mask_frozen {
                    self.frozen_mask.iter().filter(|&&m| m).count() as f32
                } else {
                    // Paper's counting rule: Σ_b [m_B^(b) ≥ 0] even while
                    // the gates are soft (§III-B).
                    self.m_b.data().iter().filter(|&&m| m >= 0.0).count() as f32
                }
            }
        };
        Some(p)
    }

    fn numel(&self) -> usize {
        self.numel
    }

    fn finalize(&mut self) {
        self.hard = true;
        if self.mode == QuantMode::Csq && !self.mask_frozen {
            self.frozen_mask = self.m_b.data().iter().map(|&m| m >= 0.0).collect();
            self.mask_frozen = true;
        }
        self.cache = None;
    }

    fn is_finalized(&self) -> bool {
        // Soft (β-relaxed) gates materialize off-grid weights until
        // `finalize` hardens them.
        self.hard
    }

    fn quant_step(&self) -> Option<f32> {
        if self.n_scales != 1 {
            // Per-channel scales have no single grid step; fixed-point
            // packing requires per-layer granularity.
            return None;
        }
        let levels = ((1u32 << self.bits) - 1) as f32;
        Some(self.s.data()[0] / levels)
    }

    fn soft_precision(&self) -> Option<f32> {
        match self.mode {
            QuantMode::Uniform => Some(self.bits as f32),
            QuantMode::Csq => {
                if self.mask_frozen {
                    Some(self.frozen_mask.iter().filter(|&&m| m).count() as f32)
                } else {
                    Some(
                        self.m_b
                            .data()
                            .iter()
                            .map(|&m| temp_sigmoid(m, self.beta))
                            .sum(),
                    )
                }
            }
        }
    }

    fn bit_mask(&self) -> Option<Vec<bool>> {
        Some(match self.mode {
            QuantMode::Uniform => vec![true; self.bits],
            QuantMode::Csq => {
                if self.mask_frozen {
                    self.frozen_mask.clone()
                } else {
                    self.m_b.data().iter().map(|&m| m >= 0.0).collect()
                }
            }
        })
    }

    fn apply_precision_reg(&mut self, strength: f32) {
        if !self.mask_trainable() {
            return;
        }
        // d/dm_B [ strength · Σ_b f_β(m_B^(b)) ] = strength · β σ'(βm_B)
        for b in 0..self.bits {
            let g = temp_sigmoid(self.m_b.data()[b], self.beta);
            self.grad_b.data_mut()[b] += strength * temp_sigmoid_grad(g, self.beta);
        }
    }

    fn freeze_mask(&mut self) {
        if self.mode == QuantMode::Csq && !self.mask_frozen {
            self.frozen_mask = self.m_b.data().iter().map(|&m| m >= 0.0).collect();
            self.mask_frozen = true;
        }
    }
}

/// Factory producing full CSQ (bi-level) weight sources with `bits`
/// planes, for use with the model builders.
///
/// # Example
///
/// ```
/// use csq_core::csq_factory;
/// use csq_nn::models::{resnet_cifar, ModelConfig};
///
/// let mut factory = csq_factory(8);
/// let model = resnet_cifar(ModelConfig::cifar_like(4, Some(3), 0), &mut factory, 1);
/// drop(model);
/// ```
pub fn csq_factory(bits: usize) -> impl FnMut(Tensor) -> Box<dyn WeightSource> {
    move |w: Tensor| Box::new(BitQuantizer::from_float(&w, bits, QuantMode::Csq)) as _
}

/// Factory producing full CSQ sources with per-output-channel scales
/// (the [`ScaleGranularity::PerChannel`] design-axis ablation).
pub fn csq_factory_per_channel(bits: usize) -> impl FnMut(Tensor) -> Box<dyn WeightSource> {
    move |w: Tensor| {
        Box::new(BitQuantizer::with_granularity(
            &w,
            bits,
            QuantMode::Csq,
            ScaleGranularity::PerChannel,
        )) as _
    }
}

/// Factory producing CSQ sources whose mask logits are initialized as
/// `base + stagger·b`. Used by the ablation bench to compare the default
/// staggered initialization against the naive uniform one.
pub fn csq_factory_with_mask_init(
    bits: usize,
    base: f32,
    stagger: f32,
) -> impl FnMut(Tensor) -> Box<dyn WeightSource> {
    move |w: Tensor| {
        let mut q = BitQuantizer::from_float(&w, bits, QuantMode::Csq);
        q.set_mask_init(base, stagger);
        Box::new(q) as _
    }
}

/// Factory producing CSQ-Uniform sources (Eq. 3; fixed `bits`-bit
/// precision, no searched mask) — the CSQ-Uniform ablation of Table IV.
pub fn csq_uniform_factory(bits: usize) -> impl FnMut(Tensor) -> Box<dyn WeightSource> {
    move |w: Tensor| Box::new(BitQuantizer::from_float(&w, bits, QuantMode::Uniform)) as _
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rand_w(seed: u64, dims: &[usize]) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        init::uniform(dims, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn init_scale_is_max_abs() {
        let w = Tensor::from_vec(vec![0.5, -2.0, 1.0], &[3]);
        let q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
        assert!((q.scale() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn high_beta_materialization_approximates_source_weight() {
        // With β large, the materialized weight should be close to the
        // 8-bit quantization of the original (mask fully on).
        let w = rand_w(0, &[4, 4]);
        let mut q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
        q.set_beta(500.0);
        let m = q.materialize();
        let step = q.scale() / 255.0;
        for (a, b) in w.iter().zip(m.iter()) {
            assert!((a - b).abs() < step * 1.5, "{a} vs {b}");
        }
    }

    #[test]
    fn finalized_weight_lies_exactly_on_grid() {
        let w = rand_w(1, &[3, 5]);
        let mut q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
        q.finalize();
        let m = q.materialize();
        let step = q.scale() / 255.0;
        for &v in m.iter() {
            let k = v / step;
            assert!(
                (k - k.round()).abs() < 1e-3,
                "{v} is not an integer multiple of {step}"
            );
        }
    }

    #[test]
    fn uniform_mode_reports_fixed_precision() {
        let w = rand_w(2, &[4]);
        let q = BitQuantizer::from_float(&w, 3, QuantMode::Uniform);
        assert_eq!(q.precision(), Some(3.0));
        assert_eq!(q.bit_mask(), Some(vec![true; 3]));
    }

    #[test]
    fn csq_precision_counts_nonnegative_mask_logits() {
        let w = rand_w(3, &[4]);
        let mut q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
        assert_eq!(q.precision(), Some(8.0), "starts with all bits on");
        // Push three mask logits negative.
        q.m_b.data_mut()[5] = -1.0;
        q.m_b.data_mut()[6] = -0.01;
        q.m_b.data_mut()[7] = -2.0;
        assert_eq!(q.precision(), Some(5.0));
        assert_eq!(
            q.bit_mask().unwrap(),
            vec![true, true, true, true, true, false, false, false]
        );
    }

    #[test]
    fn masked_bits_do_not_contribute_after_finalize() {
        let w = rand_w(4, &[16]);
        let mut q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
        // Kill the top 5 bits: only bits 0..3 remain -> |W| ≤ s·7/255.
        for b in 3..8 {
            q.m_b.data_mut()[b] = -1.0;
        }
        q.finalize();
        let m = q.materialize();
        let bound = q.scale() * 7.0 / 255.0 + 1e-6;
        assert!(m.max_abs() <= bound, "{} > {bound}", m.max_abs());
    }

    /// The central claim: gradients through the full parameterization are
    /// exact. Check every parameter group against finite differences.
    #[test]
    fn backward_matches_finite_difference() {
        let w = rand_w(5, &[6]);
        let mut q = BitQuantizer::from_float(&w, 4, QuantMode::Csq);
        q.set_beta(3.0);
        let gy = rand_w(6, &[6]);

        q.materialize();
        q.backward(&gy);

        let eps = 1e-3f32;
        // Scale gradient.
        {
            let ana = q.grad_s.data()[0];
            q.s.data_mut()[0] += eps;
            let lp = q.materialize().dot(&gy);
            q.s.data_mut()[0] -= 2.0 * eps;
            let lm = q.materialize().dot(&gy);
            q.s.data_mut()[0] += eps;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "s: {num} vs {ana}"
            );
        }
        // m_p gradients (sample a few).
        for &idx in &[0usize, 7, 13, 23] {
            let ana = q.grad_p.data()[idx];
            q.m_p.data_mut()[idx] += eps;
            let lp = q.materialize().dot(&gy);
            q.m_p.data_mut()[idx] -= 2.0 * eps;
            let lm = q.materialize().dot(&gy);
            q.m_p.data_mut()[idx] += eps;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "m_p[{idx}]: {num} vs {ana}"
            );
        }
        // m_n gradients.
        for &idx in &[1usize, 11, 17] {
            let ana = q.grad_n.data()[idx];
            q.m_n.data_mut()[idx] += eps;
            let lp = q.materialize().dot(&gy);
            q.m_n.data_mut()[idx] -= 2.0 * eps;
            let lm = q.materialize().dot(&gy);
            q.m_n.data_mut()[idx] += eps;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "m_n[{idx}]: {num} vs {ana}"
            );
        }
        // Mask gradients.
        for b in 0..4 {
            let ana = q.grad_b.data()[b];
            q.m_b.data_mut()[b] += eps;
            let lp = q.materialize().dot(&gy);
            q.m_b.data_mut()[b] -= 2.0 * eps;
            let lm = q.materialize().dot(&gy);
            q.m_b.data_mut()[b] += eps;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "m_B[{b}]: {num} vs {ana}"
            );
        }
    }

    /// Materialize + backward are bit-identical at 1 and 4 threads, and
    /// cache-buffer reuse across repeated steps does not perturb results.
    #[test]
    fn parallel_matches_serial_bitexact() {
        let w = rand_w(40, &[4, 64]);
        let gy = rand_w(41, &[4, 64]);
        let run = || {
            let mut q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
            q.set_beta(3.0);
            let mut outs = Vec::new();
            for _ in 0..3 {
                outs.push(q.materialize());
                q.backward(&gy);
            }
            (
                outs,
                q.grad_s.data().to_vec(),
                q.grad_p.data().to_vec(),
                q.grad_n.data().to_vec(),
                q.grad_b.data().to_vec(),
            )
        };
        let serial = par::with_threads(1, run);
        let parallel = par::with_threads(4, run);
        for (a, b) in serial.0.iter().zip(parallel.0.iter()) {
            assert_eq!(a.data(), b.data());
        }
        assert_eq!(serial.1, parallel.1);
        assert_eq!(serial.2, parallel.2);
        assert_eq!(serial.3, parallel.3);
        assert_eq!(serial.4, parallel.4);
    }

    #[test]
    fn precision_reg_gradient_matches_finite_difference() {
        let w = rand_w(7, &[4]);
        let mut q = BitQuantizer::from_float(&w, 4, QuantMode::Csq);
        q.set_beta(2.0);
        let strength = 0.7f32;
        q.apply_precision_reg(strength);
        let reg = |q: &BitQuantizer| -> f32 {
            q.m_b
                .data()
                .iter()
                .map(|&m| strength * temp_sigmoid(m, q.beta))
                .sum()
        };
        let eps = 1e-3;
        for b in 0..4 {
            let ana = q.grad_b.data()[b];
            q.m_b.data_mut()[b] += eps;
            let rp = reg(&q);
            q.m_b.data_mut()[b] -= 2.0 * eps;
            let rm = reg(&q);
            q.m_b.data_mut()[b] += eps;
            let num = (rp - rm) / (2.0 * eps);
            assert!((num - ana).abs() < 1e-3, "bit {b}: {num} vs {ana}");
        }
    }

    #[test]
    fn negative_reg_strength_grows_bits() {
        // Δ_S < 0 (model below budget) must push mask logits upward.
        let w = rand_w(8, &[4]);
        let mut q = BitQuantizer::from_float(&w, 4, QuantMode::Csq);
        q.apply_precision_reg(-1.0);
        assert!(
            q.grad_b.data().iter().all(|&g| g < 0.0),
            "negative gradient on logits = SGD increases them (growth)"
        );
    }

    #[test]
    fn uniform_mode_ignores_reg_and_mask() {
        let w = rand_w(9, &[4]);
        let mut q = BitQuantizer::from_float(&w, 4, QuantMode::Uniform);
        q.apply_precision_reg(5.0);
        assert!(q.grad_b.data().iter().all(|&g| g == 0.0));
        let mut n_params = 0;
        q.visit_params(&mut |_| n_params += 1);
        assert_eq!(n_params, 3, "uniform mode exposes s, m_p, m_n only");
    }

    #[test]
    fn freeze_mask_fixes_precision_and_stops_mask_grads() {
        let w = rand_w(10, &[8]);
        let mut q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
        q.m_b.data_mut()[6] = -1.0;
        q.m_b.data_mut()[7] = -1.0;
        q.freeze_mask();
        assert!(q.is_mask_frozen());
        assert_eq!(q.precision(), Some(6.0));
        // Mask logits moving afterwards must not change the mask.
        q.m_b.data_mut()[6] = 5.0;
        assert_eq!(q.precision(), Some(6.0));
        // No mask gradient flows.
        q.materialize();
        q.backward(&Tensor::ones(&[8]));
        assert!(q.grad_b.data().iter().all(|&g| g == 0.0));
        // Representations still receive gradients.
        assert!(q.grad_p.data().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn hard_backward_only_updates_scale() {
        let w = rand_w(11, &[4]);
        let mut q = BitQuantizer::from_float(&w, 4, QuantMode::Csq);
        q.finalize();
        q.materialize();
        q.backward(&Tensor::ones(&[4]));
        assert!(q.grad_p.data().iter().all(|&g| g == 0.0));
        assert!(q.grad_n.data().iter().all(|&g| g == 0.0));
        assert!(q.grad_b.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn factories_produce_expected_modes() {
        let w = rand_w(12, &[2, 2]);
        let mut f1 = csq_factory(8);
        let src = f1(w.clone());
        assert_eq!(src.precision(), Some(8.0));
        let mut f2 = csq_uniform_factory(3);
        let src = f2(w);
        assert_eq!(src.precision(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=16")]
    fn zero_bits_rejected() {
        BitQuantizer::from_float(&Tensor::ones(&[2]), 0, QuantMode::Csq);
    }

    #[test]
    fn mask_init_is_staggered_by_default() {
        let q = BitQuantizer::from_float(&rand_w(20, &[4]), 8, QuantMode::Csq);
        let logits = q.mask_logits();
        for b in 1..8 {
            assert!(
                logits[b] > logits[b - 1],
                "MSB logits start above LSB logits: {logits:?}"
            );
        }
        assert!(logits.iter().all(|&m| m > 0.0), "all bits start selected");
    }

    #[test]
    fn set_mask_init_overrides_logits() {
        let mut q = BitQuantizer::from_float(&rand_w(21, &[4]), 4, QuantMode::Csq);
        q.set_mask_init(-0.2, 0.1);
        for (got, want) in q.mask_logits().iter().zip([-0.2f32, -0.1, 0.0, 0.1]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        assert_eq!(q.precision(), Some(2.0), "two logits are >= 0");
    }

    #[test]
    #[should_panic(expected = "cannot re-init a frozen mask")]
    fn set_mask_init_after_freeze_panics() {
        let mut q = BitQuantizer::from_float(&rand_w(22, &[4]), 4, QuantMode::Csq);
        q.freeze_mask();
        q.set_mask_init(0.1, 0.0);
    }

    #[test]
    fn soft_precision_below_hard_at_small_logits() {
        let mut q = BitQuantizer::from_float(&rand_w(23, &[4]), 8, QuantMode::Csq);
        q.set_beta(1.0);
        let hard = q.precision().unwrap();
        let soft = q.soft_precision().unwrap();
        assert_eq!(hard, 8.0);
        assert!(soft < hard, "soft {soft} < hard {hard} for logits near 0");
        assert!(soft > 4.0, "but above half for positive logits");
        // As beta grows, soft approaches hard.
        q.set_beta(500.0);
        let soft_hot = q.soft_precision().unwrap();
        assert!((soft_hot - hard).abs() < 0.05, "soft {soft_hot} -> hard");
    }

    #[test]
    fn per_channel_scales_follow_channel_maxima() {
        let w = Tensor::from_vec(vec![0.1, -0.2, 2.0, 1.0, 0.01, 0.02], &[3, 2]);
        let q = BitQuantizer::with_granularity(&w, 8, QuantMode::Csq, ScaleGranularity::PerChannel);
        let s = q.scales();
        assert_eq!(s.len(), 3);
        assert!((s[0] - 0.2).abs() < 1e-6);
        assert!((s[1] - 2.0).abs() < 1e-6);
        assert!((s[2] - 0.02).abs() < 1e-6);
        assert!(q.quant_step().is_none(), "no single grid step per layer");
    }

    #[test]
    fn per_channel_reduces_quantization_error_on_skewed_channels() {
        // One channel 100x larger than the other: a shared scale wastes
        // nearly all levels on the big channel.
        let mut data = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        data.extend(csq_tensor::init::uniform(&[32], -1.0, 1.0, &mut rng).into_vec());
        data.extend(csq_tensor::init::uniform(&[32], -0.01, 0.01, &mut rng).into_vec());
        let w = Tensor::from_vec(data, &[2, 32]);

        let mut per_layer = BitQuantizer::from_float(&w, 4, QuantMode::Csq);
        per_layer.finalize();
        let err_layer = per_layer.materialize().sub(&w).norm();

        let mut per_chan =
            BitQuantizer::with_granularity(&w, 4, QuantMode::Csq, ScaleGranularity::PerChannel);
        per_chan.finalize();
        let err_chan = per_chan.materialize().sub(&w).norm();
        assert!(
            err_chan < err_layer,
            "per-channel {err_chan} should beat per-layer {err_layer}"
        );
    }

    #[test]
    fn per_channel_gradients_match_finite_difference() {
        let w = rand_w(31, &[2, 4]);
        let mut q =
            BitQuantizer::with_granularity(&w, 4, QuantMode::Csq, ScaleGranularity::PerChannel);
        q.set_beta(3.0);
        let gy = rand_w(32, &[2, 4]);
        q.materialize();
        q.backward(&gy);
        let eps = 1e-3f32;
        for g in 0..2 {
            let ana = q.grad_s.data()[g];
            q.s.data_mut()[g] += eps;
            let lp = q.materialize().dot(&gy);
            q.s.data_mut()[g] -= 2.0 * eps;
            let lm = q.materialize().dot(&gy);
            q.s.data_mut()[g] += eps;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "scale {g}: {num} vs {ana}"
            );
        }
        // A representation logit in the second channel group.
        let idx = 6; // bit 0, element 6 -> channel 1
        let ana = q.grad_p.data()[idx];
        q.m_p.data_mut()[idx] += eps;
        let lp = q.materialize().dot(&gy);
        q.m_p.data_mut()[idx] -= 2.0 * eps;
        let lm = q.materialize().dot(&gy);
        q.m_p.data_mut()[idx] += eps;
        let num = (lp - lm) / (2.0 * eps);
        assert!(
            (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
            "{num} vs {ana}"
        );
    }

    #[test]
    fn per_channel_finalized_weights_on_channel_grids() {
        let w = rand_w(33, &[3, 8]);
        let mut q =
            BitQuantizer::with_granularity(&w, 8, QuantMode::Csq, ScaleGranularity::PerChannel);
        q.finalize();
        let m = q.materialize();
        for ch in 0..3 {
            let step = q.scales()[ch] / 255.0;
            for i in 0..8 {
                let v = m.data()[ch * 8 + i];
                let k = v / step;
                assert!((k - k.round()).abs() < 1e-2, "ch {ch}: {v} off {step}");
            }
        }
    }

    #[test]
    fn mask_init_factory_produces_requested_scheme() {
        let mut f = csq_factory_with_mask_init(8, -1.0, 0.0);
        let src = f(rand_w(24, &[6]));
        assert_eq!(src.precision(), Some(0.0), "all logits negative");
    }
}
