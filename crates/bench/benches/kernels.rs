//! Criterion micro-benchmarks of the numerical kernels underlying CSQ:
//! the temperature-sigmoid gate, bit-plane materialization and its
//! backward, and the conv2d forward/backward that dominates training
//! time.

use criterion::{criterion_group, criterion_main, Criterion};
use csq_core::prelude::*;
use csq_core::temp_sigmoid;
use csq_nn::WeightSource;
use csq_tensor::conv::{conv2d, conv2d_backward, ConvSpec};
use csq_tensor::init;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_gate(c: &mut Criterion) {
    let xs: Vec<f32> = (0..4096).map(|i| (i as f32) * 0.001 - 2.0).collect();
    c.bench_function("gate/temp_sigmoid_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in &xs {
                acc += temp_sigmoid(black_box(x), 14.0);
            }
            black_box(acc)
        })
    });
}

fn bench_bitrep(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    // A 16-channel 3x3 conv weight, the common case in the benchmarks.
    let w = init::kaiming_normal(&[16, 16, 3, 3], &mut rng);
    let gy = init::uniform(&[16, 16, 3, 3], -1.0, 1.0, &mut rng);

    let mut q = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
    q.set_beta(14.0);
    c.bench_function("bitrep/materialize_csq_2304x8", |b| {
        b.iter(|| black_box(q.materialize()))
    });
    c.bench_function("bitrep/backward_csq_2304x8", |b| {
        q.materialize();
        b.iter(|| q.backward(black_box(&gy)))
    });

    let mut qu = BitQuantizer::from_float(&w, 8, QuantMode::Uniform);
    qu.set_beta(14.0);
    c.bench_function("bitrep/materialize_uniform_2304x8", |b| {
        b.iter(|| black_box(qu.materialize()))
    });

    let mut qh = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
    qh.finalize();
    c.bench_function("bitrep/materialize_hard_2304x8", |b| {
        b.iter(|| black_box(qh.materialize()))
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let x = init::uniform(&[8, 16, 16, 16], -1.0, 1.0, &mut rng);
    let w = init::kaiming_normal(&[16, 16, 3, 3], &mut rng);
    let spec = ConvSpec::new(3, 1, 1);
    let y = conv2d(&x, &w, spec);
    let gy = init::uniform(y.dims(), -1.0, 1.0, &mut rng);

    c.bench_function("conv/forward_8x16x16x16_k3", |b| {
        b.iter(|| black_box(conv2d(black_box(&x), &w, spec)))
    });
    c.bench_function("conv/backward_8x16x16x16_k3", |b| {
        b.iter(|| black_box(conv2d_backward(black_box(&x), &w, &gy, spec)))
    });
}

fn bench_integer_inference(c: &mut Criterion) {
    use csq_core::pack::PackedModel;
    use csq_core::qinfer::{conv2d_integer, QuantizedActivations};
    use csq_nn::{Conv2d, Layer};

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let x = init::uniform(&[1, 16, 16, 16], 0.0, 1.0, &mut rng);
    let spec = ConvSpec::new(3, 1, 1);
    let w0 = init::kaiming_normal(&[16, 16, 3, 3], &mut rng);
    let mut q = BitQuantizer::from_float(&w0, 8, QuantMode::Csq);
    q.finalize();
    let w = q.materialize();
    let mut layer = Conv2d::new(Box::new(q), 16, 16, spec, false);
    let packed = PackedModel::pack(&mut layer).unwrap();
    let pw = packed.layers[0].clone();
    let xq = QuantizedActivations::quantize(&x).unwrap();

    c.bench_function("qinfer/conv_integer_16x16x16_k3", |b| {
        b.iter(|| black_box(conv2d_integer(black_box(&xq), &pw, spec).unwrap()))
    });
    c.bench_function("qinfer/conv_float_16x16x16_k3", |b| {
        b.iter(|| black_box(conv2d(black_box(&x), &w, spec)))
    });
    c.bench_function("qinfer/activation_quantize", |b| {
        b.iter(|| black_box(QuantizedActivations::quantize(black_box(&x))))
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let a = init::uniform(&[128, 256], -1.0, 1.0, &mut rng);
    let bm = init::uniform(&[256, 128], -1.0, 1.0, &mut rng);
    c.bench_function("matmul/128x256x128", |b| {
        b.iter(|| black_box(black_box(&a).matmul(&bm)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_gate, bench_bitrep, bench_conv, bench_matmul, bench_integer_inference
}
criterion_main!(kernels);
