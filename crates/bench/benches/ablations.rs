//! Criterion benchmarks of quantizer-cost ablations: how the
//! bit-plane materialization cost scales with the configured bit width,
//! and the cost of each lifecycle state (soft, mask-frozen, hard) —
//! the overhead dimensions a deployment of CSQ would care about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csq_core::prelude::*;
use csq_nn::WeightSource;
use csq_tensor::init;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_bits_scaling(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let w = init::kaiming_normal(&[16, 16, 3, 3], &mut rng);
    let mut group = c.benchmark_group("materialize_vs_bits");
    for bits in [2usize, 4, 8] {
        let mut q = BitQuantizer::from_float(&w, bits, QuantMode::Csq);
        q.set_beta(14.0);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| black_box(q.materialize()))
        });
    }
    group.finish();
}

fn bench_lifecycle_states(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let w = init::kaiming_normal(&[16, 16, 3, 3], &mut rng);
    let gy = init::uniform(&[16, 16, 3, 3], -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("quantizer_lifecycle");

    let mut soft = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
    soft.set_beta(14.0);
    group.bench_function("soft_fwd_bwd", |b| {
        b.iter(|| {
            let out = soft.materialize();
            soft.backward(&gy);
            black_box(out)
        })
    });

    let mut frozen = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
    frozen.set_beta(14.0);
    frozen.freeze_mask();
    group.bench_function("mask_frozen_fwd_bwd", |b| {
        b.iter(|| {
            let out = frozen.materialize();
            frozen.backward(&gy);
            black_box(out)
        })
    });

    let mut hard = BitQuantizer::from_float(&w, 8, QuantMode::Csq);
    hard.finalize();
    group.bench_function("hard_fwd", |b| b.iter(|| black_box(hard.materialize())));
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_bits_scaling, bench_lifecycle_states
}
criterion_main!(ablations);
