//! Criterion benchmarks of the deterministic parallel runtime at 1, 2 and
//! 4 worker threads, over the two hot paths it accelerates: a dense
//! matmul and one full CSQ training step (forward + backward + optimizer,
//! dominated by bit-level mask materialization and gradients).
//!
//! Because the runtime's chunk boundaries and reduction order are fixed
//! functions of tensor shape, every thread count produces bit-identical
//! results — these benchmarks measure wall-clock scaling only. On a
//! single-core host the 2- and 4-thread variants mostly measure pool
//! overhead; run on a multi-core machine to observe the speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use csq_core::prelude::*;
use csq_nn::models::{resnet_cifar, ModelConfig};
use csq_nn::{softmax_cross_entropy, Adam, Layer, Sequential, WeightSource};
use csq_tensor::{init, par, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_matmul(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = init::uniform(&[128, 256], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[256, 128], -1.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("matmul_128x256x128");
    for t in THREAD_COUNTS {
        group.bench_function(format!("threads_{t}"), |bench| {
            bench.iter(|| par::with_threads(t, || black_box(a.matmul(&b))))
        });
    }
    group.finish();
}

fn bench_csq_step(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let x = init::uniform(&[8, 3, 16, 16], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();

    fn step(model: &mut Sequential, opt: &mut Adam, x: &Tensor, labels: &[usize]) -> f32 {
        model.zero_grads();
        let logits = model.forward(x, true);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        model.backward(&grad);
        opt.step(model);
        loss
    }

    let cfg = ModelConfig::cifar_like(8, Some(3), 0);
    let mut group = c.benchmark_group("csq_train_step_resnet8");
    for t in THREAD_COUNTS {
        let mut factory = csq_factory(8);
        let mut model = resnet_cifar(cfg, &mut factory, 1);
        model.visit_weight_sources(&mut |s| s.set_beta(14.0));
        let mut opt = Adam::new(1e-2, 5e-4);
        let budget = BudgetRegularizer::new(0.3, 3.0);
        group.bench_function(format!("threads_{t}"), |bench| {
            bench.iter(|| {
                par::with_threads(t, || {
                    let loss = step(&mut model, &mut opt, &x, &labels);
                    budget.apply(&mut model);
                    black_box(loss)
                })
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = parallel_scaling;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_csq_step
}
criterion_main!(parallel_scaling);
