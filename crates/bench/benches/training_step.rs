//! Criterion benchmarks of one full training step (forward + backward +
//! optimizer) per method, supporting the paper's claim that CSQ finds its
//! mixed-precision scheme *within a single round of training* at a cost
//! comparable to ordinary QAT — no reinforcement-learning search, no
//! Hessian pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use csq_baselines::{bsq_factory, dorefa_factory, ste_uniform_factory};
use csq_core::prelude::*;
use csq_nn::models::{resnet_cifar, ModelConfig};
use csq_nn::weight::float_factory;
use csq_nn::{softmax_cross_entropy, Adam, Layer, Sequential, WeightSource};
use csq_tensor::{init, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn batch() -> (Tensor, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let x = init::uniform(&[8, 3, 16, 16], -1.0, 1.0, &mut rng);
    let labels = (0..8).map(|i| i % 10).collect();
    (x, labels)
}

fn step(model: &mut Sequential, opt: &mut Adam, x: &Tensor, labels: &[usize]) -> f32 {
    model.zero_grads();
    let logits = model.forward(x, true);
    let (loss, grad) = softmax_cross_entropy(&logits, labels);
    model.backward(&grad);
    opt.step(model);
    loss
}

fn bench_training_step(c: &mut Criterion) {
    let (x, labels) = batch();
    let cfg = ModelConfig::cifar_like(8, Some(3), 0);

    let mut group = c.benchmark_group("train_step_resnet8");
    let factories: Vec<(
        &str,
        Box<dyn FnMut(Tensor) -> Box<dyn WeightSource>>,
    )> = vec![
        ("fp", Box::new(float_factory())),
        ("ste_uniform_3b", Box::new(ste_uniform_factory(3))),
        ("dorefa_3b", Box::new(dorefa_factory(3))),
        ("bsq_8b", Box::new(bsq_factory(8, 5e-4, 4))),
        ("csq_8b", Box::new(csq_factory(8))),
    ];
    for (name, mut factory) in factories {
        let mut model = resnet_cifar(cfg, &mut factory, 1);
        model.visit_weight_sources(&mut |s| s.set_beta(14.0));
        let mut opt = Adam::new(1e-2, 5e-4);
        let budget = BudgetRegularizer::new(0.3, 3.0);
        let is_csq = name == "csq_8b";
        group.bench_function(name, |b| {
            b.iter(|| {
                let loss = step(&mut model, &mut opt, &x, &labels);
                if is_csq {
                    budget.apply(&mut model);
                }
                black_box(loss)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = training;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_training_step
}
criterion_main!(training);
