//! Regenerates **Table III** of the CSQ paper: ResNet-18 and ResNet-50 on
//! the ImageNet stand-in. CSQ rows use the full Algorithm 1 pipeline
//! including the mask-frozen finetuning phase (the paper's 200 + 100
//! epoch setup, scaled down).
//!
//! HAWQ-V3 and HAQ rows are `paper-reported` (Hessian pipeline / RL
//! search systems the paper itself only cites). The paper reports 8-bit
//! activations for the ImageNet CSQ models (4-bit for the T2 ResNet-18).
//!
//! ```text
//! cargo run -p csq-bench --release --bin table3 [-- --resume] [-- --summary]
//! ```
//!
//! `--resume` reuses completed rows from the campaign cache. `--summary`
//! prints a per-layer model map (path, kind, params, roles, bits) first.

use csq_bench::{emit_table, print_model_summaries, Arch, BenchScale, Campaign, Method, TableRow};

fn resnet_rows(arch: Arch, scale: &BenchScale, campaign: &Campaign, rows: &mut Vec<TableRow>) {
    let name = if arch == Arch::ResNet18 { "r18" } else { "r50" };
    let (fp_acc, dorefa, pact, lq, hawq, csq2, csq3) = if arch == Arch::ResNet18 {
        (
            69.76,
            (5usize, 6.40, 68.4),
            (4usize, 8.00, 69.2),
            (3usize, 10.67, 69.30),
            (8.00, 68.45),
            (15.23, 69.11),
            (10.67, 69.73),
        )
    } else {
        (
            76.13,
            (3usize, 10.67, 69.90),
            (3usize, 10.67, 75.30),
            (3usize, 10.67, 74.20),
            (8.00, 74.24),
            (14.54, 75.25),
            (10.67, 75.47),
        )
    };

    let fp = campaign.method(&format!("{name}-fp"), arch, Method::Fp, None, scale);
    rows.push(TableRow::measured(name, &fp, Some(1.00), Some(fp_acc)));

    let r = campaign.method(
        &format!("{name}-dorefa"),
        arch,
        Method::Dorefa { bits: dorefa.0 },
        Some(8),
        scale,
    );
    rows.push(TableRow::measured(name, &r, Some(dorefa.1), Some(dorefa.2)));

    let r = campaign.method(
        &format!("{name}-pact"),
        arch,
        Method::Pact { bits: pact.0 },
        Some(8),
        scale,
    );
    rows.push(TableRow::measured(name, &r, Some(pact.1), Some(pact.2)));

    let r = campaign.method(
        &format!("{name}-lq"),
        arch,
        Method::Lq { bits: lq.0 },
        Some(8),
        scale,
    );
    rows.push(TableRow::measured(name, &r, Some(lq.1), Some(lq.2)));

    rows.push(TableRow::paper_only(
        name,
        "HAWQ-V3",
        "4",
        Some(hawq.0),
        hawq.1,
    ));

    if arch == Arch::ResNet50 {
        rows.push(TableRow::paper_only(name, "HAQ", "MP", Some(10.57), 75.30));
        let r = campaign.method(&format!("{name}-bsq"), arch, Method::Bsq, Some(8), scale);
        rows.push(TableRow::measured(name, &r, Some(13.90), Some(75.16)));
    }

    let act2 = if arch == Arch::ResNet18 {
        Some(4)
    } else {
        Some(8)
    };
    let r = campaign.method(
        &format!("{name}-csq-t2"),
        arch,
        Method::Csq {
            target: 2.0,
            finetune: true,
        },
        act2,
        scale,
    );
    rows.push(TableRow::measured(name, &r, Some(csq2.0), Some(csq2.1)));

    let r = campaign.method(
        &format!("{name}-csq-t3"),
        arch,
        Method::Csq {
            target: 3.0,
            finetune: true,
        },
        Some(8),
        scale,
    );
    rows.push(TableRow::measured(name, &r, Some(csq3.0), Some(csq3.1)));
}

fn main() {
    let mut scale = BenchScale::from_env();
    // ResNet-50 costs ~15x a ResNet-20 run; this table trims the scale
    // (single repetition, fewer samples/epochs) to stay single-core
    // feasible. Env overrides (CSQ_*) still apply on top.
    scale.seeds = 1;
    scale.train_per_class = (scale.train_per_class * 2 / 3).max(4);
    scale.epochs = (scale.epochs * 4 / 5).max(4);
    scale.finetune_epochs = (scale.finetune_epochs / 2).max(2);
    eprintln!("table3: ResNet-18/50 / ImageNet-like, scale {scale:?}");
    print_model_summaries(&[Arch::ResNet18, Arch::ResNet50], &scale);
    let campaign = Campaign::from_args("table3");
    let mut rows = Vec::new();
    resnet_rows(Arch::ResNet18, &scale, &campaign, &mut rows);
    resnet_rows(Arch::ResNet50, &scale, &campaign, &mut rows);
    emit_table(
        "table3",
        "Table III: ResNet-18 and ResNet-50 on ImageNet (stand-in); A-Bits column shows the model family (r18/r50)",
        &rows,
    );
}
