//! Regenerates **Figure 3** of the CSQ paper: averaged model precision
//! during training under different target precisions (1–5 bit),
//! ResNet-20 with 3-bit activations.
//!
//! The paper's shape to reproduce: each trajectory tracks close to its
//! target throughout training and converges to it by the last epoch.
//!
//! ```text
//! cargo run -p csq-bench --release --bin fig3
//! ```

use csq_bench::{write_results, Arch, BenchScale};
use csq_core::prelude::*;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TargetSeries {
    target: f32,
    bits_per_epoch: Vec<f32>,
    final_bits: f32,
    final_acc: f32,
}

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("fig3: target sweep, scale {scale:?}");
    let mut series = Vec::new();
    for target in [1.0f32, 2.0, 3.0, 4.0, 5.0] {
        let data = Arch::ResNet20.dataset(&scale);
        let mut factory = csq_factory(8);
        let mut model = Arch::ResNet20.build(
            &scale,
            Some(3),
            csq_nn::activation::ActMode::Uniform,
            &mut factory,
        );
        let cfg = CsqConfig::fast(target)
            .with_epochs(scale.epochs)
            .with_seed(scale.seed);
        let report = CsqTrainer::new(cfg).train(&mut model, &data);
        let bits: Vec<f32> = report.history.iter().map(|h| h.avg_bits).collect();
        println!(
            "target={target}: final {:.2} bits, acc {:.2}% | {}",
            report.final_avg_bits,
            report.final_test_accuracy * 100.0,
            bits.iter()
                .map(|b| format!("{b:.1}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        series.push(TargetSeries {
            target,
            bits_per_epoch: bits,
            final_bits: report.final_avg_bits,
            final_acc: report.final_test_accuracy,
        });
    }
    let hit = series
        .iter()
        .filter(|s| (s.final_bits - s.target).abs() <= 0.5)
        .count();
    println!("\n{hit}/5 targets hit within 0.5 bit (paper: all converge on target)");
    write_results("fig3", &series);
}
