//! Regenerates **Figure 3** of the CSQ paper: averaged model precision
//! during training under different target precisions (1–5 bit),
//! ResNet-20 with 3-bit activations.
//!
//! The paper's shape to reproduce: each trajectory tracks close to its
//! target throughout training and converges to it by the last epoch.
//!
//! ```text
//! cargo run -p csq-bench --release --bin fig3 [-- --resume]
//! ```
//!
//! `--resume` reuses completed target runs from the campaign cache.

use csq_bench::{write_results, Arch, BenchScale, Campaign};
use csq_core::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct TargetSeries {
    target: f32,
    bits_per_epoch: Vec<f32>,
    final_bits: f32,
    final_acc: f32,
}

fn main() {
    let scale = BenchScale::from_env();
    let campaign = Campaign::from_args("fig3");
    eprintln!("fig3: target sweep, scale {scale:?}");
    // Record the per-epoch telemetry series (loss, avg bits, gate
    // sparsity, per-layer bits) through the shared registry; the full
    // snapshot is exported next to the figure data below.
    csq_core::set_telemetry(true);
    let mut series = Vec::new();
    for target in [1.0f32, 2.0, 3.0, 4.0, 5.0] {
        let s = campaign.run(&format!("target-{target}"), || {
            let data = Arch::ResNet20.dataset(&scale);
            let mut factory = csq_factory(8);
            let mut model = Arch::ResNet20.build(
                &scale,
                Some(3),
                csq_nn::activation::ActMode::Uniform,
                &mut factory,
            );
            let cfg = CsqConfig::fast(target)
                .with_epochs(scale.epochs)
                .with_seed(scale.seed);
            let report = CsqTrainer::new(cfg)
                .train(&mut model, &data)
                .unwrap_or_else(|e| panic!("target {target} training failed: {e}"));
            TargetSeries {
                target,
                bits_per_epoch: report.history.iter().map(|h| h.avg_bits).collect(),
                final_bits: report.final_avg_bits,
                final_acc: report.final_test_accuracy,
            }
        });
        println!(
            "target={target}: final {:.2} bits, acc {:.2}% | {}",
            s.final_bits,
            s.final_acc * 100.0,
            s.bits_per_epoch
                .iter()
                .map(|b| format!("{b:.1}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        series.push(s);
    }
    let hit = series
        .iter()
        .filter(|s| (s.final_bits - s.target).abs() <= 0.5)
        .count();
    println!("\n{hit}/5 targets hit within 0.5 bit (paper: all converge on target)");
    write_results("fig3", &series);
    write_results("fig3_telemetry", &csq_obs::global_registry().snapshot());
}
