//! Closed-loop load test of the `csq-serve` deployment path and writes
//! the report to `bench_results/BENCH_serve.json`.
//!
//! End to end: trains a small CSQ model, exports it to a `.csqm`
//! artifact (packed weights + folded constants + calibrated activation
//! grids), reloads the artifact from disk, and serves it through the
//! micro-batching [`Engine`] under a closed loop of concurrent clients.
//! Reported: sustained throughput, latency percentiles (p50/p95/p99),
//! the batch-size histogram (demonstrating fused batches > 1), accuracy
//! parity between the integer engine and the float reference path, and
//! a bit-identity probe of batched versus single-request answers.
//!
//! ```text
//! cargo run -p csq-bench --release --bin serve
//! ```
//!
//! After the closed loop, an **overload sweep** offers open-loop load
//! at multiples of the measured closed-loop capacity (0.5×, 1×, 2×,
//! 4×) against a fresh engine with a deliberately small queue, and
//! records the latency and shed-rate curve — the degradation profile
//! under admission control. Every overload submission carries a
//! deadline, so the sweep cannot hang no matter how saturated the
//! engine gets.
//!
//! After the overload sweep, a **bit-width sweep** packs the same
//! architecture at uniform 8/4/3/2 bits and times the integer,
//! bit-plane, and auto-selected kernel paths, verifying bit-exactness
//! at every width — the latency-vs-precision curve the bit-serial
//! kernels exist for.
//!
//! Finally, the bit-width artifacts become a **model fleet**: each is
//! saved as `bench_results/fleet_registry/resnet<bits>b-v1.csqm`, the
//! registry is scanned back, and an open-loop multi-tenant load
//! generator offers paced traffic at 0.5×/1×/2×/4× capacity through a
//! `csq-fleet` [`Router`] (two replicas per model, three tenants
//! round-robining across every model, every request under a deadline).
//! The per-model and per-tenant overload curves — latency percentiles
//! merged bucket-wise across replicas, shed and expiry rates — land in
//! `BENCH_serve.json` next to the single-engine curve.
//!
//! Extra knobs on top of the usual `CSQ_*` scale variables:
//! `CSQ_SERVE_SECONDS` (load duration, default 5), `CSQ_SERVE_WORKERS`
//! (default 2), `CSQ_SERVE_MAX_BATCH` (default 8), `CSQ_SERVE_CLIENTS`
//! (default 4 × workers), `CSQ_SERVE_OVERLOAD_SECONDS` (per overload
//! point, default 1).

use csq_bench::{write_results, BenchScale};
use csq_core::prelude::*;
use csq_data::{Dataset, SyntheticSpec};
use csq_fleet::{FleetConfig, FleetError, FleetStats, ModelRegistry, Router};
use csq_nn::models::{resnet_cifar, ModelConfig};
use csq_serve::{
    Engine, EngineConfig, KernelPolicy, ModelArtifact, ServeError, SubmitOptions, Ticket,
};
use csq_tensor::par::ScratchPool;
use csq_tensor::Tensor;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn env<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Debug, Serialize)]
struct ServeBenchReport {
    // Model + artifact.
    train_accuracy: f32,
    float_accuracy: f32,
    integer_accuracy: f32,
    parity_gap: f32,
    batched_bit_identical: bool,
    artifact_bytes: u64,
    packed_weight_bytes: usize,
    weight_compression: f32,
    integer_ops: usize,
    float_fallback_ops: usize,
    // Load-test configuration.
    workers: usize,
    clients: usize,
    max_batch: usize,
    // Load-test results.
    elapsed_seconds: f32,
    requests_completed: u64,
    requests_shed: u64,
    requests_expired: u64,
    requests_rejected: u64,
    throughput_rps: f32,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    avg_batch: f32,
    batch_hist: Vec<u64>,
    multi_request_batches: u64,
    // Per-op kernel cost breakdown of the closed-loop section, sorted
    // by total wall time (the csq-obs kernel profiler). Each row is
    // tagged with the kernel class (`integer`/`bitplane`/`float`) and
    // routine the per-op selector chose.
    kernel_profile: Vec<csq_obs::profiler::OpProfile>,
    // Wall time attributed per kernel class over the closed loop.
    kernel_class_totals: Vec<csq_obs::profiler::ClassTotal>,
    // Open-loop overload sweep (offered load vs capacity).
    overload: Vec<OverloadPoint>,
    // Same architecture packed at uniform 8/4/3/2 bits: latency per
    // kernel policy, selector routing, and bit-exactness. The bitplane
    // column must fall monotonically as the bit-width drops — that is
    // the whole point of bit-serial kernels.
    bits_sweep: Vec<BitsSweepPoint>,
    // Open-loop multi-tenant fleet sweep: the bit-width artifacts as a
    // versioned registry behind a `csq-fleet` router, offered traffic
    // at multiples of single-engine capacity, with per-model and
    // per-tenant latency/shed curves.
    fleet: Vec<FleetOverloadPoint>,
}

/// Tenants the fleet load generator round-robins across every model.
const FLEET_TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// One point on the fleet overload curve: open-loop traffic across
/// every registry model and all three tenants at a multiple of the
/// measured single-engine capacity, against a fresh router.
#[derive(Debug, Serialize)]
struct FleetOverloadPoint {
    load_multiplier: f32,
    offered_rps: f32,
    /// Requests admitted into some replica's queue.
    submitted: u64,
    completed: u64,
    /// Requests the fleet shed with every ranked replica's queue full.
    shed: u64,
    /// Admitted requests whose deadline lapsed before an answer.
    expired: u64,
    shed_rate: f32,
    completed_rps: f32,
    models: Vec<FleetModelRow>,
    tenants: Vec<FleetTenantRow>,
}

/// Per-model rollup of one fleet overload point (replica engine stats
/// merged bucket-wise; percentiles re-derived from the merged
/// histogram). `replica_queue_full` counts queue-full hits at
/// individual replicas — failover retries included — while the
/// point-level `shed` counts only requests no replica could take.
#[derive(Debug, Serialize)]
struct FleetModelRow {
    model_id: String,
    completed: u64,
    replica_queue_full: u64,
    expired: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// Per-tenant rollup of one fleet overload point, merged across every
/// model the tenant touched. `fleet_shed` is the router-level count of
/// this tenant's requests that found every replica full.
#[derive(Debug, Serialize)]
struct FleetTenantRow {
    tenant: String,
    submitted: u64,
    completed: u64,
    expired: u64,
    fleet_shed: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// One point of the bit-width sweep: the same architecture packed at a
/// uniform width, timed under each kernel policy.
#[derive(Debug, Serialize)]
struct BitsSweepPoint {
    bits: usize,
    /// Ops the selector routes to each class at this width.
    bitplane_ops: usize,
    integer_ops: usize,
    float_ops: usize,
    /// Plane×sign passes pruned to empty across all weights.
    skipped_passes: usize,
    /// Best-of-reps per-sample latency under each policy, microseconds.
    auto_us_per_sample: f32,
    integer_us_per_sample: f32,
    bitplane_us_per_sample: f32,
    /// Bitplane and auto outputs are bit-identical to the integer path.
    bit_exact: bool,
}

/// One point on the overload curve: open-loop traffic offered at a
/// multiple of measured closed-loop capacity against a small queue.
#[derive(Debug, Serialize)]
struct OverloadPoint {
    load_multiplier: f32,
    offered_rps: f32,
    submitted: u64,
    completed: u64,
    shed: u64,
    expired: u64,
    shed_rate: f32,
    completed_rps: f32,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let k = logits.dims()[1];
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(i, &label)| argmax(&logits.data()[i * k..(i + 1) * k]) == label)
        .count();
    correct as f32 / labels.len().max(1) as f32
}

fn main() {
    let scale = BenchScale::from_env();
    let serve_seconds: f32 = env("CSQ_SERVE_SECONDS", 5.0);
    let workers: usize = env("CSQ_SERVE_WORKERS", 2);
    let max_batch: usize = env("CSQ_SERVE_MAX_BATCH", 8);
    let clients: usize = env("CSQ_SERVE_CLIENTS", workers * 4);

    // 1. Train a small CSQ model (the artifact's producer).
    println!("=== csq-serve load test ===");
    println!(
        "training resnet (width {}) for {} epoch(s) ...",
        scale.width, scale.epochs
    );
    let spec = SyntheticSpec::cifar_like(scale.seed)
        .with_samples(scale.train_per_class, scale.test_per_class)
        .with_noise(scale.noise);
    let data = Dataset::synthetic(&spec);
    let mut factory = csq_factory(8);
    let mut model = resnet_cifar(
        ModelConfig::cifar_like(scale.width, Some(4), scale.seed),
        &mut factory,
        1,
    );
    let cfg = CsqConfig::fast(4.0)
        .with_epochs(scale.epochs)
        .with_seed(scale.seed);
    let report = match CsqTrainer::new(cfg).train(&mut model, &data) {
        Ok(r) => r,
        Err(e) => panic!("training failed: {e}"),
    };

    // 2. Export -> save -> reload the .csqm artifact.
    let input_dims = data.test.images.dims()[1..].to_vec();
    let num_classes = data.spec.num_classes;
    let calib_n = data.train.len().min(16);
    let calib = data.train.images.slice_axis0(0, calib_n);
    let artifact =
        match ModelArtifact::export(&mut model, "resnet-csq", &input_dims, num_classes, &calib) {
            Ok(a) => a,
            Err(e) => panic!("artifact export failed: {e}"),
        };
    std::fs::create_dir_all("bench_results").ok();
    let path = std::path::Path::new("bench_results").join("resnet-csq.csqm");
    if let Err(e) = artifact.save(&path) {
        panic!("artifact save failed: {e}");
    }
    let artifact_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let loaded = match ModelArtifact::load(&path) {
        Ok(a) => a,
        Err(e) => panic!("artifact reload failed: {e}"),
    };
    assert_eq!(loaded, artifact, "artifact must round-trip bit-exactly");
    let compiled = match loaded.compile() {
        Ok(c) => c,
        Err(e) => panic!("artifact compile failed: {e}"),
    };
    println!(
        "artifact: {} bytes on disk, {} packed weight bytes, {:.2}x compression, {} integer ops + {} float-fallback ops",
        artifact_bytes,
        loaded.packed_weight_bytes(),
        loaded.scheme.compression,
        compiled.integer_op_count(),
        compiled.float_fallback_count(),
    );

    // 3. Accuracy parity + bit-identity probe, straight on the executor.
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let y_int = match compiled.forward_batch(&data.test.images, &scratch) {
        Ok(y) => y,
        Err(e) => panic!("integer forward failed: {e}"),
    };
    let y_float = match compiled.forward_float(&data.test.images) {
        Ok(y) => y,
        Err(e) => panic!("float forward failed: {e}"),
    };
    let integer_accuracy = accuracy(&y_int, &data.test.labels);
    let float_accuracy = accuracy(&y_float, &data.test.labels);
    let mut batched_bit_identical = true;
    for i in 0..data.test.len().min(8) {
        let single = data.test.images.slice_axis0(i, i + 1);
        let y1 = match compiled.forward_batch(&single, &scratch) {
            Ok(y) => y,
            Err(e) => panic!("single-sample forward failed: {e}"),
        };
        if y1.data() != &y_int.data()[i * num_classes..(i + 1) * num_classes] {
            batched_bit_identical = false;
        }
    }
    println!(
        "accuracy: train-reported {:.3}, float path {:.3}, integer path {:.3}; batched == single: {}",
        report.final_test_accuracy, float_accuracy, integer_accuracy, batched_bit_identical
    );
    assert!(
        batched_bit_identical,
        "batched inference must be bit-identical"
    );

    // 4. Closed-loop load: each client waits for its answer before
    //    submitting the next request.
    let engine = Engine::start(
        compiled,
        EngineConfig {
            workers,
            max_batch,
            batch_window: Duration::from_millis(2),
            queue_capacity: 256,
            ..EngineConfig::default()
        },
    );
    println!(
        "serving for {serve_seconds:.1}s with {workers} worker(s), {clients} client(s), max_batch {max_batch} ..."
    );
    // Profile every kernel invocation of the measured section.
    let profiler = csq_obs::profiler::global();
    profiler.reset();
    profiler.set_enabled(true);
    let n_test = data.test.len();
    let deadline = Instant::now() + Duration::from_secs_f32(serve_seconds.max(0.1));
    let start = Instant::now();
    let errors = AtomicU64::new(0);
    std::thread::scope(|s| {
        for client in 0..clients {
            let engine = &engine;
            let errors = &errors;
            let images = &data.test.images;
            let input_dims = &input_dims;
            s.spawn(move || {
                let mut i = client;
                while Instant::now() < deadline {
                    let idx = i % n_test;
                    let x = images.slice_axis0(idx, idx + 1).reshape(input_dims);
                    match engine.infer(x) {
                        Ok(_) => {}
                        Err(ServeError::QueueFull { .. }) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += clients;
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f32();
    let stats = engine.stats();
    profiler.set_enabled(false);
    let kernel_profile = profiler.snapshot();
    assert_eq!(errors.load(Ordering::Relaxed), 0, "no request may error");
    let kernel_class_totals = profiler.class_totals();
    for row in kernel_profile.iter().take(5) {
        println!(
            "kernel {:>14} {:>8}/{:>12}@{:<13} {:>16}: {:>7} calls  {:>9.3} ms  {:>9.1} MB",
            row.kind,
            row.class,
            row.routine,
            row.blueprint,
            row.shape,
            row.calls,
            row.wall_ns as f64 / 1e6,
            row.bytes as f64 / 1e6,
        );
    }
    for total in &kernel_class_totals {
        println!(
            "class  {:>14}: {:>7} calls  {:>9.3} ms",
            total.class,
            total.calls,
            total.wall_ns as f64 / 1e6,
        );
    }

    let multi_request_batches: u64 = stats.batch_hist.iter().skip(2).sum();
    let throughput_rps = stats.completed as f32 / elapsed.max(1e-6);
    println!(
        "served {} requests in {:.2}s  ({:.1} req/s)  p50 {}us  p95 {}us  p99 {}us  avg batch {:.2}  multi-request batches {}",
        stats.completed,
        elapsed,
        throughput_rps,
        stats.p50_us,
        stats.p95_us,
        stats.p99_us,
        stats.avg_batch,
        multi_request_batches,
    );

    // 5. Overload sweep: open-loop load at multiples of the measured
    //    closed-loop capacity against a fresh engine with a small queue.
    //    Each submission carries a deadline so saturation degrades into
    //    typed sheds/expiries, never hangs.
    let overload_seconds: f32 = env("CSQ_SERVE_OVERLOAD_SECONDS", 1.0);
    let capacity_rps = throughput_rps.max(50.0);
    let mut overload = Vec::new();
    for &load_multiplier in &[0.5f32, 1.0, 2.0, 4.0] {
        let offered_rps = capacity_rps * load_multiplier;
        let point = overload_point(
            &loaded,
            &data.test.images,
            &input_dims,
            workers,
            max_batch,
            load_multiplier,
            offered_rps,
            overload_seconds,
        );
        println!(
            "overload {:.1}x ({:.0} req/s offered): {} submitted, {} completed ({:.0} req/s), {} shed, {} expired, shed rate {:.1}%, p50 {}us p99 {}us",
            point.load_multiplier,
            point.offered_rps,
            point.submitted,
            point.completed,
            point.completed_rps,
            point.shed,
            point.expired,
            point.shed_rate * 100.0,
            point.p50_us,
            point.p99_us,
        );
        overload.push(point);
    }

    // 6. Bit-width sweep: the same architecture packed at uniform
    //    8/4/3/2 bits, each policy timed on the test batch. Fewer bit
    //    planes mean fewer AND/popcount passes, so the bitplane column
    //    falls as the width drops; the integer column stays flat (dense
    //    codes cost the same at any width).
    let sweep: Vec<(BitsSweepPoint, ModelArtifact)> = [8usize, 4, 3, 2]
        .iter()
        .map(|&bits| bits_sweep_point(bits, &scale, &data, &input_dims, num_classes))
        .collect();
    for (p, _) in &sweep {
        println!(
            "bits {}: {} bitplane / {} integer / {} float ops, {} skipped passes; auto {:.1}us  integer {:.1}us  bitplane {:.1}us per sample, bit-exact {}",
            p.bits,
            p.bitplane_ops,
            p.integer_ops,
            p.float_ops,
            p.skipped_passes,
            p.auto_us_per_sample,
            p.integer_us_per_sample,
            p.bitplane_us_per_sample,
            p.bit_exact,
        );
    }
    assert!(
        sweep.iter().all(|(p, _)| p.bit_exact),
        "bitplane kernels must be bit-exact against the integer path at every width"
    );

    // 7. Fleet sweep: the bit-width artifacts become a versioned model
    //    registry (`resnet<bits>b-v1.csqm`), scanned back and served
    //    through a csq-fleet router under open-loop multi-tenant load
    //    at multiples of the single-engine capacity. The directory is
    //    rebuilt from scratch each run so stale artifacts from earlier
    //    code can never leak into the curve.
    let registry_dir = std::path::Path::new("bench_results").join("fleet_registry");
    let _ = std::fs::remove_dir_all(&registry_dir);
    if let Err(e) = std::fs::create_dir_all(&registry_dir) {
        panic!("cannot create {}: {e}", registry_dir.display());
    }
    for (p, artifact) in &sweep {
        let path = registry_dir.join(format!("resnet{}b-v1.csqm", p.bits));
        if let Err(e) = artifact.save(&path) {
            panic!("fleet registry save failed for {}: {e}", path.display());
        }
    }
    let registry = match ModelRegistry::scan(&registry_dir) {
        Ok(r) => r,
        Err(e) => panic!("fleet registry scan failed: {e}"),
    };
    assert!(
        registry.faults().is_empty(),
        "freshly written registry must scan clean: {:?}",
        registry.faults()
    );
    println!(
        "fleet registry: {} model(s), {} version(s): {:?}",
        registry.model_ids().len(),
        registry.version_count(),
        registry.model_ids(),
    );
    let mut fleet = Vec::new();
    for &load_multiplier in &[0.5f32, 1.0, 2.0, 4.0] {
        let point = fleet_overload_point(
            &registry,
            &data.test.images,
            &input_dims,
            workers,
            max_batch,
            load_multiplier,
            capacity_rps * load_multiplier,
            overload_seconds,
        );
        println!(
            "fleet {:.1}x ({:.0} req/s offered over {} models x {} tenants): {} submitted, {} completed ({:.0} req/s), {} shed, {} expired, shed rate {:.1}%",
            point.load_multiplier,
            point.offered_rps,
            point.models.len(),
            point.tenants.len(),
            point.submitted,
            point.completed,
            point.completed_rps,
            point.shed,
            point.expired,
            point.shed_rate * 100.0,
        );
        for m in &point.models {
            println!(
                "  model {:>10}: {:>6} completed, {:>5} replica-queue-full, {:>5} expired, p50 {}us p99 {}us",
                m.model_id, m.completed, m.replica_queue_full, m.expired, m.p50_us, m.p99_us,
            );
        }
        for t in &point.tenants {
            println!(
                "  tenant {:>8}: {:>6} submitted, {:>6} completed, {:>5} expired, {:>5} fleet-shed, p50 {}us p99 {}us",
                t.tenant, t.submitted, t.completed, t.expired, t.fleet_shed, t.p50_us, t.p99_us,
            );
        }
        fleet.push(point);
    }
    let bits_sweep: Vec<BitsSweepPoint> = sweep.into_iter().map(|(p, _)| p).collect();

    let out = ServeBenchReport {
        train_accuracy: report.final_test_accuracy,
        float_accuracy,
        integer_accuracy,
        parity_gap: (float_accuracy - integer_accuracy).abs(),
        batched_bit_identical,
        artifact_bytes,
        packed_weight_bytes: loaded.packed_weight_bytes(),
        weight_compression: loaded.scheme.compression,
        integer_ops: engine.model().integer_op_count(),
        float_fallback_ops: engine.model().float_fallback_count(),
        workers,
        clients,
        max_batch,
        elapsed_seconds: elapsed,
        requests_completed: stats.completed,
        requests_shed: stats.shed,
        requests_expired: stats.expired,
        requests_rejected: stats.rejected,
        throughput_rps,
        p50_us: stats.p50_us,
        p95_us: stats.p95_us,
        p99_us: stats.p99_us,
        avg_batch: stats.avg_batch,
        batch_hist: stats.batch_hist.clone(),
        multi_request_batches,
        kernel_profile,
        kernel_class_totals,
        overload,
        bits_sweep,
        fleet,
    };
    write_results("BENCH_serve", &out);

    // Prometheus text exposition of the closed-loop run: every engine
    // metric plus the kernel breakdown, scrape-ready.
    let mut metrics = stats.to_metrics_snapshot("serve");
    let kernel_reg = csq_obs::MetricsRegistry::new();
    profiler.publish_to(&kernel_reg);
    metrics.merge(&kernel_reg.snapshot());
    let prom_path = std::path::Path::new("bench_results").join("serve_metrics.prom");
    match std::fs::write(&prom_path, metrics.to_prometheus()) {
        Ok(()) => println!("wrote {}", prom_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", prom_path.display()),
    }
}

/// Trains + packs the bench architecture at one uniform bit-width and
/// times a full test-batch forward under each kernel policy (best of
/// several repetitions, per-sample microseconds). Also verifies the
/// bitplane and auto paths are bit-identical to the integer path. The
/// exported artifact rides along so the fleet sweep can deploy the
/// same bits that were just timed.
fn bits_sweep_point(
    bits: usize,
    scale: &BenchScale,
    data: &Dataset,
    input_dims: &[usize],
    num_classes: usize,
) -> (BitsSweepPoint, ModelArtifact) {
    let mut factory = csq_uniform_factory(bits);
    let mut model = resnet_cifar(
        ModelConfig::cifar_like(scale.width, Some(4), scale.seed),
        &mut factory,
        1,
    );
    let cfg = CsqConfig::fast(4.0).with_epochs(1).with_seed(scale.seed);
    if let Err(e) = CsqTrainer::new(cfg).train(&mut model, data) {
        panic!("sweep training failed at {bits} bits: {e}");
    }
    let calib = data.train.images.slice_axis0(0, data.train.len().min(16));
    let artifact = match ModelArtifact::export(
        &mut model,
        &format!("resnet-csq-{bits}b"),
        input_dims,
        num_classes,
        &calib,
    ) {
        Ok(a) => a,
        Err(e) => panic!("sweep export failed at {bits} bits: {e}"),
    };
    let compiled = match artifact.compile() {
        Ok(c) => c,
        Err(e) => panic!("sweep compile failed at {bits} bits: {e}"),
    };

    let x = &data.test.images;
    let batch = x.dims()[0];
    let plan = compiled.kernel_plan(batch);
    let count = |class: &str| plan.iter().filter(|e| e.class == class).count();
    let skipped_passes = artifact
        .plane_profile()
        .iter()
        .map(|e| e.skipped_passes)
        .sum();

    let scratch: ScratchPool<u8> = ScratchPool::new();
    let forward = |policy: KernelPolicy| match compiled.forward_batch_with(x, &scratch, policy) {
        Ok(y) => y,
        Err(e) => panic!("sweep forward failed at {bits} bits: {e}"),
    };
    let want = forward(KernelPolicy::ForceInteger);
    let bit_exact = forward(KernelPolicy::ForceBitplane).data() == want.data()
        && forward(KernelPolicy::Auto).data() == want.data();

    // Best-of-reps per-sample latency: the minimum is the stable
    // estimator under scheduler noise.
    let time_us = |policy: KernelPolicy| -> f32 {
        forward(policy); // warm-up
        let mut best = f32::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            forward(policy);
            best = best.min(t0.elapsed().as_secs_f32());
        }
        best / batch.max(1) as f32 * 1e6
    };

    let point = BitsSweepPoint {
        bits,
        bitplane_ops: count("bitplane"),
        integer_ops: count("integer"),
        float_ops: count("float"),
        skipped_passes,
        auto_us_per_sample: time_us(KernelPolicy::Auto),
        integer_us_per_sample: time_us(KernelPolicy::ForceInteger),
        bitplane_us_per_sample: time_us(KernelPolicy::ForceBitplane),
        bit_exact,
    };
    (point, artifact)
}

/// Runs one open-loop fleet overload point: a fresh router deploys the
/// newest version of every registry model (two replicas each, small
/// queues), then a paced generator offers `offered_rps` for `seconds`,
/// request `k` going to model `k % N` as tenant `k % 3`, every
/// submission under a deadline. Waits out every ticket, then folds the
/// fleet stats rollup into per-model and per-tenant rows.
#[allow(clippy::too_many_arguments)]
fn fleet_overload_point(
    registry: &ModelRegistry,
    images: &Tensor,
    input_dims: &[usize],
    workers: usize,
    max_batch: usize,
    load_multiplier: f32,
    offered_rps: f32,
    seconds: f32,
) -> FleetOverloadPoint {
    let router = Router::new(FleetConfig {
        replicas_per_model: 2,
        engine: EngineConfig {
            workers,
            max_batch,
            batch_window: Duration::from_millis(2),
            queue_capacity: (max_batch * workers * 4).max(8),
            ..EngineConfig::default()
        },
        tenant_quota: None,
    });
    let model_ids: Vec<String> = registry.model_ids().iter().map(|s| s.to_string()).collect();
    for id in &model_ids {
        let version = match registry.latest(id) {
            Some(v) => v,
            None => panic!("registry lost model `{id}` between scan and deploy"),
        };
        if let Err(e) = router.deploy(version) {
            panic!("fleet deploy of `{id}` failed: {e}");
        }
    }

    let n_test = images.dims()[0];
    let request_deadline = Duration::from_millis(250);
    let interval = Duration::from_secs_f32(1.0 / offered_rps.max(1.0));
    let start = Instant::now();
    let end = start + Duration::from_secs_f32(seconds.max(0.1));
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut submitted: u64 = 0;
    let mut shed: u64 = 0;
    let mut sent: u32 = 0;
    loop {
        let now = Instant::now();
        if now >= end {
            break;
        }
        let due = start + interval * sent;
        if now < due {
            std::thread::sleep(due - now);
        }
        sent += 1;
        let k = sent as usize;
        let model = &model_ids[k % model_ids.len()];
        let tenant = FLEET_TENANTS[k % FLEET_TENANTS.len()];
        let idx = k % n_test;
        let x = images.slice_axis0(idx, idx + 1).reshape(input_dims);
        let opts = SubmitOptions::default()
            .with_deadline(request_deadline)
            .with_tenant(tenant);
        match router.submit(model, x, opts) {
            Ok(t) => {
                submitted += 1;
                tickets.push(t);
            }
            Err(FleetError::Serve(ServeError::QueueFull { .. })) => shed += 1,
            Err(e) => panic!("fleet submission failed unexpectedly: {e}"),
        }
    }
    let mut completed: u64 = 0;
    let mut expired: u64 = 0;
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => completed += 1,
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(e) => panic!("fleet ticket failed unexpectedly: {e}"),
        }
    }
    let elapsed = start.elapsed().as_secs_f32();

    let stats = FleetStats::collect(&router);
    let models = stats
        .models
        .iter()
        .map(|(id, m)| FleetModelRow {
            model_id: id.clone(),
            completed: m.merged.completed,
            replica_queue_full: m.merged.shed,
            expired: m.merged.expired,
            p50_us: m.merged.p50_us,
            p95_us: m.merged.p95_us,
            p99_us: m.merged.p99_us,
        })
        .collect();
    let tenants = stats
        .tenants
        .iter()
        .map(|(name, t)| FleetTenantRow {
            tenant: name.clone(),
            submitted: t.submitted,
            completed: t.completed,
            expired: t.expired,
            fleet_shed: stats.router.tenants.get(name).map(|d| d.shed).unwrap_or(0),
            p50_us: t.p50_us,
            p95_us: t.p95_us,
            p99_us: t.p99_us,
        })
        .collect();
    let offered = submitted + shed;
    FleetOverloadPoint {
        load_multiplier,
        offered_rps,
        submitted,
        completed,
        shed,
        expired,
        shed_rate: shed as f32 / offered.max(1) as f32,
        completed_rps: completed as f32 / elapsed.max(1e-6),
        models,
        tenants,
    }
}

/// Runs one open-loop overload point: submits at a paced `offered_rps`
/// for `seconds` against a fresh engine (small queue, so overload sheds
/// instead of buffering unboundedly), waits out every ticket, and
/// returns the outcome + latency breakdown.
#[allow(clippy::too_many_arguments)]
fn overload_point(
    artifact: &ModelArtifact,
    images: &Tensor,
    input_dims: &[usize],
    workers: usize,
    max_batch: usize,
    load_multiplier: f32,
    offered_rps: f32,
    seconds: f32,
) -> OverloadPoint {
    let compiled = match artifact.compile() {
        Ok(c) => c,
        Err(e) => panic!("artifact compile failed: {e}"),
    };
    let engine = Engine::start(
        compiled,
        EngineConfig {
            workers,
            max_batch,
            batch_window: Duration::from_millis(2),
            queue_capacity: (max_batch * workers * 4).max(8),
            ..EngineConfig::default()
        },
    );
    let n_test = images.dims()[0];
    let request_deadline = Duration::from_millis(250);
    let interval = Duration::from_secs_f32(1.0 / offered_rps.max(1.0));
    let start = Instant::now();
    let end = start + Duration::from_secs_f32(seconds.max(0.1));
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut submitted: u64 = 0;
    let mut shed: u64 = 0;
    let mut sent: u32 = 0;
    loop {
        let now = Instant::now();
        if now >= end {
            break;
        }
        // Paced open-loop: request k is due at start + k·interval,
        // regardless of how the engine is doing (that is the point).
        let due = start + interval * sent;
        if now < due {
            std::thread::sleep(due - now);
        }
        sent += 1;
        let idx = sent as usize % n_test;
        let x = images.slice_axis0(idx, idx + 1).reshape(input_dims);
        match engine.submit_with(x, SubmitOptions::default().with_deadline(request_deadline)) {
            Ok(t) => {
                submitted += 1;
                tickets.push(t);
            }
            Err(ServeError::QueueFull { .. }) => shed += 1,
            Err(e) => panic!("overload submission failed unexpectedly: {e}"),
        }
    }
    // Every ticket resolves within its deadline — completed or expired,
    // never a hang.
    let mut completed: u64 = 0;
    let mut expired: u64 = 0;
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => completed += 1,
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(e) => panic!("overload ticket failed unexpectedly: {e}"),
        }
    }
    let elapsed = start.elapsed().as_secs_f32();
    let stats = engine.stats();
    let offered = submitted + shed;
    OverloadPoint {
        load_multiplier,
        offered_rps,
        submitted,
        completed,
        shed,
        expired,
        shed_rate: shed as f32 / (offered.max(1)) as f32,
        completed_rps: completed as f32 / elapsed.max(1e-6),
        p50_us: stats.p50_us,
        p95_us: stats.p95_us,
        p99_us: stats.p99_us,
    }
}
