//! Regenerates **Table IV** of the CSQ paper: the QAT ablation comparing
//! STE-Uniform (\[27\]), CSQ-Uniform (Eq. 3, continuous sparsification
//! without a mask) and full CSQ-MP, at weight precisions 4 / 3 / 2 with
//! 3-bit activations.
//!
//! The paper's claim to reproduce: at every precision,
//! `STE-Uniform < CSQ-Uniform < CSQ-MP`.
//!
//! ```text
//! cargo run -p csq-bench --release --bin table4 [-- --resume] [-- --summary]
//! ```
//!
//! `--resume` reuses completed rows from the campaign cache. `--summary`
//! prints a per-layer model map (path, kind, params, roles, bits) first.

use csq_bench::{emit_table, print_model_summaries, Arch, BenchScale, Campaign, Method, TableRow};

fn main() {
    let scale = BenchScale::from_env();
    let campaign = Campaign::from_args("table4");
    eprintln!("table4: QAT ablation on ResNet-20, scale {scale:?}");
    print_model_summaries(&[Arch::ResNet20], &scale);
    let act = Some(3);
    let paper: [(usize, f32, f32, f32); 3] = [
        (4, 88.89, 91.93, 92.68),
        (3, 87.68, 91.74, 92.62),
        (2, 84.35, 91.67, 92.34),
    ];
    let mut rows = Vec::new();
    for (bits, ste_acc, uni_acc, mp_acc) in paper {
        let r = campaign.method(
            &format!("w{bits}-ste"),
            Arch::ResNet20,
            Method::SteUniform { bits },
            act,
            &scale,
        );
        rows.push(TableRow::measured(
            &bits.to_string(),
            &r,
            None,
            Some(ste_acc),
        ));
        let r = campaign.method(
            &format!("w{bits}-csq-uniform"),
            Arch::ResNet20,
            Method::CsqUniform { bits },
            act,
            &scale,
        );
        rows.push(TableRow::measured(
            &bits.to_string(),
            &r,
            None,
            Some(uni_acc),
        ));
        let r = campaign.method(
            &format!("w{bits}-csq-mp"),
            Arch::ResNet20,
            Method::Csq {
                target: bits as f32,
                finetune: false,
            },
            act,
            &scale,
        );
        let mut row = TableRow::measured(&bits.to_string(), &r, None, Some(mp_acc));
        row.method = "CSQ-MP".into();
        rows.push(row);
    }
    emit_table(
        "table4",
        "Table IV: CSQ vs STE-based QAT (ResNet-20, A=3); A-Bits column shows W-Bits",
        &rows,
    );

    // Verdict line: does the paper's ordering hold?
    let acc = |m: &str, w: &str| {
        rows.iter()
            .find(|r| r.method == m && r.a_bits == w)
            .and_then(|r| r.meas_acc)
            .unwrap_or(0.0)
    };
    for bits in ["4", "3", "2"] {
        let (s, u, m) = (
            acc("STE-Uniform", bits),
            acc("CSQ-Uniform", bits),
            acc("CSQ-MP", bits),
        );
        let ok = s <= u && u <= m + 1.0; // small tolerance on the top pair
        println!(
            "W={bits}: STE {s:.2} <= CSQ-Uniform {u:.2} <= CSQ-MP {m:.2}  -> {}",
            if ok {
                "ordering holds"
            } else {
                "ordering VIOLATED"
            }
        );
    }
}
