//! Measures the wall-clock scaling of the deterministic parallel runtime
//! at 1, 2 and 4 worker threads over the hot paths it accelerates —
//! a dense matmul, one full CSQ training step, and batched integer
//! inference through the serve executor — and writes the rows to
//! `bench_results/BENCH_parallel.json` together with the per-op kernel
//! cost breakdown of the inference workload (the `csq-obs` profiler).
//!
//! The runtime's chunk boundaries and reduction order are fixed functions
//! of tensor shape, so every thread count produces bit-identical numbers;
//! only the wall-clock changes. On a single-core host the multi-thread
//! rows mostly measure pool overhead.
//!
//! ```text
//! cargo run -p csq-bench --release --bin parallel
//! ```

use csq_bench::write_results;
use csq_core::prelude::*;
use csq_nn::models::{resnet_cifar, ModelConfig};
use csq_nn::{softmax_cross_entropy, Adam, Layer, Sequential};
use csq_tensor::{init, par};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Debug, Serialize)]
struct ParallelRow {
    workload: String,
    threads: usize,
    seconds_per_iter: f32,
    speedup_vs_serial: f32,
}

#[derive(Debug, Serialize)]
struct ParallelReport {
    rows: Vec<ParallelRow>,
    /// Per-op kernel breakdown of the integer-inference workload,
    /// sorted by total wall time.
    kernel_profile: Vec<csq_obs::profiler::OpProfile>,
}

/// Times `f` over `iters` iterations after one warm-up call.
fn time_per_iter(iters: usize, mut f: impl FnMut()) -> f32 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f32() / iters as f32
}

fn bench_workload(name: &str, iters: usize, mut iter: impl FnMut(), rows: &mut Vec<ParallelRow>) {
    let mut serial = 0.0f32;
    for t in THREAD_COUNTS {
        let secs = par::with_threads(t, || time_per_iter(iters, &mut iter));
        if t == 1 {
            serial = secs;
        }
        let speedup = if secs > 0.0 { serial / secs } else { 0.0 };
        println!("{name:<24} threads={t}  {secs:.6} s/iter  speedup {speedup:.2}x");
        rows.push(ParallelRow {
            workload: name.to_string(),
            threads: t,
            seconds_per_iter: secs,
            speedup_vs_serial: speedup,
        });
    }
}

fn main() {
    println!(
        "=== Parallel runtime scaling (host has {} worker thread(s) by default) ===",
        par::current_threads()
    );
    let mut rows = Vec::new();

    // The kernel profiler stays on for every workload so the report's
    // per-op breakdown carries the tensor-level GEMM/conv rows (tagged
    // with the selected routine + blueprint) alongside the serve rows.
    let profiler = csq_obs::profiler::global();
    profiler.reset();
    profiler.set_enabled(true);

    // Workload 1: dense matmul through the selector (packed-panel GEMM
    // at this shape), plus the historical blocked kernel pinned via
    // `matmul_with` so the report shows the packed-vs-blocked margin on
    // identical operands.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = init::uniform(&[128, 256], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[256, 128], -1.0, 1.0, &mut rng);
    bench_workload(
        "matmul_128x256x128",
        50,
        || {
            black_box(a.matmul(&b));
        },
        &mut rows,
    );
    bench_workload(
        "matmul_blocked_128x256x128",
        50,
        || {
            black_box(a.matmul_with(&b, csq_tensor::routines::RoutineKind::Blocked));
        },
        &mut rows,
    );

    // Workload 2: one full CSQ training step (forward + backward +
    // optimizer), dominated by bit-level materialization and gradients.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let x = init::uniform(&[8, 3, 16, 16], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let cfg = ModelConfig::cifar_like(8, Some(3), 0);
    let mut factory = csq_factory(8);
    let mut model = resnet_cifar(cfg, &mut factory, 1);
    model.visit_weight_sources(&mut |s| s.set_beta(14.0));
    let mut opt = Adam::new(1e-2, 5e-4);
    let budget = BudgetRegularizer::new(0.3, 3.0);
    let step = |model: &mut Sequential, opt: &mut Adam| {
        model.zero_grads();
        let logits = model.forward(&x, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        model.backward(&grad);
        opt.step(model);
        budget.apply(model);
        black_box(loss);
    };
    bench_workload(
        "csq_train_step_resnet8",
        5,
        || step(&mut model, &mut opt),
        &mut rows,
    );

    // Workload 3: batched integer inference through the serve executor,
    // with the kernel profiler on so the report carries the per-op
    // (kind × shape) wall-time and bytes-touched breakdown.
    model.visit_weight_sources(&mut |s| {
        s.freeze_mask();
        s.finalize();
    });
    let artifact =
        match csq_serve::ModelArtifact::export(&mut model, "resnet-par", &[3, 16, 16], 10, &x) {
            Ok(a) => a,
            Err(e) => panic!("artifact export failed: {e}"),
        };
    let compiled = match artifact.compile() {
        Ok(c) => c,
        Err(e) => panic!("artifact compile failed: {e}"),
    };
    let scratch: csq_tensor::par::ScratchPool<u8> = csq_tensor::par::ScratchPool::new();
    bench_workload(
        "integer_forward_resnet8",
        20,
        || {
            black_box(compiled.forward_batch(&x, &scratch).ok());
        },
        &mut rows,
    );
    profiler.set_enabled(false);
    let kernel_profile = profiler.snapshot();
    for row in kernel_profile.iter().take(8) {
        println!(
            "kernel {:>14} {:>8}/{:>12}@{:<13} {:>16}: {:>6} calls  {:>9.3} ms",
            row.kind,
            row.class,
            row.routine,
            row.blueprint,
            row.shape,
            row.calls,
            row.wall_ns as f64 / 1e6,
        );
    }

    write_results(
        "BENCH_parallel",
        &ParallelReport {
            rows,
            kernel_profile,
        },
    );
}
