//! Regenerates **Figure 2** of the CSQ paper: the effect of the base
//! regularization strength λ on the averaged model precision during
//! training (ResNet-20, 3-bit activations, 3-bit target).
//!
//! The paper's shape to reproduce: across a wide λ range the precision
//! trajectory converges to the 3-bit target (marked by the "red star"),
//! while λ that is far too small (1e-6, 1e-4) lacks the strength to pull
//! the model down from 8 bits. Note the reduced step count shifts the
//! usable λ range upward versus the paper's (see DESIGN.md §2); the
//! *shape* — a wide insensitive band plus failure below a threshold — is
//! the claim under test.
//!
//! ```text
//! cargo run -p csq-bench --release --bin fig2 [-- --resume]
//! ```
//!
//! `--resume` reuses completed λ runs from the campaign cache.

use csq_bench::{write_results, Arch, BenchScale, Campaign};
use csq_core::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct LambdaSeries {
    lambda: f32,
    bits_per_epoch: Vec<f32>,
    final_bits: f32,
    reached_target: bool,
}

fn main() {
    let scale = BenchScale::from_env();
    let campaign = Campaign::from_args("fig2");
    let target = 3.0f32;
    eprintln!("fig2: lambda sweep at target {target}, scale {scale:?}");
    let lambdas = [1e-6f32, 1e-4, 1e-3, 1e-2, 1e-1, 0.3, 1.0];
    let mut series = Vec::new();
    for &lambda in &lambdas {
        let s = campaign.run(&format!("lambda-{lambda}"), || {
            let data = Arch::ResNet20.dataset(&scale);
            let mut factory = csq_factory(8);
            let mut model = Arch::ResNet20.build(
                &scale,
                Some(3),
                csq_nn::activation::ActMode::Uniform,
                &mut factory,
            );
            let cfg = CsqConfig::fast(target)
                .with_epochs(scale.epochs)
                .with_lambda(lambda)
                .with_seed(scale.seed);
            let report = CsqTrainer::new(cfg)
                .train(&mut model, &data)
                .unwrap_or_else(|e| panic!("lambda {lambda} training failed: {e}"));
            let bits: Vec<f32> = report.history.iter().map(|h| h.avg_bits).collect();
            let final_bits = report.final_avg_bits;
            LambdaSeries {
                lambda,
                bits_per_epoch: bits,
                final_bits,
                reached_target: (final_bits - target).abs() <= 0.5,
            }
        });
        println!(
            "lambda={:<8}: final {:.2} bits | {}",
            s.lambda,
            s.final_bits,
            s.bits_per_epoch
                .iter()
                .map(|b| format!("{b:.1}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        series.push(s);
    }
    let reached = series.iter().filter(|s| s.reached_target).count();
    let failed_small: Vec<f32> = series
        .iter()
        .filter(|s| !s.reached_target)
        .map(|s| s.lambda)
        .collect();
    println!(
        "\n{reached}/{} lambdas reach the {target}-bit target; failures: {failed_small:?} \
         (paper shape: only the smallest lambdas fail)",
        series.len()
    );
    write_results("fig2", &series);
}
