//! Regenerates **Figure 4** of the CSQ paper: the layer-wise precision of
//! the mixed-precision schemes CSQ discovers under different target bits
//! (ResNet-20, 3-bit activations).
//!
//! The paper's shapes to reproduce: (1) the per-layer precision profiles
//! are broadly consistent across targets (scaled versions of each other);
//! (2) CSQ's profiles differ from the declining-precision heuristics of
//! HAWQ/BSQ — the paper reports a roughly *rising* trend toward the
//! output layers.
//!
//! ```text
//! cargo run -p csq-bench --release --bin fig4 [-- --resume]
//! ```
//!
//! `--resume` reuses completed target runs from the campaign cache.

use csq_bench::{write_results, Arch, BenchScale, Campaign};
use csq_core::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct LayerwiseScheme {
    target: f32,
    layer_bits: Vec<f32>,
    /// Layer paths matching `layer_bits` column-for-column (empty for
    /// cache entries written before paths existed).
    #[serde(default)]
    layer_paths: Vec<String>,
    avg_bits: f32,
}

fn main() {
    let scale = BenchScale::from_env();
    let campaign = Campaign::from_args("fig4");
    eprintln!("fig4: layer-wise schemes, scale {scale:?}");
    let mut schemes = Vec::new();
    for target in [1.0f32, 2.0, 3.0, 4.0, 5.0] {
        let s = campaign.run(&format!("target-{target}"), || {
            let data = Arch::ResNet20.dataset(&scale);
            let mut factory = csq_factory(8);
            let mut model = Arch::ResNet20.build(
                &scale,
                Some(3),
                csq_nn::activation::ActMode::Uniform,
                &mut factory,
            );
            let cfg = CsqConfig::fast(target)
                .with_epochs(scale.epochs)
                .with_seed(scale.seed);
            let report = CsqTrainer::new(cfg)
                .train(&mut model, &data)
                .unwrap_or_else(|e| panic!("target {target} training failed: {e}"));
            LayerwiseScheme {
                target,
                layer_bits: report.scheme.layer_bits(),
                layer_paths: report.scheme.layers.iter().map(|l| l.path.clone()).collect(),
                avg_bits: report.final_avg_bits,
            }
        });
        schemes.push(s);
    }

    let n_layers = schemes[0].layer_bits.len();
    println!("\n=== Figure 4: layer-wise precision by target (columns = weight tensors in model order) ===");
    print!("{:<8}", "target");
    for l in 0..n_layers {
        print!("{:>4}", l);
    }
    println!();
    for s in &schemes {
        print!("{:<8}", format!("{}-bit", s.target));
        for &b in &s.layer_bits {
            print!("{:>4.0}", b);
        }
        println!("   (avg {:.2})", s.avg_bits);
    }
    if !schemes[0].layer_paths.is_empty() {
        println!("columns:");
        for (i, p) in schemes[0].layer_paths.iter().enumerate() {
            println!("  {i:>3} = {p}");
        }
    }

    // Consistency check across targets: rank correlation between the
    // layer profiles of consecutive targets.
    let spearman_like = |a: &[f32], b: &[f32]| -> f32 {
        let ma = a.iter().sum::<f32>() / a.len() as f32;
        let mb = b.iter().sum::<f32>() / b.len() as f32;
        let cov: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f32 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f32 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        if va <= 0.0 || vb <= 0.0 {
            0.0
        } else {
            cov / (va.sqrt() * vb.sqrt())
        }
    };
    for w in schemes.windows(2) {
        println!(
            "profile correlation target {} vs {}: {:.2}",
            w[0].target,
            w[1].target,
            spearman_like(&w[0].layer_bits, &w[1].layer_bits)
        );
    }
    write_results("fig4", &schemes);
}
