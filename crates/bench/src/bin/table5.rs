//! Regenerates **Table V** of the CSQ paper: the accuracy–model-size
//! trade-off of CSQ across target precisions 1–5 bit (plus the FP
//! reference), ResNet-20 with 3-bit activations.
//!
//! The paper's claims to reproduce: the achieved average precision lands
//! on the target ("Ave. prec." ≈ target), and accuracy degrades
//! monotonically (and gently) as the target shrinks.
//!
//! ```text
//! cargo run -p csq-bench --release --bin table5 [-- --resume] [-- --summary]
//! ```
//!
//! `--resume` reuses completed rows from the campaign cache. `--summary`
//! prints a per-layer model map (path, kind, params, roles, bits) first.

use csq_bench::{print_model_summaries, write_results, Arch, BenchScale, Campaign, Method};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TradeoffRow {
    target: String,
    paper_avg_prec: f32,
    paper_comp: f32,
    paper_acc: f32,
    meas_avg_prec: Option<f32>,
    meas_comp: Option<f32>,
    meas_acc: Option<f32>,
}

fn main() {
    let scale = BenchScale::from_env();
    let campaign = Campaign::from_args("table5");
    eprintln!("table5: accuracy-size trade-off, scale {scale:?}");
    print_model_summaries(&[Arch::ResNet20], &scale);
    let paper: [(f32, f32, f32, f32); 5] = [
        (1.0, 1.00, 32.00, 90.33),
        (2.0, 1.97, 16.24, 91.70),
        (3.0, 3.05, 10.49, 92.42),
        (4.0, 4.00, 8.00, 92.51),
        (5.0, 5.05, 6.34, 92.61),
    ];
    let mut rows = Vec::new();
    for (target, p_prec, p_comp, p_acc) in paper {
        let r = campaign.method(
            &format!("csq-t{target}"),
            Arch::ResNet20,
            Method::Csq {
                target,
                finetune: false,
            },
            Some(3),
            &scale,
        );
        rows.push(TradeoffRow {
            target: format!("{target}-bit"),
            paper_avg_prec: p_prec,
            paper_comp: p_comp,
            paper_acc: p_acc,
            meas_avg_prec: Some(r.avg_bits),
            meas_comp: Some(r.compression),
            meas_acc: Some(r.accuracy * 100.0),
        });
    }
    let fp = campaign.method("fp", Arch::ResNet20, Method::Fp, Some(3), &scale);
    rows.push(TradeoffRow {
        target: "FP".into(),
        paper_avg_prec: 32.0,
        paper_comp: 1.0,
        paper_acc: 92.62,
        meas_avg_prec: Some(32.0),
        meas_comp: Some(fp.compression),
        meas_acc: Some(fp.accuracy * 100.0),
    });

    println!("\n=== Table V: accuracy-size trade-off under different target bits ===");
    println!(
        "{:<7} {:>10} {:>9} {:>8} | {:>10} {:>9} {:>8}",
        "Target", "paperPrec", "paperComp", "paperAcc", "measPrec", "measComp", "measAcc"
    );
    let f = |v: Option<f32>| v.map_or("-".into(), |x| format!("{x:.2}"));
    for r in &rows {
        println!(
            "{:<7} {:>10.2} {:>9.2} {:>8.2} | {:>10} {:>9} {:>8}",
            r.target,
            r.paper_avg_prec,
            r.paper_comp,
            r.paper_acc,
            f(r.meas_avg_prec),
            f(r.meas_comp),
            f(r.meas_acc)
        );
    }
    // Shape checks the paper highlights.
    let hit = rows
        .iter()
        .take(5)
        .zip(paper.iter())
        .filter(|(r, (t, ..))| (r.meas_avg_prec.unwrap() - t).abs() <= 0.5)
        .count();
    println!("targets hit within 0.5 bit: {hit}/5");
    write_results("table5", &rows);
}
