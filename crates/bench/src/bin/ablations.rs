//! Design-choice ablations called out in DESIGN.md §5 — the choices this
//! reproduction makes inside the CSQ algorithm, each compared against its
//! alternative on the Table-V workload (ResNet-20, 3-bit activations,
//! 3-bit target):
//!
//! 1. **Staggered vs uniform mask-logit initialization** — without the
//!    stagger all mask logits cross the gate boundary together and layer
//!    precision collapses 8 → 0 before recovering.
//! 2. **Hard vs soft Δ_S counting** — the paper counts precision with
//!    `Σ_b [m_B ≥ 0]` even while gates are soft; the ablation uses the
//!    relaxed sum instead.
//! 3. **β_max sweep** — the shared maximum gate temperature controls how
//!    exactly the soft model matches its hard finalization (the
//!    soft→hard accuracy gap).
//! 4. **Scale granularity** — the paper's per-layer scalar scale versus
//!    per-output-channel scales.
//!
//! ```text
//! cargo run -p csq-bench --release --bin ablations [-- --resume]
//! ```
//!
//! `--resume` reuses completed variants from the campaign cache.

use csq_bench::{write_results, Arch, BenchScale, Campaign};
use csq_core::bitrep::csq_factory_with_mask_init;
use csq_core::prelude::*;
use csq_core::trainer::{evaluate, fit, FitConfig};
use csq_nn::activation::ActMode;
use csq_nn::Layer;
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct AblationResult {
    name: String,
    variant: String,
    final_bits: f32,
    final_acc: f32,
    bits_per_epoch: Vec<f32>,
    precision_collapsed: bool,
    soft_acc: Option<f32>,
}

fn run_variant(
    scale: &BenchScale,
    factory_stagger: Option<(f32, f32)>,
    soft_counting: bool,
    beta_max: f32,
) -> AblationResult {
    let target = 3.0f32;
    let data = Arch::ResNet20.dataset(scale);
    let (base, stagger) = factory_stagger.unwrap_or((0.05, 0.03));
    let mut factory = csq_factory_with_mask_init(8, base, stagger);
    let mut model = Arch::ResNet20.build(scale, Some(3), ActMode::Uniform, &mut factory);

    let mut budget = BudgetRegularizer::new(0.3, target);
    if soft_counting {
        budget = budget.with_soft_counting();
    }
    let mut cfg = FitConfig::fast(scale.epochs);
    cfg.seed = scale.seed;
    cfg.beta = Some(TemperatureSchedule::new(1.0, beta_max, scale.epochs));
    cfg.budget = Some(budget);
    let history = fit(&mut model, &data, &cfg, false).expect("ablation training failed");
    let (_, soft_acc) = evaluate(&mut model, &data.test, cfg.batch_size);
    model.visit_weight_sources(&mut |src| src.finalize());
    let (_, acc) = evaluate(&mut model, &data.test, cfg.batch_size);
    let stats = model_precision(&mut model);
    let bits: Vec<f32> = history.iter().map(|h| h.avg_bits).collect();
    // "Collapse" = average precision ever dropping more than 2 bits
    // below the target on its way down.
    let collapsed = bits.iter().any(|&b| b < target - 2.0);
    AblationResult {
        name: String::new(),
        variant: String::new(),
        final_bits: stats.avg_bits,
        final_acc: acc,
        bits_per_epoch: bits,
        precision_collapsed: collapsed,
        soft_acc: Some(soft_acc),
    }
}

fn main() {
    let scale = BenchScale::from_env();
    let campaign = Campaign::from_args("ablations");
    eprintln!("ablations: scale {scale:?}");
    let mut results = Vec::new();

    println!("\n--- Ablation 1: mask-logit initialization ---");
    for (variant, stagger) in [
        ("staggered (default)", Some((0.05, 0.03))),
        ("uniform", Some((0.05, 0.0))),
    ] {
        let mut r = campaign.run(&format!("mask-init {variant}"), || {
            run_variant(&scale, stagger, false, 200.0)
        });
        r.name = "mask-init".into();
        r.variant = variant.into();
        println!(
            "{variant:<22} final {:.2} bits, acc {:.2}%, collapsed: {} | {}",
            r.final_bits,
            r.final_acc * 100.0,
            r.precision_collapsed,
            r.bits_per_epoch
                .iter()
                .map(|b| format!("{b:.1}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        results.push(r);
    }

    println!("\n--- Ablation 2: Δ_S counting rule ---");
    for (variant, soft) in [("hard (paper)", false), ("soft", true)] {
        let mut r = campaign.run(&format!("delta-s {variant}"), || {
            run_variant(&scale, None, soft, 200.0)
        });
        r.name = "delta-s-counting".into();
        r.variant = variant.into();
        println!(
            "{variant:<22} final {:.2} bits, acc {:.2}%",
            r.final_bits,
            r.final_acc * 100.0
        );
        results.push(r);
    }

    println!("\n--- Ablation 3: maximum gate temperature ---");
    for beta_max in [20.0f32, 200.0, 1000.0] {
        let mut r = campaign.run(&format!("beta-max-{beta_max}"), || {
            run_variant(&scale, None, false, beta_max)
        });
        r.name = "beta-max".into();
        r.variant = format!("beta_max={beta_max}");
        let gap = (r.soft_acc.unwrap() - r.final_acc) * 100.0;
        println!(
            "beta_max={beta_max:<8} final {:.2} bits, hard acc {:.2}%, soft->hard gap {gap:+.2}pp",
            r.final_bits,
            r.final_acc * 100.0
        );
        results.push(r);
    }

    println!("\n--- Ablation 4: scale granularity ---");
    for (variant, per_channel) in [("per-layer (paper)", false), ("per-channel", true)] {
        let r = campaign.run(&format!("scale-granularity {variant}"), || {
            let target = 3.0f32;
            let data = Arch::ResNet20.dataset(&scale);
            let mut model = if per_channel {
                let mut factory = csq_core::bitrep::csq_factory_per_channel(8);
                Arch::ResNet20.build(&scale, Some(3), ActMode::Uniform, &mut factory)
            } else {
                let mut factory = csq_factory(8);
                Arch::ResNet20.build(&scale, Some(3), ActMode::Uniform, &mut factory)
            };
            let mut cfg = FitConfig::fast(scale.epochs);
            cfg.seed = scale.seed;
            cfg.beta = Some(TemperatureSchedule::paper_default(scale.epochs).with_saturation(0.75));
            cfg.budget = Some(BudgetRegularizer::new(0.3, target));
            fit(&mut model, &data, &cfg, false).expect("ablation training failed");
            model.visit_weight_sources(&mut |src| src.finalize());
            let (_, acc) = evaluate(&mut model, &data.test, cfg.batch_size);
            let bits = model_precision(&mut model).avg_bits;
            AblationResult {
                name: "scale-granularity".into(),
                variant: variant.into(),
                final_bits: bits,
                final_acc: acc,
                bits_per_epoch: vec![],
                precision_collapsed: false,
                soft_acc: None,
            }
        });
        println!(
            "{variant:<22} final {:.2} bits, acc {:.2}%",
            r.final_bits,
            r.final_acc * 100.0
        );
        results.push(r);
    }

    write_results("ablations", &results);
}
