//! Regenerates **Table I** of the CSQ paper: quantization results of
//! ResNet-20 on the CIFAR-10 stand-in, across activation precisions
//! 32 / 3 / 2.
//!
//! Paper columns are echoed next to measured values; absolute accuracies
//! are not comparable (synthetic data, reduced scale — see
//! EXPERIMENTS.md), the *shape* to check is: CSQ rows dominate the
//! efficiency–accuracy frontier at every activation precision.
//!
//! ```text
//! cargo run -p csq-bench --release --bin table1 [-- --resume] [-- --summary]
//! ```
//!
//! `--resume` reuses completed rows from the campaign cache, so an
//! interrupted table restarts at the first missing row. `--summary`
//! prints a per-layer model map (path, kind, params, roles, bits)
//! before the campaign starts.

use csq_bench::{emit_table, print_model_summaries, Arch, BenchScale, Campaign, Method, TableRow};

fn main() {
    let scale = BenchScale::from_env();
    let campaign = Campaign::from_args("table1");
    eprintln!("table1: ResNet-20 / CIFAR-like, scale {scale:?}");
    print_model_summaries(&[Arch::ResNet20], &scale);
    let mut rows = Vec::new();
    let csq = |target| Method::Csq {
        target,
        finetune: false,
    };

    // ---- A-Bits = 32 -------------------------------------------------
    let a = "32";
    let act = None;
    let fp = campaign.method("a32-fp", Arch::ResNet20, Method::Fp, act, &scale);
    rows.push(TableRow::measured(a, &fp, Some(1.00), Some(92.62)));
    let lq = campaign.method(
        "a32-lq3",
        Arch::ResNet20,
        Method::Lq { bits: 3 },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &lq, Some(10.67), Some(92.00)));
    let bsq = campaign.method("a32-bsq", Arch::ResNet20, Method::Bsq, act, &scale);
    rows.push(TableRow::measured(a, &bsq, Some(19.24), Some(91.87)));
    let c1 = campaign.method("a32-csq-t1", Arch::ResNet20, csq(1.0), act, &scale);
    rows.push(TableRow::measured(a, &c1, Some(26.67), Some(91.70)));
    let c2 = campaign.method("a32-csq-t2", Arch::ResNet20, csq(2.0), act, &scale);
    rows.push(TableRow::measured(a, &c2, Some(16.00), Some(92.68)));

    // ---- A-Bits = 3 --------------------------------------------------
    let a = "3";
    let act = Some(3);
    let lq = campaign.method(
        "a3-lq3",
        Arch::ResNet20,
        Method::Lq { bits: 3 },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &lq, Some(10.67), Some(91.60)));
    let pact = campaign.method(
        "a3-pact3",
        Arch::ResNet20,
        Method::Pact { bits: 3 },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &pact, Some(10.67), Some(91.10)));
    let dorefa = campaign.method(
        "a3-dorefa3",
        Arch::ResNet20,
        Method::Dorefa { bits: 3 },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &dorefa, Some(10.67), Some(89.90)));
    let bsq = campaign.method("a3-bsq", Arch::ResNet20, Method::Bsq, act, &scale);
    rows.push(TableRow::measured(a, &bsq, Some(11.04), Some(92.16)));
    let c2 = campaign.method("a3-csq-t2", Arch::ResNet20, csq(2.0), act, &scale);
    rows.push(TableRow::measured(a, &c2, Some(16.93), Some(92.14)));
    let c3 = campaign.method("a3-csq-t3", Arch::ResNet20, csq(3.0), act, &scale);
    rows.push(TableRow::measured(a, &c3, Some(10.49), Some(92.42)));

    // ---- A-Bits = 2 --------------------------------------------------
    let a = "2";
    let act = Some(2);
    let lq = campaign.method(
        "a2-lq2",
        Arch::ResNet20,
        Method::Lq { bits: 2 },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &lq, Some(16.00), Some(90.20)));
    let pact = campaign.method(
        "a2-pact2",
        Arch::ResNet20,
        Method::Pact { bits: 2 },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &pact, Some(16.00), Some(89.70)));
    let dorefa = campaign.method(
        "a2-dorefa2",
        Arch::ResNet20,
        Method::Dorefa { bits: 2 },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &dorefa, Some(16.00), Some(88.20)));
    let bsq = campaign.method("a2-bsq", Arch::ResNet20, Method::Bsq, act, &scale);
    rows.push(TableRow::measured(a, &bsq, Some(18.85), Some(90.19)));
    let c1 = campaign.method("a2-csq-t1", Arch::ResNet20, csq(1.0), act, &scale);
    rows.push(TableRow::measured(a, &c1, Some(22.86), Some(90.08)));
    let c2 = campaign.method("a2-csq-t2", Arch::ResNet20, csq(2.0), act, &scale);
    rows.push(TableRow::measured(a, &c2, Some(16.41), Some(90.33)));

    emit_table("table1", "Table I: ResNet-20 on CIFAR-10 (stand-in)", &rows);
}
