//! Regenerates **Table I** of the CSQ paper: quantization results of
//! ResNet-20 on the CIFAR-10 stand-in, across activation precisions
//! 32 / 3 / 2.
//!
//! Paper columns are echoed next to measured values; absolute accuracies
//! are not comparable (synthetic data, reduced scale — see
//! EXPERIMENTS.md), the *shape* to check is: CSQ rows dominate the
//! efficiency–accuracy frontier at every activation precision.
//!
//! ```text
//! cargo run -p csq-bench --release --bin table1
//! ```

use csq_bench::{emit_table, run_method, Arch, BenchScale, Method, TableRow};

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("table1: ResNet-20 / CIFAR-like, scale {scale:?}");
    let mut rows = Vec::new();

    // ---- A-Bits = 32 -------------------------------------------------
    let a = "32";
    let act = None;
    let fp = run_method(Arch::ResNet20, Method::Fp, act, &scale);
    rows.push(TableRow::measured(a, &fp, Some(1.00), Some(92.62)));
    let lq = run_method(Arch::ResNet20, Method::Lq { bits: 3 }, act, &scale);
    rows.push(TableRow::measured(a, &lq, Some(10.67), Some(92.00)));
    let bsq = run_method(Arch::ResNet20, Method::Bsq, act, &scale);
    rows.push(TableRow::measured(a, &bsq, Some(19.24), Some(91.87)));
    let c1 = run_method(
        Arch::ResNet20,
        Method::Csq {
            target: 1.0,
            finetune: false,
        },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &c1, Some(26.67), Some(91.70)));
    let c2 = run_method(
        Arch::ResNet20,
        Method::Csq {
            target: 2.0,
            finetune: false,
        },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &c2, Some(16.00), Some(92.68)));

    // ---- A-Bits = 3 --------------------------------------------------
    let a = "3";
    let act = Some(3);
    let lq = run_method(Arch::ResNet20, Method::Lq { bits: 3 }, act, &scale);
    rows.push(TableRow::measured(a, &lq, Some(10.67), Some(91.60)));
    let pact = run_method(Arch::ResNet20, Method::Pact { bits: 3 }, act, &scale);
    rows.push(TableRow::measured(a, &pact, Some(10.67), Some(91.10)));
    let dorefa = run_method(Arch::ResNet20, Method::Dorefa { bits: 3 }, act, &scale);
    rows.push(TableRow::measured(a, &dorefa, Some(10.67), Some(89.90)));
    let bsq = run_method(Arch::ResNet20, Method::Bsq, act, &scale);
    rows.push(TableRow::measured(a, &bsq, Some(11.04), Some(92.16)));
    let c2 = run_method(
        Arch::ResNet20,
        Method::Csq {
            target: 2.0,
            finetune: false,
        },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &c2, Some(16.93), Some(92.14)));
    let c3 = run_method(
        Arch::ResNet20,
        Method::Csq {
            target: 3.0,
            finetune: false,
        },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &c3, Some(10.49), Some(92.42)));

    // ---- A-Bits = 2 --------------------------------------------------
    let a = "2";
    let act = Some(2);
    let lq = run_method(Arch::ResNet20, Method::Lq { bits: 2 }, act, &scale);
    rows.push(TableRow::measured(a, &lq, Some(16.00), Some(90.20)));
    let pact = run_method(Arch::ResNet20, Method::Pact { bits: 2 }, act, &scale);
    rows.push(TableRow::measured(a, &pact, Some(16.00), Some(89.70)));
    let dorefa = run_method(Arch::ResNet20, Method::Dorefa { bits: 2 }, act, &scale);
    rows.push(TableRow::measured(a, &dorefa, Some(16.00), Some(88.20)));
    let bsq = run_method(Arch::ResNet20, Method::Bsq, act, &scale);
    rows.push(TableRow::measured(a, &bsq, Some(18.85), Some(90.19)));
    let c1 = run_method(
        Arch::ResNet20,
        Method::Csq {
            target: 1.0,
            finetune: false,
        },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &c1, Some(22.86), Some(90.08)));
    let c2 = run_method(
        Arch::ResNet20,
        Method::Csq {
            target: 2.0,
            finetune: false,
        },
        act,
        &scale,
    );
    rows.push(TableRow::measured(a, &c2, Some(16.41), Some(90.33)));

    emit_table(
        "table1",
        "Table I: ResNet-20 on CIFAR-10 (stand-in)",
        &rows,
    );
}
