//! Regenerates **Table II** of the CSQ paper: quantization results of
//! VGG19BN on the CIFAR-10 stand-in.
//!
//! ZeroQ, ZAQ, QUANOS and the Non-Linear quantizer required systems the
//! paper itself only cites (zero-shot distillation pipelines, multi-task
//! GP search); their rows are echoed as `paper-reported`.
//!
//! ```text
//! cargo run -p csq-bench --release --bin table2 [-- --resume] [-- --summary]
//! ```
//!
//! `--resume` reuses completed rows from the campaign cache. `--summary`
//! prints a per-layer model map (path, kind, params, roles, bits) first.

use csq_bench::{emit_table, print_model_summaries, Arch, BenchScale, Campaign, Method, TableRow};

fn main() {
    let scale = BenchScale::from_env();
    let campaign = Campaign::from_args("table2");
    eprintln!("table2: VGG19BN / CIFAR-like, scale {scale:?}");
    print_model_summaries(&[Arch::Vgg19Bn], &scale);
    let mut rows = Vec::new();
    let csq = |target| Method::Csq {
        target,
        finetune: false,
    };

    // ---- A-Bits = 32 -------------------------------------------------
    let fp = campaign.method("a32-fp", Arch::Vgg19Bn, Method::Fp, None, &scale);
    rows.push(TableRow::measured("32", &fp, Some(1.00), Some(94.22)));
    let lq = campaign.method(
        "a32-lq3",
        Arch::Vgg19Bn,
        Method::Lq { bits: 3 },
        None,
        &scale,
    );
    rows.push(TableRow::measured("32", &lq, Some(10.67), Some(93.80)));
    let c2 = campaign.method("a32-csq-t2", Arch::Vgg19Bn, csq(2.0), None, &scale);
    rows.push(TableRow::measured("32", &c2, Some(16.00), Some(94.10)));

    // ---- A-Bits = 8 --------------------------------------------------
    rows.push(TableRow::paper_only("8", "ZeroQ", "4", Some(8.00), 92.69));
    rows.push(TableRow::paper_only("8", "ZAQ", "4", Some(8.00), 93.06));
    let c3 = campaign.method("a8-csq-t3", Arch::Vgg19Bn, csq(3.0), Some(8), &scale);
    rows.push(TableRow::measured("8", &c3, Some(10.67), Some(93.90)));

    // ---- A-Bits = 4 --------------------------------------------------
    rows.push(TableRow::paper_only("4", "QUANOS", "MP", Some(7.11), 90.70));
    let c3 = campaign.method("a4-csq-t3", Arch::Vgg19Bn, csq(3.0), Some(4), &scale);
    rows.push(TableRow::measured("4", &c3, Some(10.67), Some(93.62)));

    // ---- A-Bits = 3 --------------------------------------------------
    let lq = campaign.method(
        "a3-lq3",
        Arch::Vgg19Bn,
        Method::Lq { bits: 3 },
        Some(3),
        &scale,
    );
    rows.push(TableRow::measured("3", &lq, Some(10.67), Some(93.80)));
    rows.push(TableRow::paper_only(
        "3",
        "Non-Linear",
        "3",
        Some(9.14),
        93.40,
    ));
    let c2 = campaign.method("a3-csq-t2", Arch::Vgg19Bn, csq(2.0), Some(3), &scale);
    rows.push(TableRow::measured("3", &c2, Some(16.00), Some(93.58)));

    emit_table("table2", "Table II: VGG19BN on CIFAR-10 (stand-in)", &rows);
}
