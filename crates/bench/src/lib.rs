//! Experiment harness regenerating every table and figure of the CSQ
//! paper at a single-core-feasible scale.
//!
//! Each `src/bin/*` binary reproduces one table or figure:
//!
//! | binary   | paper artifact |
//! |----------|----------------|
//! | `table1` | Table I — ResNet-20 / CIFAR-10-like |
//! | `table2` | Table II — VGG19BN / CIFAR-10-like |
//! | `table3` | Table III — ResNet-18 & ResNet-50 / ImageNet-like |
//! | `table4` | Table IV — STE vs CSQ-Uniform vs CSQ-MP ablation |
//! | `table5` | Table V — accuracy/size trade-off across targets |
//! | `fig2`   | Figure 2 — λ sweep of precision-vs-epoch |
//! | `fig3`   | Figure 3 — target sweep of precision-vs-epoch |
//! | `fig4`   | Figure 4 — layer-wise precision per target |
//! | `ablations` | design-choice ablations called out in DESIGN.md §5 |
//!
//! Binaries print the paper's rows next to measured values and write
//! JSON/CSV under `bench_results/`. Scale knobs come from environment
//! variables (see [`BenchScale::from_env`]) so the same binaries run in
//! seconds (default), or much longer with more epochs/samples/width.
//! Criterion micro-benchmarks live in `benches/`.

#![deny(missing_docs)]

use csq_baselines::{bsq_factory, dorefa_factory, lq_factory, ste_uniform_factory};
use csq_core::prelude::*;
use csq_core::trainer::{fit, FitConfig, OptimKind};
use csq_data::{Dataset, SyntheticSpec};
use csq_nn::activation::ActMode;
use csq_nn::models::{resnet18, resnet50, resnet_cifar, vgg19bn, ModelConfig};
use csq_nn::weight::float_factory;
use csq_nn::{Layer, Sequential};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Scale parameters shared by every experiment binary.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Training epochs per run.
    pub epochs: usize,
    /// Finetuning epochs for runs that use the finetune phase (Table III).
    pub finetune_epochs: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Model base width.
    pub width: usize,
    /// Dataset noise level.
    pub noise: f32,
    /// Master seed.
    pub seed: u64,
    /// Independent repetitions per table cell (results are averaged;
    /// reduces the single-run variance that dominates at reduced scale).
    pub seeds: usize,
    /// Worker threads of the deterministic parallel runtime (resolved
    /// from `CSQ_THREADS`; results are identical at any value).
    pub threads: usize,
}

impl BenchScale {
    /// Reads the scale from `CSQ_*` environment variables, with
    /// single-core-friendly defaults:
    /// `CSQ_EPOCHS`, `CSQ_FT_EPOCHS`, `CSQ_TRAIN_PER_CLASS`,
    /// `CSQ_TEST_PER_CLASS`, `CSQ_WIDTH`, `CSQ_NOISE`, `CSQ_SEED`.
    /// `CSQ_THREADS` sets the worker-thread count (wall-clock only —
    /// every result is bit-identical at any thread count).
    pub fn from_env() -> Self {
        fn env<T: std::str::FromStr>(key: &str, default: T) -> T {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        BenchScale {
            epochs: env("CSQ_EPOCHS", 20),
            finetune_epochs: env("CSQ_FT_EPOCHS", 8),
            train_per_class: env("CSQ_TRAIN_PER_CLASS", 24),
            test_per_class: env("CSQ_TEST_PER_CLASS", 32),
            width: env("CSQ_WIDTH", 8),
            noise: env("CSQ_NOISE", 0.8),
            seed: env("CSQ_SEED", 0),
            seeds: env("CSQ_SEEDS", 2),
            threads: csq_tensor::par::current_threads(),
        }
    }
}

/// The model families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// ResNet-20 on the CIFAR-10 stand-in (Tables I, IV, V, figures).
    ResNet20,
    /// VGG19BN on the CIFAR-10 stand-in (Table II).
    Vgg19Bn,
    /// ResNet-18 on the ImageNet stand-in (Table III).
    ResNet18,
    /// ResNet-50 on the ImageNet stand-in (Table III).
    ResNet50,
}

impl Arch {
    /// Builds the dataset this architecture is evaluated on.
    pub fn dataset(&self, scale: &BenchScale) -> Dataset {
        let spec = match self {
            Arch::ResNet20 | Arch::Vgg19Bn => SyntheticSpec::cifar_like(scale.seed),
            Arch::ResNet18 | Arch::ResNet50 => SyntheticSpec::imagenet_like(scale.seed),
        }
        .with_samples(scale.train_per_class, scale.test_per_class)
        .with_noise(scale.noise);
        Dataset::synthetic(&spec)
    }

    /// Builds the model with the given weight factory and activation
    /// precision.
    pub fn build(
        &self,
        scale: &BenchScale,
        act_bits: Option<u32>,
        act_mode: ActMode,
        factory: &mut csq_nn::weight::WeightFactory<'_>,
    ) -> Sequential {
        match self {
            Arch::ResNet20 => {
                let cfg = ModelConfig::cifar_like(scale.width, act_bits, scale.seed)
                    .with_act_mode(act_mode);
                resnet_cifar(cfg, factory, 3)
            }
            Arch::Vgg19Bn => {
                let cfg = ModelConfig::cifar_like(scale.width, act_bits, scale.seed)
                    .with_act_mode(act_mode);
                vgg19bn(cfg, factory)
            }
            Arch::ResNet18 => {
                let cfg = ModelConfig::imagenet_like(scale.width, act_bits, scale.seed)
                    .with_act_mode(act_mode);
                resnet18(cfg, factory)
            }
            Arch::ResNet50 => {
                let cfg = ModelConfig::imagenet_like(scale.width, act_bits, scale.seed)
                    .with_act_mode(act_mode);
                resnet50(cfg, factory)
            }
        }
    }
}

/// A quantization method under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Full-precision reference.
    Fp,
    /// Full CSQ with a target average precision; `finetune` enables the
    /// second phase of Algorithm 1.
    Csq {
        /// Target average weight precision.
        target: f32,
        /// Run the mask-frozen finetuning phase.
        finetune: bool,
    },
    /// CSQ-Uniform ablation (Eq. 3, fixed precision, no mask search).
    CsqUniform {
        /// Fixed weight precision.
        bits: usize,
    },
    /// STE-based uniform QAT (Polino et al. \[27\]).
    SteUniform {
        /// Fixed weight precision.
        bits: usize,
    },
    /// DoReFa-Net weights.
    Dorefa {
        /// Fixed weight precision.
        bits: usize,
    },
    /// PACT: DoReFa weights + learnable-clip activations.
    Pact {
        /// Fixed weight precision.
        bits: usize,
    },
    /// LQ-Nets-style learned quantizer.
    Lq {
        /// Fixed weight precision.
        bits: usize,
    },
    /// BSQ bit-level sparsity with periodic pruning.
    Bsq,
}

impl Method {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            Method::Fp => "FP".into(),
            Method::Csq { target, .. } => format!("CSQ T{}", *target as u32),
            Method::CsqUniform { .. } => "CSQ-Uniform".into(),
            Method::SteUniform { .. } => "STE-Uniform".into(),
            Method::Dorefa { .. } => "DoReFa".into(),
            Method::Pact { .. } => "PACT".into(),
            Method::Lq { .. } => "LQ-Nets*".into(),
            Method::Bsq => "BSQ".into(),
        }
    }

    /// The "W-Bits" column entry.
    pub fn w_bits_label(&self) -> String {
        match self {
            Method::Fp => "32".into(),
            Method::Csq { .. } | Method::Bsq => "MP".into(),
            Method::CsqUniform { bits }
            | Method::SteUniform { bits }
            | Method::Dorefa { bits }
            | Method::Pact { bits }
            | Method::Lq { bits } => bits.to_string(),
        }
    }
}

/// Outcome of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Method label.
    pub method: String,
    /// "W-Bits" column entry.
    pub w_bits: String,
    /// Final element-weighted average weight precision.
    pub avg_bits: f32,
    /// Weight compression versus FP32.
    pub compression: f32,
    /// Final held-out accuracy (fraction).
    pub accuracy: f32,
    /// Per-epoch average precision (for the figures).
    pub bits_history: Vec<f32>,
    /// Per-layer final precision (for Figure 4).
    pub layer_bits: Vec<f32>,
    /// Wall-clock seconds for the run.
    pub seconds: f32,
}

/// True when the binary was launched with `--summary`: table binaries
/// then print a per-layer model map before running their campaign.
pub fn summary_requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--summary")
}

/// When `--summary` was passed, prints [`csq_core::model_summary`] — one
/// table per architecture (layer path, kind, parameter count, role
/// breakdown, current hard-counted bits) — at this campaign's scale,
/// using the harness's starting parameterization (8-bit CSQ sources).
pub fn print_model_summaries(archs: &[Arch], scale: &BenchScale) {
    if !summary_requested() {
        return;
    }
    for arch in archs {
        let mut factory = csq_factory(8);
        let mut model = arch.build(scale, None, ActMode::Uniform, &mut factory);
        println!("\n=== {arch:?} per-layer summary (width {}) ===", scale.width);
        println!("{}", model_summary(&mut model));
    }
}

/// BSQ hyperparameters used by the harness (L1 strength tuned so pruning
/// engages at reduced scale; pruning period from the BSQ paper's spirit).
const BSQ_L1: f32 = 1e-3;
const BSQ_PRUNE_EVERY: usize = 3;

/// Trains `method` on `arch` at the given activation precision,
/// averaging over `scale.seeds` independent repetitions (dataset, init
/// and shuffling all reseeded). All methods share the dataset,
/// architecture, initialization stream and optimizer per repetition
/// (Adam at reduced scale — see DESIGN.md §2).
pub fn run_method(
    arch: Arch,
    method: Method,
    act_bits: Option<u32>,
    scale: &BenchScale,
) -> RunResult {
    let reps = scale.seeds.max(1);
    let start = std::time::Instant::now();
    let mut merged: Option<RunResult> = None;
    for rep in 0..reps {
        let mut s = *scale;
        s.seed = scale.seed + 1000 * rep as u64;
        let r = run_method_once(arch, method, act_bits, &s);
        merged = Some(match merged {
            None => r,
            Some(mut acc) => {
                acc.accuracy += r.accuracy;
                acc.avg_bits += r.avg_bits;
                acc.compression += r.compression;
                acc
            }
        });
    }
    let mut out = merged.expect("at least one repetition");
    out.accuracy /= reps as f32;
    out.avg_bits /= reps as f32;
    out.compression /= reps as f32;
    out.seconds = start.elapsed().as_secs_f32();
    out
}

/// One repetition of [`run_method`].
pub fn run_method_once(
    arch: Arch,
    method: Method,
    act_bits: Option<u32>,
    scale: &BenchScale,
) -> RunResult {
    let start = std::time::Instant::now();
    let data = arch.dataset(scale);
    let act_mode = if matches!(method, Method::Pact { .. }) {
        ActMode::Pact
    } else {
        ActMode::Uniform
    };

    let mut result = match method {
        Method::Csq { target, finetune } => {
            let mut factory = csq_factory(8);
            let mut model = arch.build(scale, act_bits, act_mode, &mut factory);
            let mut cfg = CsqConfig::fast(target)
                .with_epochs(scale.epochs)
                .with_seed(scale.seed);
            if finetune {
                cfg = cfg.with_finetune(scale.finetune_epochs);
            }
            let report = match CsqTrainer::new(cfg).train(&mut model, &data) {
                Ok(r) => r,
                Err(e) => panic!("{} training failed: {e}", method.label()),
            };
            RunResult {
                method: method.label(),
                w_bits: method.w_bits_label(),
                avg_bits: report.final_avg_bits,
                compression: report.final_compression,
                accuracy: report.final_test_accuracy,
                bits_history: report.history.iter().map(|h| h.avg_bits).collect(),
                layer_bits: report.scheme.layer_bits(),
                seconds: 0.0,
            }
        }
        _ => {
            let mut factory: Box<dyn FnMut(csq_tensor::Tensor) -> Box<dyn csq_nn::WeightSource>> =
                match method {
                    Method::Fp => Box::new(float_factory()),
                    Method::CsqUniform { bits } => Box::new(csq_uniform_factory(bits)),
                    Method::SteUniform { bits } => Box::new(ste_uniform_factory(bits)),
                    Method::Dorefa { bits } | Method::Pact { bits } => {
                        Box::new(dorefa_factory(bits))
                    }
                    Method::Lq { bits } => Box::new(lq_factory(bits)),
                    Method::Bsq => Box::new(bsq_factory(8, BSQ_L1, BSQ_PRUNE_EVERY)),
                    Method::Csq { .. } => unreachable!("handled above"),
                };
            let mut model = arch.build(scale, act_bits, act_mode, &mut factory);
            let mut cfg = FitConfig::fast(scale.epochs);
            cfg.seed = scale.seed;
            cfg.optim = OptimKind::Adam;
            // Continuous-sparsification parameterizations need the
            // temperature schedule; STE-based ones ignore it.
            if matches!(method, Method::CsqUniform { .. }) {
                cfg.beta =
                    Some(TemperatureSchedule::paper_default(scale.epochs).with_saturation(0.75));
            }
            let history = match fit(&mut model, &data, &cfg, false) {
                Ok(h) => h,
                Err(e) => panic!("{} training failed: {e}", method.label()),
            };
            model.visit_weight_sources(&mut |src| src.finalize());
            let (_, acc) = csq_core::trainer::evaluate(&mut model, &data.test, cfg.batch_size);
            let stats = model_precision(&mut model);
            let scheme = QuantScheme::extract(&mut model);
            RunResult {
                method: method.label(),
                w_bits: method.w_bits_label(),
                avg_bits: stats.avg_bits,
                compression: stats.compression_ratio(),
                accuracy: acc,
                bits_history: history.iter().map(|h| h.avg_bits).collect(),
                layer_bits: scheme.layer_bits(),
                seconds: 0.0,
            }
        }
    };
    result.seconds = start.elapsed().as_secs_f32();
    result
}

/// One row of a printed table; `paper` columns echo the publication,
/// `measured` columns come from [`run_method`].
#[derive(Debug, Clone, Serialize)]
pub struct TableRow {
    /// "A-Bits" column.
    pub a_bits: String,
    /// Method label.
    pub method: String,
    /// "W-Bits" column.
    pub w_bits: String,
    /// Compression reported by the paper (`None` when not reported).
    pub paper_comp: Option<f32>,
    /// Accuracy (%) reported by the paper (`None` when not reported).
    pub paper_acc: Option<f32>,
    /// Measured compression (`None` for paper-only rows).
    pub meas_comp: Option<f32>,
    /// Measured accuracy (%) (`None` for paper-only rows).
    pub meas_acc: Option<f32>,
    /// `measured` or `paper-reported` (methods whose systems the paper
    /// itself only cites).
    pub source: &'static str,
}

impl TableRow {
    /// A row measured by this harness, annotated with the paper's numbers.
    pub fn measured(
        a_bits: &str,
        result: &RunResult,
        paper_comp: Option<f32>,
        paper_acc: Option<f32>,
    ) -> Self {
        TableRow {
            a_bits: a_bits.into(),
            method: result.method.clone(),
            w_bits: result.w_bits.clone(),
            paper_comp,
            paper_acc,
            meas_comp: Some(result.compression),
            meas_acc: Some(result.accuracy * 100.0),
            source: "measured",
        }
    }

    /// A row the paper only cites (HAWQ-V3, HAQ, ZeroQ, …): echoed, not
    /// rerun.
    pub fn paper_only(
        a_bits: &str,
        method: &str,
        w_bits: &str,
        paper_comp: Option<f32>,
        paper_acc: f32,
    ) -> Self {
        TableRow {
            a_bits: a_bits.into(),
            method: method.into(),
            w_bits: w_bits.into(),
            paper_comp,
            paper_acc: Some(paper_acc),
            meas_comp: None,
            meas_acc: None,
            source: "paper-reported",
        }
    }
}

/// Prints a table to stdout and writes JSON + CSV under `bench_results/`.
pub fn emit_table(name: &str, title: &str, rows: &[TableRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<7} {:<13} {:<7} {:>10} {:>9} {:>10} {:>9}  {}",
        "A-Bits", "Method", "W-Bits", "paperComp", "paperAcc", "measComp", "measAcc", "source"
    );
    let fmt = |v: Option<f32>| v.map_or("-".to_string(), |x| format!("{x:.2}"));
    for r in rows {
        println!(
            "{:<7} {:<13} {:<7} {:>10} {:>9} {:>10} {:>9}  {}",
            r.a_bits,
            r.method,
            r.w_bits,
            fmt(r.paper_comp),
            fmt(r.paper_acc),
            fmt(r.meas_comp),
            fmt(r.meas_acc),
            r.source
        );
    }
    write_results(name, &rows.to_vec());
}

/// Writes any serializable result set to `bench_results/<name>.json`.
pub fn write_results<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // non-fatal: printing already happened
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        println!("[written {}]", path.display());
    }
}

/// Run-granularity resume for experiment campaigns.
///
/// Every completed [`run_method`] result is persisted to
/// `bench_results/.campaign/<binary>/<key>.json` through the same
/// atomic-write + CRC32 framing as training snapshots. When a binary is
/// relaunched with `--resume`, cached runs are returned instantly and
/// only the missing ones are retrained — so a campaign killed after row
/// 7 of 12 restarts at row 8, and a truncated or bit-flipped cache file
/// is silently retrained rather than trusted.
#[derive(Debug, Clone)]
pub struct Campaign {
    dir: PathBuf,
    resume: bool,
}

impl Campaign {
    /// A campaign cache for the binary `name`, resuming when `resume`.
    pub fn new(name: &str, resume: bool) -> Campaign {
        Campaign {
            dir: PathBuf::from("bench_results").join(".campaign").join(name),
            resume,
        }
    }

    /// Builds from the process arguments of the binary `name`: passing
    /// `--resume` reuses cached runs, anything else starts fresh (the
    /// cache is still written either way).
    pub fn from_args(name: &str) -> Campaign {
        let resume = std::env::args().skip(1).any(|a| a == "--resume");
        let c = Campaign::new(name, resume);
        if resume {
            println!("[campaign {name}: resuming from {}]", c.dir.display());
        }
        c
    }

    /// Whether `--resume` (or `new(.., true)`) is in effect.
    pub fn resuming(&self) -> bool {
        self.resume
    }

    fn path_for(&self, key: &str) -> PathBuf {
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{safe}.json"))
    }

    /// Returns the cached value for `key` when resuming, otherwise runs
    /// `f` and caches its result. Cache failures are non-fatal: an
    /// unreadable or corrupt entry just means the run is redone.
    pub fn run<T>(&self, key: &str, f: impl FnOnce() -> T) -> T
    where
        T: Serialize + serde::de::DeserializeOwned,
    {
        let path = self.path_for(key);
        if self.resume {
            if let Ok(payload) = csq_nn::persist::read_checksummed(&path) {
                if let Ok(cached) = serde_json::from_slice::<T>(&payload) {
                    println!("[cached {key}]");
                    return cached;
                }
            }
        }
        let result = f();
        if std::fs::create_dir_all(&self.dir).is_ok() {
            if let Ok(payload) = serde_json::to_vec(&result) {
                let _ = csq_nn::persist::write_checksummed(&path, &payload);
            }
        }
        result
    }

    /// [`run_method`] through the cache: the common case for table
    /// binaries.
    pub fn method(
        &self,
        key: &str,
        arch: Arch,
        method: Method,
        act_bits: Option<u32>,
        scale: &BenchScale,
    ) -> RunResult {
        self.run(key, || run_method(arch, method, act_bits, scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_defaults() {
        let s = BenchScale::from_env();
        assert!(s.epochs > 0 && s.width > 0 && s.train_per_class > 0);
    }

    #[test]
    fn labels_match_paper_vocabulary() {
        assert_eq!(Method::Fp.label(), "FP");
        assert_eq!(
            Method::Csq {
                target: 2.0,
                finetune: false
            }
            .label(),
            "CSQ T2"
        );
        assert_eq!(Method::Bsq.w_bits_label(), "MP");
        assert_eq!(Method::SteUniform { bits: 3 }.w_bits_label(), "3");
    }

    #[test]
    fn arch_builds_all_models() {
        let scale = BenchScale {
            epochs: 1,
            finetune_epochs: 0,
            train_per_class: 2,
            test_per_class: 1,
            width: 4,
            noise: 0.5,
            seed: 0,
            seeds: 1,
            threads: 1,
        };
        for arch in [
            Arch::ResNet20,
            Arch::Vgg19Bn,
            Arch::ResNet18,
            Arch::ResNet50,
        ] {
            let mut fac = float_factory();
            let mut boxed: Box<dyn FnMut(csq_tensor::Tensor) -> Box<dyn csq_nn::WeightSource>> =
                Box::new(&mut fac);
            let m = arch.build(&scale, None, ActMode::Uniform, &mut boxed);
            drop(m);
            let d = arch.dataset(&scale);
            assert!(!d.train.is_empty());
        }
    }

    #[test]
    fn campaign_cache_round_trips() {
        let name = "test-campaign-cache";
        let mk = |acc: f32| RunResult {
            method: "FP".into(),
            w_bits: "32".into(),
            avg_bits: 32.0,
            compression: 1.0,
            accuracy: acc,
            bits_history: vec![1.0, 2.0],
            layer_bits: vec![8.0],
            seconds: 0.0,
        };
        let c = Campaign::new(name, false);
        assert!(!c.resuming());
        assert_eq!(c.run("row a/b", || mk(0.5)).accuracy, 0.5);
        // Not resuming: the closure runs again and refreshes the cache.
        assert_eq!(c.run("row a/b", || mk(0.7)).accuracy, 0.7);
        // Resuming: the cached value wins over the closure.
        let resumed = Campaign::new(name, true).run("row a/b", || mk(0.9));
        assert_eq!(resumed.accuracy, 0.7);
        assert_eq!(resumed.bits_history, vec![1.0, 2.0]);
        // A corrupted cache entry is retrained, not trusted.
        let path = Campaign::new(name, true).path_for("row a/b");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            Campaign::new(name, true)
                .run("row a/b", || mk(0.9))
                .accuracy,
            0.9
        );
        std::fs::remove_dir_all(PathBuf::from("bench_results").join(".campaign").join(name)).ok();
    }

    #[test]
    fn summary_is_opt_in() {
        // The test harness is never launched with `--summary`, so the
        // helper must be a cheap no-op.
        assert!(!summary_requested());
        let scale = BenchScale {
            epochs: 1,
            finetune_epochs: 0,
            train_per_class: 2,
            test_per_class: 1,
            width: 4,
            noise: 0.5,
            seed: 0,
            seeds: 1,
            threads: 1,
        };
        print_model_summaries(&[Arch::ResNet20], &scale);
    }

    #[test]
    fn model_summary_uses_paths_for_bench_archs() {
        let scale = BenchScale {
            epochs: 1,
            finetune_epochs: 0,
            train_per_class: 2,
            test_per_class: 1,
            width: 4,
            noise: 0.5,
            seed: 0,
            seeds: 1,
            threads: 1,
        };
        let mut factory = csq_factory(8);
        let mut model = Arch::ResNet20.build(&scale, None, ActMode::Uniform, &mut factory);
        let text = model_summary(&mut model).to_string();
        assert!(text.contains("0 "), "stem row: {text}");
        assert!(text.contains(".main."), "block rows keyed by path: {text}");
    }

    #[test]
    fn tiny_fp_run_completes() {
        let scale = BenchScale {
            epochs: 1,
            finetune_epochs: 0,
            train_per_class: 2,
            test_per_class: 1,
            width: 4,
            noise: 0.5,
            seed: 0,
            seeds: 1,
            threads: 1,
        };
        let r = run_method(Arch::ResNet20, Method::Fp, None, &scale);
        assert_eq!(r.method, "FP");
        assert!((r.compression - 1.0).abs() < 1e-5);
        assert_eq!(r.bits_history.len(), 1);
    }
}
