//! Optimizers and learning-rate schedules.

use crate::layer::{Layer, ParamRole};
use csq_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Deserializes a `path → tensor` buffer list, accepting both the named
/// format (`[["0.weight", {…}], …]`) and the legacy order-keyed format
/// (`[{…}, …]`, schema v1) whose entries get empty names filled in on the
/// first optimizer step after restore.
pub(crate) fn de_named_tensors<'de, D>(d: D) -> Result<Vec<(String, Tensor)>, D::Error>
where
    D: serde::Deserializer<'de>,
{
    #[derive(Deserialize)]
    #[serde(untagged)]
    enum Repr {
        Named(Vec<(String, Tensor)>),
        Legacy(Vec<Tensor>),
    }
    Ok(match Repr::deserialize(d)? {
        Repr::Named(v) => v,
        Repr::Legacy(v) => v.into_iter().map(|t| (String::new(), t)).collect(),
    })
}

/// A serializable snapshot of an optimizer's internal state (momentum
/// buffers / Adam moments), keyed — like the live state — by parameter
/// path. Captured into `TrainSnapshot`s so a resumed run continues with
/// the exact optimizer trajectory of the original. Legacy order-keyed
/// state (schema v1) deserializes with empty names and is upgraded in
/// place on the first step after restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimState {
    /// SGD momentum buffers.
    Sgd {
        /// One `(path, velocity)` entry per parameter, in visitation
        /// order.
        #[serde(deserialize_with = "de_named_tensors")]
        buffers: Vec<(String, Tensor)>,
    },
    /// Adam first/second moments and the bias-correction step counter.
    Adam {
        /// Number of steps taken so far (drives bias correction).
        step_count: u64,
        /// First-moment estimates, one `(path, tensor)` per parameter.
        #[serde(deserialize_with = "de_named_tensors")]
        m: Vec<(String, Tensor)>,
        /// Second-moment estimates, one `(path, tensor)` per parameter.
        #[serde(deserialize_with = "de_named_tensors")]
        v: Vec<(String, Tensor)>,
    },
}

impl OptimState {
    /// Short label of the optimizer family this state belongs to.
    pub fn kind(&self) -> &'static str {
        match self {
            OptimState::Sgd { .. } => "sgd",
            OptimState::Adam { .. } => "adam",
        }
    }

    /// Builds SGD state from order-keyed buffers without parameter names.
    #[deprecated(
        note = "order-keyed optimizer state cannot detect model edits; build `OptimState::Sgd` with named buffers instead"
    )]
    pub fn sgd_from_buffers(buffers: Vec<Tensor>) -> Self {
        OptimState::Sgd {
            buffers: buffers.into_iter().map(|t| (String::new(), t)).collect(),
        }
    }

    /// Builds Adam state from order-keyed moments without parameter names.
    #[deprecated(
        note = "order-keyed optimizer state cannot detect model edits; build `OptimState::Adam` with named moments instead"
    )]
    pub fn adam_from_moments(step_count: u64, m: Vec<Tensor>, v: Vec<Tensor>) -> Self {
        OptimState::Adam {
            step_count,
            m: m.into_iter().map(|t| (String::new(), t)).collect(),
            v: v.into_iter().map(|t| (String::new(), t)).collect(),
        }
    }
}

/// Error importing an [`OptimState`] into an optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimStateError {
    /// The state belongs to a different optimizer family.
    KindMismatch {
        /// Family of the state being imported.
        state: &'static str,
        /// Family of the optimizer importing it.
        optimizer: &'static str,
    },
    /// A buffer's shape differs from the one already allocated for the
    /// same parameter (the model structure changed between capture and
    /// import).
    ShapeMismatch {
        /// Path of the parameter the buffer belongs to (`#index` when the
        /// state carries no names).
        path: String,
        /// Shape already allocated in the optimizer.
        existing: Vec<usize>,
        /// Shape carried by the imported state.
        imported: Vec<usize>,
    },
    /// The parameter path recorded at a buffer position differs from the
    /// one already allocated there (the model structure changed).
    PathMismatch {
        /// Buffer index (visitation order).
        index: usize,
        /// Path already allocated in the optimizer.
        existing: String,
        /// Path carried by the imported state.
        imported: String,
    },
}

impl std::fmt::Display for OptimStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimStateError::KindMismatch { state, optimizer } => write!(
                f,
                "optimizer state is for {state} but the optimizer is {optimizer}"
            ),
            OptimStateError::ShapeMismatch {
                path,
                existing,
                imported,
            } => write!(
                f,
                "optimizer buffer for `{path}` has shape {imported:?} in the imported state \
                 but {existing:?} in the optimizer"
            ),
            OptimStateError::PathMismatch {
                index,
                existing,
                imported,
            } => write!(
                f,
                "optimizer buffer {index} belongs to `{existing}` in the optimizer but \
                 `{imported}` in the imported state"
            ),
        }
    }
}

impl std::error::Error for OptimStateError {}

/// Validates that every restored buffer matches the path and shape already
/// allocated at its position (no-op when the optimizer has not stepped
/// yet — buffers are lazily allocated on first step). Entries with empty
/// names (legacy order-keyed state) are matched positionally.
fn check_buffers(
    existing: &[(String, Tensor)],
    incoming: &[(String, Tensor)],
) -> Result<(), OptimStateError> {
    for (index, ((name_a, a), (name_b, b))) in existing.iter().zip(incoming.iter()).enumerate() {
        if !name_a.is_empty() && !name_b.is_empty() && name_a != name_b {
            return Err(OptimStateError::PathMismatch {
                index,
                existing: name_a.clone(),
                imported: name_b.clone(),
            });
        }
        if a.dims() != b.dims() {
            let path = if !name_b.is_empty() {
                name_b.clone()
            } else if !name_a.is_empty() {
                name_a.clone()
            } else {
                format!("#{index}")
            };
            return Err(OptimStateError::ShapeMismatch {
                path,
                existing: a.dims().to_vec(),
                imported: b.dims().to_vec(),
            });
        }
    }
    Ok(())
}

/// Fills empty (legacy) names in `incoming` from the buffers already
/// allocated at the same positions, so a v1 import into a stepped
/// optimizer keeps its names.
fn adopt_names(
    existing: &[(String, Tensor)],
    mut incoming: Vec<(String, Tensor)>,
) -> Vec<(String, Tensor)> {
    for (entry, (name, _)) in incoming.iter_mut().zip(existing.iter()) {
        if entry.0.is_empty() {
            entry.0 = name.clone();
        }
    }
    incoming
}

/// SGD with momentum and (selective) weight decay — the optimizer used for
/// every experiment in the paper (§IV-A: momentum 0.9, weight decay 5e-4
/// on CIFAR-10 / 1e-4 on ImageNet).
///
/// Momentum buffers are keyed by parameter path, validated against the
/// visited parameter on every step so a model edit is reported by name
/// instead of silently corrupting state. Weight decay only applies to
/// parameters whose [`ParamMut::decay`](crate::ParamMut) flag is set —
/// derived from the parameter's [`ParamRole`] (weights yes; biases, BN
/// affine parameters and quantizer gates no).
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    buffers: Vec<(String, Tensor)>,
}

impl Sgd {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics on negative hyperparameters.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr >= 0.0 && momentum >= 0.0 && weight_decay >= 0.0);
        Sgd {
            lr,
            momentum,
            weight_decay,
            buffers: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (called once per epoch by schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr >= 0.0, "learning rate must be non-negative");
        self.lr = lr;
    }

    /// Applies one update to every parameter of `model`, consuming the
    /// accumulated gradients (gradients are *not* cleared; call
    /// [`Layer::zero_grads`] before the next accumulation).
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.step_with_frozen(model, &[]);
    }

    /// Like [`Sgd::step`], but parameters whose role appears in `frozen`
    /// are left untouched (value and momentum buffer alike). The CSQ
    /// finetune phase freezes [`ParamRole::GateLogit`] this way.
    pub fn step_with_frozen(&mut self, model: &mut dyn Layer, frozen: &[ParamRole]) {
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let buffers = &mut self.buffers;
        model.visit_params(&mut |p| {
            if idx == buffers.len() {
                buffers.push((p.path.to_string(), Tensor::zeros(p.value.dims())));
            }
            let (name, buf) = &mut buffers[idx];
            if name.is_empty() {
                // Legacy order-keyed state: adopt the visited path.
                *name = p.path.to_string();
            } else {
                assert_eq!(
                    name.as_str(),
                    p.path,
                    "parameter order changed between steps (buffer {idx})"
                );
            }
            assert_eq!(
                buf.dims(),
                p.value.dims(),
                "parameter `{}` changed shape between steps",
                p.path
            );
            idx += 1;
            if frozen.contains(&p.role) {
                return;
            }
            let decay = if p.decay { wd } else { 0.0 };
            for ((v, g), b) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(buf.data_mut().iter_mut())
            {
                let eff = g + decay * *v;
                *b = momentum * *b + eff;
                *v -= lr * *b;
            }
        });
    }

    /// Captures the momentum buffers for persistence in a snapshot.
    pub fn export_state(&self) -> OptimState {
        OptimState::Sgd {
            buffers: self.buffers.clone(),
        }
    }

    /// Restores momentum buffers captured by [`Sgd::export_state`].
    ///
    /// # Errors
    ///
    /// [`OptimStateError`] when the state is for a different optimizer
    /// family, or a buffer's path or shape disagrees with ones already
    /// allocated.
    pub fn import_state(&mut self, state: OptimState) -> Result<(), OptimStateError> {
        match state {
            OptimState::Sgd { buffers } => {
                check_buffers(&self.buffers, &buffers)?;
                self.buffers = adopt_names(&self.buffers, buffers);
                Ok(())
            }
            other => Err(OptimStateError::KindMismatch {
                state: other.kind(),
                optimizer: "sgd",
            }),
        }
    }
}

/// Adam optimizer (Kingma & Ba 2015) with decoupled-style selective
/// weight decay.
///
/// The CSQ paper trains with SGD over hundreds of thousands of steps; at
/// the reduced scale of this reproduction the bit-level logit gradients
/// (`∂W/∂m ∝ s·2^b/(2^n−1)`) are orders of magnitude smaller than float
/// weight gradients, and plain SGD cannot traverse the logit space in a
/// few hundred steps. Adam's per-parameter normalization removes that
/// scale disparity, so the fast benchmark configurations use Adam for
/// *every* method (FP, CSQ and all baselines alike — comparisons stay
/// fair). See DESIGN.md §2 for the substitution note.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    m: Vec<(String, Tensor)>,
    v: Vec<(String, Tensor)>,
}

impl Adam {
    /// Creates the optimizer with standard β₁ = 0.9, β₂ = 0.999.
    ///
    /// # Panics
    ///
    /// Panics on negative hyperparameters.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr >= 0.0 && weight_decay >= 0.0);
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr >= 0.0, "learning rate must be non-negative");
        self.lr = lr;
    }

    /// Applies one Adam update to every parameter of `model`.
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.step_with_frozen(model, &[]);
    }

    /// Like [`Adam::step`], but parameters whose role appears in `frozen`
    /// are left untouched (value and moment buffers alike). The CSQ
    /// finetune phase freezes [`ParamRole::GateLogit`] this way.
    pub fn step_with_frozen(&mut self, model: &mut dyn Layer, frozen: &[ParamRole]) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            if idx == ms.len() {
                ms.push((p.path.to_string(), Tensor::zeros(p.value.dims())));
                vs.push((p.path.to_string(), Tensor::zeros(p.value.dims())));
            }
            {
                let (name, buf) = &mut ms[idx];
                if name.is_empty() {
                    // Legacy order-keyed state: adopt the visited path.
                    *name = p.path.to_string();
                    vs[idx].0 = p.path.to_string();
                } else {
                    assert_eq!(
                        name.as_str(),
                        p.path,
                        "parameter order changed between steps (buffer {idx})"
                    );
                }
                assert_eq!(
                    buf.dims(),
                    p.value.dims(),
                    "parameter `{}` changed shape between steps",
                    p.path
                );
            }
            let cur = idx;
            idx += 1;
            if frozen.contains(&p.role) {
                return;
            }
            let decay = if p.decay { wd } else { 0.0 };
            let m = ms[cur].1.data_mut();
            let v = vs[cur].1.data_mut();
            for ((w, &g0), (mi, vi)) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(m.iter_mut().zip(v.iter_mut()))
            {
                let g = g0 + decay * *w;
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }

    /// Captures the moments and step counter for persistence in a
    /// snapshot.
    pub fn export_state(&self) -> OptimState {
        OptimState::Adam {
            step_count: self.step_count,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`Adam::export_state`].
    ///
    /// # Errors
    ///
    /// [`OptimStateError`] when the state is for a different optimizer
    /// family, or a buffer's path or shape disagrees with ones already
    /// allocated.
    pub fn import_state(&mut self, state: OptimState) -> Result<(), OptimStateError> {
        match state {
            OptimState::Adam { step_count, m, v } => {
                check_buffers(&self.m, &m)?;
                check_buffers(&self.v, &v)?;
                self.step_count = step_count;
                self.m = adopt_names(&self.m, m);
                self.v = adopt_names(&self.v, v);
                Ok(())
            }
            other => Err(OptimStateError::KindMismatch {
                state: other.kind(),
                optimizer: "adam",
            }),
        }
    }
}

/// Cosine-annealing learning-rate schedule with optional linear warmup —
/// the schedule the paper uses for all experiments (initial LR 0.1,
/// 5-epoch linear warmup on ImageNet).
#[derive(Debug, Clone, Copy)]
pub struct CosineSchedule {
    base_lr: f32,
    warmup_epochs: usize,
    total_epochs: usize,
    min_lr: f32,
}

impl CosineSchedule {
    /// Creates a schedule annealing from `base_lr` to `min_lr = 0` over
    /// `total_epochs`, with `warmup_epochs` of linear ramp-up first.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs == 0` or `warmup_epochs >= total_epochs`.
    pub fn new(base_lr: f32, warmup_epochs: usize, total_epochs: usize) -> Self {
        assert!(total_epochs > 0, "schedule needs at least one epoch");
        assert!(
            warmup_epochs < total_epochs,
            "warmup must be shorter than the schedule"
        );
        CosineSchedule {
            base_lr,
            warmup_epochs,
            total_epochs,
            min_lr: 0.0,
        }
    }

    /// Learning rate for `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        if epoch < self.warmup_epochs {
            // Linear ramp from base_lr / warmup to base_lr.
            return self.base_lr * (epoch + 1) as f32 / self.warmup_epochs as f32;
        }
        let t = (epoch - self.warmup_epochs) as f32
            / (self.total_epochs - self.warmup_epochs) as f32;
        self.min_lr
            + 0.5 * (self.base_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::loss::softmax_cross_entropy;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sgd_descends_a_quadratic() {
        // Minimize ||W x - 0||² style objective through a Linear layer:
        // loss decreases monotonically-ish under plain SGD.
        let mut layer = Linear::with_float_weights(4, 3, 0);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::uniform(&[8, 4], -1.0, 1.0, &mut rng);
        let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..200 {
            let logits = layer.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            if it == 0 {
                first = loss;
            }
            last = loss;
            layer.zero_grads();
            layer.backward(&grad);
            opt.step(&mut layer);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn weight_decay_shrinks_weights_only() {
        let mut layer = Linear::with_float_weights(2, 2, 1);
        // Set bias to a known value; with zero grads and decay, weights
        // shrink but bias stays.
        layer.visit_params(&mut |p| {
            p.value.fill(1.0);
            p.grad.fill(0.0);
        });
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        opt.step(&mut layer);
        let mut vals = Vec::new();
        let mut decays = Vec::new();
        layer.visit_params(&mut |p| {
            vals.push(p.value.data()[0]);
            decays.push(p.decay);
        });
        assert!(decays[0]);
        assert!(!decays[1]);
        assert!((vals[0] - 0.95).abs() < 1e-6, "weight decayed");
        assert!((vals[1] - 1.0).abs() < 1e-6, "bias untouched");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut layer = Linear::with_float_weights(1, 1, 2);
        layer.visit_params(&mut |p| {
            p.value.fill(0.0);
            p.grad.fill(1.0);
        });
        let mut opt = Sgd::new(1.0, 0.9, 0.0);
        opt.step(&mut layer); // v = 1, w = -1
        layer.visit_params(&mut |p| p.grad.fill(1.0));
        opt.step(&mut layer); // v = 1.9, w = -2.9
        let mut w = 0.0;
        let mut first = true;
        layer.visit_params(&mut |p| {
            if first {
                w = p.value.data()[0];
                first = false;
            }
        });
        assert!((w + 2.9).abs() < 1e-5, "w = {w}");
    }

    #[test]
    fn adam_descends() {
        let mut layer = Linear::with_float_weights(4, 3, 3);
        let mut opt = Adam::new(0.02, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x = init::uniform(&[8, 4], -1.0, 1.0, &mut rng);
        let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..100 {
            let logits = layer.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            if it == 0 {
                first = loss;
            }
            last = loss;
            layer.zero_grads();
            layer.backward(&grad);
            opt.step(&mut layer);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn adam_normalizes_gradient_scales() {
        // Two parameters whose gradients differ by 1000x should move
        // nearly the same distance under Adam (unlike SGD).
        let mut layer = Linear::with_float_weights(2, 1, 5);
        layer.visit_params(&mut |p| p.value.fill(0.0));
        let mut opt = Adam::new(0.1, 0.0);
        for _ in 0..5 {
            let mut first = true;
            layer.visit_params(&mut |p| {
                if first {
                    p.grad.data_mut()[0] = 1000.0;
                    p.grad.data_mut()[1] = 1.0;
                    first = false;
                }
            });
            opt.step(&mut layer);
            layer.zero_grads();
        }
        let mut w = Vec::new();
        let mut first = true;
        layer.visit_params(&mut |p| {
            if first {
                w.extend_from_slice(p.value.data());
                first = false;
            }
        });
        let ratio = w[0] / w[1];
        assert!((ratio - 1.0).abs() < 0.1, "moves {w:?} should match");
    }

    #[test]
    fn adam_decay_only_on_decaying_params() {
        let mut layer = Linear::with_float_weights(2, 2, 6);
        layer.visit_params(&mut |p| {
            p.value.fill(1.0);
            p.grad.fill(0.0);
        });
        let mut opt = Adam::new(0.0, 0.5); // lr 0 => only decay path runs, but lr 0 means no movement
        opt.step(&mut layer);
        let mut vals = Vec::new();
        layer.visit_params(&mut |p| vals.push(p.value.data()[0]));
        // lr = 0 -> nothing moves even with decay.
        assert!((vals[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_schedule_shape() {
        let s = CosineSchedule::new(0.1, 0, 100);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!(s.lr_at(50) < 0.06 && s.lr_at(50) > 0.04);
        assert!(s.lr_at(99) < 0.001);
        // Monotone decreasing without warmup.
        for e in 1..100 {
            assert!(s.lr_at(e) <= s.lr_at(e - 1) + 1e-7);
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = CosineSchedule::new(0.1, 5, 100);
        assert!((s.lr_at(0) - 0.02).abs() < 1e-6);
        assert!((s.lr_at(4) - 0.1).abs() < 1e-6);
        assert!(s.lr_at(5) <= 0.1 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "warmup must be shorter")]
    fn bad_warmup_panics() {
        CosineSchedule::new(0.1, 10, 10);
    }

    #[test]
    fn optim_state_round_trips_sgd_and_adam() {
        // Two models stepped identically diverge unless the second one
        // imports the first one's optimizer state after a desync.
        let mut layer = Linear::with_float_weights(3, 2, 7);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        layer.visit_params(&mut |p| p.grad.fill(1.0));
        opt.step(&mut layer);
        let state = opt.export_state();
        let mut fresh = Sgd::new(0.1, 0.9, 0.0);
        fresh.import_state(state.clone()).unwrap();
        assert_eq!(fresh.export_state(), state);

        let mut adam = Adam::new(0.01, 0.0);
        layer.visit_params(&mut |p| p.grad.fill(1.0));
        adam.step(&mut layer);
        let astate = adam.export_state();
        let mut fresh_adam = Adam::new(0.01, 0.0);
        fresh_adam.import_state(astate.clone()).unwrap();
        assert_eq!(fresh_adam.export_state(), astate);

        // Cross-family import is rejected.
        let err = fresh_adam.import_state(state).unwrap_err();
        assert!(matches!(err, OptimStateError::KindMismatch { .. }));
        assert!(err.to_string().contains("sgd"));
    }

    #[test]
    fn optim_state_import_rejects_shape_mismatch() {
        let mut small = Linear::with_float_weights(2, 2, 8);
        let mut big = Linear::with_float_weights(5, 5, 9);
        let mut opt_small = Sgd::new(0.1, 0.9, 0.0);
        let mut opt_big = Sgd::new(0.1, 0.9, 0.0);
        small.visit_params(&mut |p| p.grad.fill(1.0));
        big.visit_params(&mut |p| p.grad.fill(1.0));
        opt_small.step(&mut small);
        opt_big.step(&mut big);
        let err = opt_small.import_state(opt_big.export_state()).unwrap_err();
        assert_eq!(
            err,
            OptimStateError::ShapeMismatch {
                path: "weight".to_string(),
                existing: vec![2, 2],
                imported: vec![5, 5],
            }
        );
    }

    #[test]
    fn shape_mismatch_display_names_parameter_and_both_shapes() {
        let err = OptimStateError::ShapeMismatch {
            path: "4.main.0.weight".to_string(),
            existing: vec![16, 16, 3, 3],
            imported: vec![32, 16, 3, 3],
        };
        let msg = err.to_string();
        assert!(msg.contains("4.main.0.weight"), "{msg}");
        assert!(msg.contains("[16, 16, 3, 3]"), "{msg}");
        assert!(msg.contains("[32, 16, 3, 3]"), "{msg}");
    }

    #[test]
    fn path_mismatch_display_names_both_paths() {
        let err = OptimStateError::PathMismatch {
            index: 3,
            existing: "0.weight".to_string(),
            imported: "0.bias".to_string(),
        };
        let msg = err.to_string();
        assert!(msg.contains("0.weight") && msg.contains("0.bias"), "{msg}");
    }

    #[test]
    fn optim_state_import_rejects_path_mismatch() {
        let mut a = Linear::with_float_weights(2, 2, 8);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        a.visit_params(&mut |p| p.grad.fill(1.0));
        opt.step(&mut a);
        let mut renamed = opt.export_state();
        if let OptimState::Sgd { buffers } = &mut renamed {
            buffers[0].0 = "somewhere.else".to_string();
        }
        let err = opt.import_state(renamed).unwrap_err();
        assert!(matches!(err, OptimStateError::PathMismatch { index: 0, .. }));
    }

    #[test]
    fn legacy_unnamed_state_adopts_paths_on_import_and_step() {
        use crate::layer::ParamRole;
        let mut layer = Linear::with_float_weights(2, 2, 8);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        layer.visit_params(&mut |p| p.grad.fill(1.0));
        opt.step(&mut layer);
        // Strip names, as a schema-v1 snapshot would deserialize.
        let legacy = match opt.export_state() {
            OptimState::Sgd { buffers } => OptimState::Sgd {
                buffers: buffers.into_iter().map(|(_, t)| (String::new(), t)).collect(),
            },
            other => other,
        };
        let mut fresh = Sgd::new(0.1, 0.9, 0.0);
        fresh.import_state(legacy).unwrap();
        layer.visit_params(&mut |p| p.grad.fill(1.0));
        fresh.step_with_frozen(&mut layer, &[ParamRole::GateLogit]);
        match fresh.export_state() {
            OptimState::Sgd { buffers } => {
                let names: Vec<_> = buffers.iter().map(|(n, _)| n.clone()).collect();
                assert_eq!(names, vec!["weight", "bias"]);
            }
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn frozen_roles_are_skipped_by_step() {
        use crate::layer::ParamRole;
        let mut layer = Linear::with_float_weights(2, 2, 10);
        layer.visit_params(&mut |p| {
            p.value.fill(1.0);
            p.grad.fill(1.0);
        });
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        // Bias frozen: weight moves, bias stays put.
        opt.step_with_frozen(&mut layer, &[ParamRole::Bias]);
        let mut vals = Vec::new();
        layer.visit_params(&mut |p| vals.push((p.role, p.value.data()[0])));
        for (role, v) in vals {
            if role == ParamRole::Bias {
                assert!((v - 1.0).abs() < 1e-6, "frozen bias moved to {v}");
            } else {
                assert!((v - 0.9).abs() < 1e-6, "weight should step to 0.9, got {v}");
            }
        }
    }
}
