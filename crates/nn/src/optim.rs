//! Optimizers and learning-rate schedules.

use crate::layer::Layer;
use csq_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of an optimizer's internal state (momentum
/// buffers / Adam moments), keyed — like the live state — by parameter
/// visitation order. Captured into `TrainSnapshot`s so a resumed run
/// continues with the exact optimizer trajectory of the original.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimState {
    /// SGD momentum buffers.
    Sgd {
        /// One velocity tensor per parameter, in visitation order.
        buffers: Vec<Tensor>,
    },
    /// Adam first/second moments and the bias-correction step counter.
    Adam {
        /// Number of steps taken so far (drives bias correction).
        step_count: u64,
        /// First-moment estimates, in visitation order.
        m: Vec<Tensor>,
        /// Second-moment estimates, in visitation order.
        v: Vec<Tensor>,
    },
}

impl OptimState {
    /// Short label of the optimizer family this state belongs to.
    pub fn kind(&self) -> &'static str {
        match self {
            OptimState::Sgd { .. } => "sgd",
            OptimState::Adam { .. } => "adam",
        }
    }
}

/// Error importing an [`OptimState`] into an optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimStateError {
    /// The state belongs to a different optimizer family.
    KindMismatch {
        /// Family of the state being imported.
        state: &'static str,
        /// Family of the optimizer importing it.
        optimizer: &'static str,
    },
    /// A buffer's shape differs from the one already allocated at its
    /// position (the parameter order changed between capture and import).
    ShapeMismatch {
        /// Buffer index (visitation order).
        index: usize,
    },
}

impl std::fmt::Display for OptimStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimStateError::KindMismatch { state, optimizer } => write!(
                f,
                "optimizer state is for {state} but the optimizer is {optimizer}"
            ),
            OptimStateError::ShapeMismatch { index } => {
                write!(f, "optimizer buffer {index} has a mismatched shape")
            }
        }
    }
}

impl std::error::Error for OptimStateError {}

/// Validates that every restored buffer matches the shape already
/// allocated at its position (no-op when the optimizer has not stepped
/// yet — buffers are lazily allocated on first step).
fn check_shapes(existing: &[Tensor], incoming: &[Tensor]) -> Result<(), OptimStateError> {
    for (index, (a, b)) in existing.iter().zip(incoming.iter()).enumerate() {
        if a.dims() != b.dims() {
            return Err(OptimStateError::ShapeMismatch { index });
        }
    }
    Ok(())
}

/// SGD with momentum and (selective) weight decay — the optimizer used for
/// every experiment in the paper (§IV-A: momentum 0.9, weight decay 5e-4
/// on CIFAR-10 / 1e-4 on ImageNet).
///
/// Momentum buffers are keyed by parameter visitation order, which is
/// stable because the layer graph is fixed after construction. Weight
/// decay only applies to parameters whose [`ParamMut::decay`](crate::ParamMut) flag is set (weights yes; biases, BN affine
/// parameters and quantizer gates no).
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    buffers: Vec<Tensor>,
}

impl Sgd {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics on negative hyperparameters.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr >= 0.0 && momentum >= 0.0 && weight_decay >= 0.0);
        Sgd {
            lr,
            momentum,
            weight_decay,
            buffers: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (called once per epoch by schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr >= 0.0, "learning rate must be non-negative");
        self.lr = lr;
    }

    /// Applies one update to every parameter of `model`, consuming the
    /// accumulated gradients (gradients are *not* cleared; call
    /// [`Layer::zero_grads`] before the next accumulation).
    pub fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let buffers = &mut self.buffers;
        model.visit_params(&mut |p| {
            if idx == buffers.len() {
                buffers.push(Tensor::zeros(p.value.dims()));
            }
            let buf = &mut buffers[idx];
            assert_eq!(
                buf.dims(),
                p.value.dims(),
                "parameter order changed between steps"
            );
            let decay = if p.decay { wd } else { 0.0 };
            for ((v, g), b) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(buf.data_mut().iter_mut())
            {
                let eff = g + decay * *v;
                *b = momentum * *b + eff;
                *v -= lr * *b;
            }
            idx += 1;
        });
    }

    /// Captures the momentum buffers for persistence in a snapshot.
    pub fn export_state(&self) -> OptimState {
        OptimState::Sgd {
            buffers: self.buffers.clone(),
        }
    }

    /// Restores momentum buffers captured by [`Sgd::export_state`].
    ///
    /// # Errors
    ///
    /// [`OptimStateError`] when the state is for a different optimizer
    /// family or a buffer shape disagrees with ones already allocated.
    pub fn import_state(&mut self, state: OptimState) -> Result<(), OptimStateError> {
        match state {
            OptimState::Sgd { buffers } => {
                check_shapes(&self.buffers, &buffers)?;
                self.buffers = buffers;
                Ok(())
            }
            other => Err(OptimStateError::KindMismatch {
                state: other.kind(),
                optimizer: "sgd",
            }),
        }
    }
}

/// Adam optimizer (Kingma & Ba 2015) with decoupled-style selective
/// weight decay.
///
/// The CSQ paper trains with SGD over hundreds of thousands of steps; at
/// the reduced scale of this reproduction the bit-level logit gradients
/// (`∂W/∂m ∝ s·2^b/(2^n−1)`) are orders of magnitude smaller than float
/// weight gradients, and plain SGD cannot traverse the logit space in a
/// few hundred steps. Adam's per-parameter normalization removes that
/// scale disparity, so the fast benchmark configurations use Adam for
/// *every* method (FP, CSQ and all baselines alike — comparisons stay
/// fair). See DESIGN.md §2 for the substitution note.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates the optimizer with standard β₁ = 0.9, β₂ = 0.999.
    ///
    /// # Panics
    ///
    /// Panics on negative hyperparameters.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr >= 0.0 && weight_decay >= 0.0);
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr >= 0.0, "learning rate must be non-negative");
        self.lr = lr;
    }

    /// Applies one Adam update to every parameter of `model`.
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            if idx == ms.len() {
                ms.push(Tensor::zeros(p.value.dims()));
                vs.push(Tensor::zeros(p.value.dims()));
            }
            assert_eq!(
                ms[idx].dims(),
                p.value.dims(),
                "parameter order changed between steps"
            );
            let decay = if p.decay { wd } else { 0.0 };
            let m = ms[idx].data_mut();
            let v = vs[idx].data_mut();
            for ((w, &g0), (mi, vi)) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(m.iter_mut().zip(v.iter_mut()))
            {
                let g = g0 + decay * *w;
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    /// Captures the moments and step counter for persistence in a
    /// snapshot.
    pub fn export_state(&self) -> OptimState {
        OptimState::Adam {
            step_count: self.step_count,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`Adam::export_state`].
    ///
    /// # Errors
    ///
    /// [`OptimStateError`] when the state is for a different optimizer
    /// family or a buffer shape disagrees with ones already allocated.
    pub fn import_state(&mut self, state: OptimState) -> Result<(), OptimStateError> {
        match state {
            OptimState::Adam { step_count, m, v } => {
                check_shapes(&self.m, &m)?;
                check_shapes(&self.v, &v)?;
                self.step_count = step_count;
                self.m = m;
                self.v = v;
                Ok(())
            }
            other => Err(OptimStateError::KindMismatch {
                state: other.kind(),
                optimizer: "adam",
            }),
        }
    }
}

/// Cosine-annealing learning-rate schedule with optional linear warmup —
/// the schedule the paper uses for all experiments (initial LR 0.1,
/// 5-epoch linear warmup on ImageNet).
#[derive(Debug, Clone, Copy)]
pub struct CosineSchedule {
    base_lr: f32,
    warmup_epochs: usize,
    total_epochs: usize,
    min_lr: f32,
}

impl CosineSchedule {
    /// Creates a schedule annealing from `base_lr` to `min_lr = 0` over
    /// `total_epochs`, with `warmup_epochs` of linear ramp-up first.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs == 0` or `warmup_epochs >= total_epochs`.
    pub fn new(base_lr: f32, warmup_epochs: usize, total_epochs: usize) -> Self {
        assert!(total_epochs > 0, "schedule needs at least one epoch");
        assert!(
            warmup_epochs < total_epochs,
            "warmup must be shorter than the schedule"
        );
        CosineSchedule {
            base_lr,
            warmup_epochs,
            total_epochs,
            min_lr: 0.0,
        }
    }

    /// Learning rate for `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        if epoch < self.warmup_epochs {
            // Linear ramp from base_lr / warmup to base_lr.
            return self.base_lr * (epoch + 1) as f32 / self.warmup_epochs as f32;
        }
        let t = (epoch - self.warmup_epochs) as f32
            / (self.total_epochs - self.warmup_epochs) as f32;
        self.min_lr
            + 0.5 * (self.base_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::loss::softmax_cross_entropy;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sgd_descends_a_quadratic() {
        // Minimize ||W x - 0||² style objective through a Linear layer:
        // loss decreases monotonically-ish under plain SGD.
        let mut layer = Linear::with_float_weights(4, 3, 0);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::uniform(&[8, 4], -1.0, 1.0, &mut rng);
        let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..200 {
            let logits = layer.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            if it == 0 {
                first = loss;
            }
            last = loss;
            layer.zero_grads();
            layer.backward(&grad);
            opt.step(&mut layer);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn weight_decay_shrinks_weights_only() {
        let mut layer = Linear::with_float_weights(2, 2, 1);
        // Set bias to a known value; with zero grads and decay, weights
        // shrink but bias stays.
        layer.visit_params(&mut |p| {
            p.value.fill(1.0);
            p.grad.fill(0.0);
        });
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        opt.step(&mut layer);
        let mut vals = Vec::new();
        let mut decays = Vec::new();
        layer.visit_params(&mut |p| {
            vals.push(p.value.data()[0]);
            decays.push(p.decay);
        });
        assert!(decays[0]);
        assert!(!decays[1]);
        assert!((vals[0] - 0.95).abs() < 1e-6, "weight decayed");
        assert!((vals[1] - 1.0).abs() < 1e-6, "bias untouched");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut layer = Linear::with_float_weights(1, 1, 2);
        layer.visit_params(&mut |p| {
            p.value.fill(0.0);
            p.grad.fill(1.0);
        });
        let mut opt = Sgd::new(1.0, 0.9, 0.0);
        opt.step(&mut layer); // v = 1, w = -1
        layer.visit_params(&mut |p| p.grad.fill(1.0));
        opt.step(&mut layer); // v = 1.9, w = -2.9
        let mut w = 0.0;
        let mut first = true;
        layer.visit_params(&mut |p| {
            if first {
                w = p.value.data()[0];
                first = false;
            }
        });
        assert!((w + 2.9).abs() < 1e-5, "w = {w}");
    }

    #[test]
    fn adam_descends() {
        let mut layer = Linear::with_float_weights(4, 3, 3);
        let mut opt = Adam::new(0.02, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x = init::uniform(&[8, 4], -1.0, 1.0, &mut rng);
        let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..100 {
            let logits = layer.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            if it == 0 {
                first = loss;
            }
            last = loss;
            layer.zero_grads();
            layer.backward(&grad);
            opt.step(&mut layer);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn adam_normalizes_gradient_scales() {
        // Two parameters whose gradients differ by 1000x should move
        // nearly the same distance under Adam (unlike SGD).
        let mut layer = Linear::with_float_weights(2, 1, 5);
        layer.visit_params(&mut |p| p.value.fill(0.0));
        let mut opt = Adam::new(0.1, 0.0);
        for _ in 0..5 {
            let mut first = true;
            layer.visit_params(&mut |p| {
                if first {
                    p.grad.data_mut()[0] = 1000.0;
                    p.grad.data_mut()[1] = 1.0;
                    first = false;
                }
            });
            opt.step(&mut layer);
            layer.zero_grads();
        }
        let mut w = Vec::new();
        let mut first = true;
        layer.visit_params(&mut |p| {
            if first {
                w.extend_from_slice(p.value.data());
                first = false;
            }
        });
        let ratio = w[0] / w[1];
        assert!((ratio - 1.0).abs() < 0.1, "moves {w:?} should match");
    }

    #[test]
    fn adam_decay_only_on_decaying_params() {
        let mut layer = Linear::with_float_weights(2, 2, 6);
        layer.visit_params(&mut |p| {
            p.value.fill(1.0);
            p.grad.fill(0.0);
        });
        let mut opt = Adam::new(0.0, 0.5); // lr 0 => only decay path runs, but lr 0 means no movement
        opt.step(&mut layer);
        let mut vals = Vec::new();
        layer.visit_params(&mut |p| vals.push(p.value.data()[0]));
        // lr = 0 -> nothing moves even with decay.
        assert!((vals[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_schedule_shape() {
        let s = CosineSchedule::new(0.1, 0, 100);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!(s.lr_at(50) < 0.06 && s.lr_at(50) > 0.04);
        assert!(s.lr_at(99) < 0.001);
        // Monotone decreasing without warmup.
        for e in 1..100 {
            assert!(s.lr_at(e) <= s.lr_at(e - 1) + 1e-7);
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = CosineSchedule::new(0.1, 5, 100);
        assert!((s.lr_at(0) - 0.02).abs() < 1e-6);
        assert!((s.lr_at(4) - 0.1).abs() < 1e-6);
        assert!(s.lr_at(5) <= 0.1 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "warmup must be shorter")]
    fn bad_warmup_panics() {
        CosineSchedule::new(0.1, 10, 10);
    }

    #[test]
    fn optim_state_round_trips_sgd_and_adam() {
        // Two models stepped identically diverge unless the second one
        // imports the first one's optimizer state after a desync.
        let mut layer = Linear::with_float_weights(3, 2, 7);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        layer.visit_params(&mut |p| p.grad.fill(1.0));
        opt.step(&mut layer);
        let state = opt.export_state();
        let mut fresh = Sgd::new(0.1, 0.9, 0.0);
        fresh.import_state(state.clone()).unwrap();
        assert_eq!(fresh.export_state(), state);

        let mut adam = Adam::new(0.01, 0.0);
        layer.visit_params(&mut |p| p.grad.fill(1.0));
        adam.step(&mut layer);
        let astate = adam.export_state();
        let mut fresh_adam = Adam::new(0.01, 0.0);
        fresh_adam.import_state(astate.clone()).unwrap();
        assert_eq!(fresh_adam.export_state(), astate);

        // Cross-family import is rejected.
        let err = fresh_adam.import_state(state).unwrap_err();
        assert!(matches!(err, OptimStateError::KindMismatch { .. }));
        assert!(err.to_string().contains("sgd"));
    }

    #[test]
    fn optim_state_import_rejects_shape_mismatch() {
        let mut small = Linear::with_float_weights(2, 2, 8);
        let mut big = Linear::with_float_weights(5, 5, 9);
        let mut opt_small = Sgd::new(0.1, 0.9, 0.0);
        let mut opt_big = Sgd::new(0.1, 0.9, 0.0);
        small.visit_params(&mut |p| p.grad.fill(1.0));
        big.visit_params(&mut |p| p.grad.fill(1.0));
        opt_small.step(&mut small);
        opt_big.step(&mut big);
        let err = opt_small.import_state(opt_big.export_state()).unwrap_err();
        assert_eq!(err, OptimStateError::ShapeMismatch { index: 0 });
    }
}
