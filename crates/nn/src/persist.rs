//! Corruption-safe persistence primitives shared by checkpoints and the
//! CSQ training snapshots.
//!
//! Two guarantees, both needed by long-running training campaigns:
//!
//! 1. **Atomicity** — [`atomic_write`] writes to a temporary file in the
//!    destination directory, fsyncs it, then renames it over the target.
//!    A crash mid-write leaves either the old file or the new file, never
//!    a torn mixture.
//! 2. **Integrity** — [`write_checksummed`] frames the payload with a
//!    header carrying a CRC32 and the payload length;
//!    [`read_checksummed`] rejects truncated or bit-flipped files with a
//!    [`PersistError`] instead of handing garbage to the deserializer.
//!
//! The CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) is
//! hand-rolled so the workspace stays free of new external crates.

use std::io::Write;
use std::path::Path;

/// Magic prefix of the checksummed framing. The trailing `1` is the
/// framing version; bump it if the header layout ever changes.
pub const MAGIC: &[u8] = b"CSQF1 ";

/// CRC32 lookup table for the reflected IEEE polynomial, built at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Computes the CRC32 (IEEE) of `bytes`.
///
/// # Example
///
/// ```
/// // Standard test vector: crc32(b"123456789") == 0xCBF43926.
/// assert_eq!(csq_nn::persist::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Error reading a checksummed file.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the expected magic/header.
    MissingHeader,
    /// The payload is shorter than the header's declared length
    /// (truncated write or partial copy).
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload checksum does not match the header (bit rot or a
    /// corrupted transfer).
    ChecksumMismatch {
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 of the payload as read.
        actual: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::MissingHeader => {
                write!(f, "file is not in the checksummed CSQF1 format")
            }
            PersistError::Truncated { expected, actual } => write!(
                f,
                "file truncated: header declares {expected} payload bytes, found {actual}"
            ),
            PersistError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: header {expected:#010x}, payload {actual:#010x} — \
                 file is corrupted"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<PersistError> for std::io::Error {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other),
        }
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory →
/// `fsync` → rename. A crash at any point leaves either the previous file
/// or the complete new one.
///
/// # Errors
///
/// Propagates filesystem errors from create/write/sync/rename.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Atomically writes `payload` to `path` framed with a CRC32 header:
/// `CSQF1 <crc32-hex> <payload-len>\n<payload>`.
///
/// # Errors
///
/// Propagates filesystem errors from [`atomic_write`].
pub fn write_checksummed(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let header = format!(
        "{}{:08x} {}\n",
        String::from_utf8_lossy(MAGIC),
        crc32(payload),
        payload.len()
    );
    let mut framed = Vec::with_capacity(header.len() + payload.len());
    framed.extend_from_slice(header.as_bytes());
    framed.extend_from_slice(payload);
    atomic_write(path, &framed)
}

/// Whether `bytes` carry the checksummed framing header.
pub fn is_checksummed(bytes: &[u8]) -> bool {
    bytes.starts_with(MAGIC)
}

/// Parses and verifies a checksummed byte buffer, returning the payload.
///
/// # Errors
///
/// [`PersistError::MissingHeader`] when the framing is absent or
/// malformed, [`PersistError::Truncated`] / `ChecksumMismatch` when the
/// payload fails verification.
pub fn verify_checksummed(bytes: &[u8]) -> Result<&[u8], PersistError> {
    if !is_checksummed(bytes) {
        return Err(PersistError::MissingHeader);
    }
    let rest = &bytes[MAGIC.len()..];
    let newline = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(PersistError::MissingHeader)?;
    let header = std::str::from_utf8(&rest[..newline]).map_err(|_| PersistError::MissingHeader)?;
    let mut parts = header.split(' ');
    let crc_hex = parts.next().ok_or(PersistError::MissingHeader)?;
    let len_dec = parts.next().ok_or(PersistError::MissingHeader)?;
    let expected_crc =
        u32::from_str_radix(crc_hex, 16).map_err(|_| PersistError::MissingHeader)?;
    let expected_len: usize = len_dec.parse().map_err(|_| PersistError::MissingHeader)?;
    let payload = &rest[newline + 1..];
    if payload.len() != expected_len {
        return Err(PersistError::Truncated {
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(PersistError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    Ok(payload)
}

/// Reads `path` and verifies the checksummed framing, returning the
/// payload.
///
/// # Errors
///
/// [`PersistError`] on i/o failure, missing framing, truncation or
/// checksum mismatch.
pub fn read_checksummed(path: &Path) -> Result<Vec<u8>, PersistError> {
    let bytes = std::fs::read(path)?;
    verify_checksummed(&bytes).map(<[u8]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("csq_persist_{name}_{}", std::process::id()))
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn round_trip() {
        let path = tmp("roundtrip");
        write_checksummed(&path, b"hello snapshot").unwrap();
        let back = read_checksummed(&path).unwrap();
        assert_eq!(back, b"hello snapshot");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_detected() {
        let path = tmp("trunc");
        write_checksummed(&path, b"some payload that will be cut").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = read_checksummed(&path).unwrap_err();
        assert!(matches!(err, PersistError::Truncated { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_detected() {
        let path = tmp("flip");
        write_checksummed(&path, b"payload under protection").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checksummed(&path).unwrap_err();
        assert!(matches!(err, PersistError::ChecksumMismatch { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_header_detected() {
        let path = tmp("nohdr");
        std::fs::write(&path, b"just some bytes").unwrap();
        let err = read_checksummed(&path).unwrap_err();
        assert!(matches!(err, PersistError::MissingHeader), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_replaces_existing() {
        let path = tmp("atomic");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_chain_composes() {
        // PersistError converts into io::Error and exposes source().
        let err: std::io::Error = PersistError::MissingHeader.into();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let err = PersistError::Io(std::io::Error::new(std::io::ErrorKind::Other, "x"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
