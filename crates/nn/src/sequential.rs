//! Sequential layer container.

use crate::layer::{Layer, ParamMut, ParamPath};
use crate::weight::WeightSource;
use csq_tensor::Tensor;

/// Runs a list of layers in order; the workhorse container for every model
/// in the workspace.
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a container from a list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Creates an empty container.
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over contained layers.
    pub fn iter(&self) -> std::slice::Iter<'_, Box<dyn Layer>> {
        self.layers.iter()
    }

    /// Iterates mutably over contained layers, so analysis and summary
    /// code can traverse without whole-model visitor workarounds.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Box<dyn Layer>> {
        self.layers.iter_mut()
    }

    /// Shared access to the layer at `index`, if it exists.
    pub fn get(&self, index: usize) -> Option<&(dyn Layer + '_)> {
        match self.layers.get(index) {
            Some(l) => Some(l.as_ref()),
            None => None,
        }
    }

    /// Mutable access to the layer at `index`, if it exists.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut (dyn Layer + '_)> {
        match self.layers.get_mut(index) {
            Some(l) => Some(l.as_mut()),
            None => None,
        }
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            path.scoped_index(i, |p| layer.visit_params_named(p, &mut *f));
        }
    }

    fn visit_weight_sources_named(
        &mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &mut dyn WeightSource),
    ) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            path.scoped_index(i, |p| layer.visit_weight_sources_named(p, &mut *f));
        }
    }

    fn visit_state_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &mut [f32])) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            path.scoped_index(i, |p| layer.visit_state_named(p, &mut *f));
        }
    }

    fn visit_kinds(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'static str)) {
        f(path.as_str(), self.kind());
        for (i, layer) in self.layers.iter_mut().enumerate() {
            path.scoped_index(i, |p| layer.visit_kinds(p, &mut *f));
        }
    }

    fn export_infer_ops(
        &self,
        path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        for (i, layer) in self.layers.iter().enumerate() {
            path.scoped_index(i, |p| layer.export_infer_ops(p, ops))?;
        }
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;

    #[test]
    fn forward_composes_in_order() {
        let mut m = Sequential::new(vec![
            Box::new(Linear::with_float_weights(2, 3, 0)),
            Box::new(Relu::new()),
            Box::new(Linear::with_float_weights(3, 1, 1)),
        ]);
        let y = m.forward(&Tensor::ones(&[4, 2]), false);
        assert_eq!(y.dims(), &[4, 1]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut m = Sequential::new(vec![
            Box::new(Linear::with_float_weights(2, 2, 2)),
            Box::new(Relu::new()),
        ]);
        let x = Tensor::ones(&[1, 2]);
        let y = m.forward(&x, true);
        let gx = m.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn param_visitation_covers_all_layers() {
        let mut m = Sequential::new(vec![
            Box::new(Linear::with_float_weights(2, 2, 0)),
            Box::new(Linear::with_float_weights(2, 2, 1)),
        ]);
        let mut count = 0;
        m.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4, "two weights + two biases");
    }

    #[test]
    fn params_are_indexed_by_child_position() {
        let mut m = Sequential::new(vec![
            Box::new(Linear::with_float_weights(2, 2, 0)),
            Box::new(Relu::new()),
            Box::new(Linear::with_float_weights(2, 2, 1)),
        ]);
        let paths = crate::layer::collect_param_paths(&mut m);
        assert_eq!(paths, vec!["0.weight", "0.bias", "2.weight", "2.bias"]);
    }

    #[test]
    fn get_mut_and_iter_mut_expose_layers() {
        let mut m = Sequential::new(vec![
            Box::new(Linear::with_float_weights(2, 2, 0)),
            Box::new(Relu::new()),
        ]);
        assert_eq!(m.get(0).map(|l| l.kind()), Some("linear"));
        assert_eq!(m.get_mut(1).map(|l| l.kind()), Some("relu"));
        assert!(m.get_mut(2).is_none());
        let kinds: Vec<_> = m.iter_mut().map(|l| l.kind()).collect();
        assert_eq!(kinds, vec!["linear", "relu"]);
    }

    #[test]
    fn visit_kinds_reports_container_and_children() {
        let mut m = Sequential::new(vec![
            Box::new(Linear::with_float_weights(2, 2, 0)),
            Box::new(Relu::new()),
        ]);
        let mut seen = Vec::new();
        let mut path = crate::layer::ParamPath::root();
        m.visit_kinds(&mut path, &mut |p, k| seen.push((p.to_string(), k)));
        assert_eq!(
            seen,
            vec![
                (String::new(), "sequential"),
                ("0".to_string(), "linear"),
                ("1".to_string(), "relu"),
            ]
        );
    }
}
