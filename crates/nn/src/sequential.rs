//! Sequential layer container.

use crate::layer::{Layer, ParamMut};
use crate::weight::WeightSource;
use csq_tensor::Tensor;

/// Runs a list of layers in order; the workhorse container for every model
/// in the workspace.
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a container from a list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Creates an empty container.
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over contained layers.
    pub fn iter(&self) -> std::slice::Iter<'_, Box<dyn Layer>> {
        self.layers.iter()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamMut<'_>)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_weight_sources(&mut self, f: &mut dyn FnMut(&mut dyn WeightSource)) {
        for layer in &mut self.layers {
            layer.visit_weight_sources(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_state(f);
        }
    }

    fn kind(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;

    #[test]
    fn forward_composes_in_order() {
        let mut m = Sequential::new(vec![
            Box::new(Linear::with_float_weights(2, 3, 0)),
            Box::new(Relu::new()),
            Box::new(Linear::with_float_weights(3, 1, 1)),
        ]);
        let y = m.forward(&Tensor::ones(&[4, 2]), false);
        assert_eq!(y.dims(), &[4, 1]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut m = Sequential::new(vec![
            Box::new(Linear::with_float_weights(2, 2, 2)),
            Box::new(Relu::new()),
        ]);
        let x = Tensor::ones(&[1, 2]);
        let y = m.forward(&x, true);
        let gx = m.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn param_visitation_covers_all_layers() {
        let mut m = Sequential::new(vec![
            Box::new(Linear::with_float_weights(2, 2, 0)),
            Box::new(Linear::with_float_weights(2, 2, 1)),
        ]);
        let mut count = 0;
        m.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4, "two weights + two biases");
    }
}
