//! Pooling and flattening layers.

use crate::layer::{Layer, ParamPath};
use csq_tensor::pool;
use csq_tensor::Tensor;

/// Max pooling with a square window.
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims)
}

impl MaxPool2d {
    /// Creates a max-pool layer with window `window` and stride `stride`.
    ///
    /// # Panics
    ///
    /// Panics if either is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0, "window and stride must be positive");
        MaxPool2d {
            window,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = pool::maxpool2d(input, self.window, self.stride);
        if train {
            self.cache = Some((out.argmax, input.dims().to_vec()));
        } else {
            self.cache = None;
        }
        out.output
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let (argmax, dims) = crate::layer::take_cache(
            &mut self.cache,
            "MaxPool2d::backward called before a training forward",
        );
        pool::maxpool2d_backward(grad_output, &argmax, &dims)
    }

    fn export_infer_ops(
        &self,
        _path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(crate::export::InferOp::MaxPool {
            window: self.window,
            stride: self.stride,
        });
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Average pooling with a square window.
#[derive(Debug)]
pub struct AvgPool2d {
    window: usize,
    stride: usize,
    input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with window `window`, stride `stride`.
    ///
    /// # Panics
    ///
    /// Panics if either is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0, "window and stride must be positive");
        AvgPool2d {
            window,
            stride,
            input_dims: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_dims = Some(input.dims().to_vec());
        } else {
            self.input_dims = None;
        }
        pool::avgpool2d(input, self.window, self.stride)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = crate::layer::take_cache(
            &mut self.input_dims,
            "AvgPool2d::backward called before a training forward",
        );
        pool::avgpool2d_backward(grad_output, &dims, self.window, self.stride)
    }

    fn export_infer_ops(
        &self,
        _path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(crate::export::InferOp::AvgPool {
            window: self.window,
            stride: self.stride,
        });
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "avgpool2d"
    }
}

/// Global average pooling `[N, C, H, W] → [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_dims = Some(input.dims().to_vec());
        } else {
            self.input_dims = None;
        }
        pool::global_avgpool(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = crate::layer::take_cache(
            &mut self.input_dims,
            "GlobalAvgPool::backward called before a training forward",
        );
        pool::global_avgpool_backward(grad_output, &dims)
    }

    fn export_infer_ops(
        &self,
        _path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(crate::export::InferOp::GlobalAvgPool);
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "global_avgpool"
    }
}

/// Flattens `[N, ...] → [N, prod(...)]`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_dims = Some(input.dims().to_vec());
        } else {
            self.input_dims = None;
        }
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = crate::layer::take_cache(
            &mut self.input_dims,
            "Flatten::backward called before a training forward",
        );
        grad_output.reshape(&dims)
    }

    fn export_infer_ops(
        &self,
        _path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(crate::export::InferOp::Flatten);
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_round_trip() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        let gx = p.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.sum(), 4.0);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 2, 2]);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 12]);
        let gx = f.backward(&y);
        assert_eq!(gx.dims(), &[2, 3, 2, 2]);
    }

    #[test]
    fn global_avgpool_layer() {
        let mut g = GlobalAvgPool::new();
        let x = Tensor::full(&[1, 2, 3, 3], 2.0);
        let y = g.forward(&x, true);
        assert_eq!(y.dims(), &[1, 2]);
        assert!(y.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        let gx = g.backward(&Tensor::ones(&[1, 2]));
        assert!((gx.sum() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn avgpool_layer_backward_shape() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = p.forward(&x, true);
        let gx = p.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
    }
}
