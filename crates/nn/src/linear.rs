//! Fully-connected layer with a pluggable weight parameterization.

use crate::layer::{Layer, ParamMut, ParamPath, ParamRole};
use crate::weight::{FloatWeight, WeightSource};
use csq_tensor::{init, reduce, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A fully-connected layer `y = x · Wᵀ + b` with weight shape
/// `[out_features, in_features]`, produced by a [`WeightSource`].
#[derive(Debug)]
pub struct Linear {
    weight: Box<dyn WeightSource>,
    bias: Option<(Tensor, Tensor)>,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
    cached_weight: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer from an already-constructed weight source.
    ///
    /// # Panics
    ///
    /// Panics if the source's element count mismatches
    /// `out_features * in_features`.
    pub fn new(
        weight: Box<dyn WeightSource>,
        in_features: usize,
        out_features: usize,
        bias: bool,
    ) -> Self {
        assert_eq!(
            weight.numel(),
            in_features * out_features,
            "weight source element count mismatch"
        );
        Linear {
            weight,
            bias: bias.then(|| (Tensor::zeros(&[out_features]), Tensor::zeros(&[out_features]))),
            in_features,
            out_features,
            cached_input: None,
            cached_weight: None,
        }
    }

    /// Creates a float-weight layer with Kaiming-uniform init and a bias.
    pub fn with_float_weights(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = init::kaiming_uniform(&[out_features, in_features], &mut rng);
        Self::new(Box::new(FloatWeight::new(w)), in_features, out_features, true)
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight source (scheme inspection).
    pub fn weight_source(&self) -> &dyn WeightSource {
        self.weight.as_ref()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 2, "linear input must be [batch, features]");
        assert_eq!(
            input.dims()[1],
            self.in_features,
            "linear input feature mismatch"
        );
        let w = self.weight.materialize();
        let mut y = input.matmul_nt(&w);
        if let Some((b, _)) = &self.bias {
            y = y.add_row_bias(b);
        }
        if train {
            self.cached_input = Some(input.clone());
            self.cached_weight = Some(w);
        } else {
            self.cached_input = None;
            self.cached_weight = None;
        }
        y
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = crate::layer::take_cache(
            &mut self.cached_input,
            "Linear::backward called before a training forward",
        );
        let w = crate::layer::take_cache(
            &mut self.cached_weight,
            "Linear::backward missing cached weight",
        );
        // dW = dYᵀ · X ; dX = dY · W ; db = Σ_batch dY
        // The two matmuls are independent — run them as a deterministic
        // fork/join pair (each side is itself row-parallel).
        let (grad_w, grad_input) = csq_tensor::par::par_join(
            || grad_output.matmul_tn(&input),
            || grad_output.matmul(&w),
        );
        self.weight.backward(&grad_w);
        if let Some((_, gb)) = &mut self.bias {
            gb.add_assign_t(&reduce::sum_rows(grad_output));
        }
        grad_input
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        path.scoped("weight", |p| self.weight.visit_params_named(p, &mut *f));
        if let Some((b, gb)) = &mut self.bias {
            path.scoped("bias", |p| f(ParamMut::new(p.as_str(), ParamRole::Bias, b, gb)));
        }
    }

    fn visit_weight_sources_named(
        &mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &mut dyn WeightSource),
    ) {
        path.scoped("weight", |p| f(p.as_str(), self.weight.as_mut()));
    }

    fn export_infer_ops(
        &self,
        path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(crate::export::InferOp::Linear {
            weight: path.scoped("weight", |p| p.as_str().to_string()),
            in_features: self.in_features,
            out_features: self.out_features,
            bias: self.bias.as_ref().map(|(b, _)| b.data().to_vec()),
        });
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::collect_grads;

    #[test]
    fn forward_matches_manual_matmul() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let mut layer = Linear::new(Box::new(FloatWeight::new(w)), 3, 2, false);
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[1.0 - 3.0, 4.0 - 6.0]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut layer = Linear::with_float_weights(3, 2, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x = init::uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let gy = init::uniform(&[4, 2], -1.0, 1.0, &mut rng);

        layer.forward(&x, true);
        let gx = layer.backward(&gy);
        let analytic = collect_grads(&mut layer);

        fn bump(layer: &mut Linear, pi: usize, delta: f32) {
            let mut seen = 0usize;
            layer.visit_params(&mut |p| {
                let n = p.value.numel();
                if pi >= seen && pi < seen + n {
                    p.value.data_mut()[pi - seen] += delta;
                }
                seen += n;
            });
        }
        let eps = 1e-2f32;
        let mut max_err = 0.0f32;
        for pi in 0..analytic.len() {
            bump(&mut layer, pi, eps);
            let lp = layer.forward(&x, false).dot(&gy);
            bump(&mut layer, pi, -2.0 * eps);
            let lm = layer.forward(&x, false).dot(&gy);
            bump(&mut layer, pi, eps);
            max_err = max_err.max(((lp - lm) / (2.0 * eps) - analytic[pi]).abs());
        }
        assert!(max_err < 5e-2, "max param-grad error {max_err}");

        // Input gradient via directional finite difference.
        let dx = init::uniform(x.dims(), -1.0, 1.0, &mut rng);
        let mut xp = x.clone();
        xp.axpy(eps, &dx);
        let mut xm = x.clone();
        xm.axpy(-eps, &dx);
        let num = (layer.forward(&xp, false).dot(&gy) - layer.forward(&xm, false).dot(&gy))
            / (2.0 * eps);
        assert!((num - gx.dot(&dx)).abs() < 5e-2);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn wrong_input_width_panics() {
        let mut layer = Linear::with_float_weights(3, 2, 0);
        layer.forward(&Tensor::zeros(&[1, 4]), false);
    }
}
