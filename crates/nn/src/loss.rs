//! Loss functions.

use csq_tensor::reduce::{log_softmax_rows, softmax_rows};
use csq_tensor::Tensor;

/// Mean softmax cross-entropy over a batch, with its exact gradient.
///
/// `logits` is `[batch, classes]`; `labels` holds one class index per
/// batch row. Returns `(loss, dL/dlogits)`.
///
/// # Panics
///
/// Panics when `labels.len()` differs from the batch size or any label is
/// out of range.
///
/// # Example
///
/// ```
/// use csq_nn::softmax_cross_entropy;
/// use csq_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0], &[2, 2]);
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
/// assert!(loss < 0.1, "confident correct predictions give low loss");
/// assert_eq!(grad.dims(), &[2, 2]);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n, "one label per batch row required");
    for &l in labels {
        assert!(l < k, "label {l} out of range for {k} classes");
    }

    let log_p = log_softmax_rows(logits);
    let mut loss = 0.0f32;
    for (i, &l) in labels.iter().enumerate() {
        loss -= log_p.data()[i * k + l];
    }
    loss /= n as f32;

    // dL/dlogits = (softmax − one_hot) / batch
    let mut grad = softmax_rows(logits);
    let scale = 1.0 / n as f32;
    for (i, &l) in labels.iter().enumerate() {
        grad.data_mut()[i * k + l] -= 1.0;
    }
    grad.scale_inplace(scale);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[3, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let logits = init::uniform(&[5, 7], -2.0, 2.0, &mut rng);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3, 4]);
        for i in 0..5 {
            let s: f32 = grad.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!(s.abs() < 1e-6, "row {i} grad sum {s}");
        }
    }

    #[test]
    fn grad_matches_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let logits = init::uniform(&[2, 3], -1.0, 1.0, &mut rng);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &labels).0
                - softmax_cross_entropy(&lm, &labels).0)
                / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "index {i}: numeric {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn loss_decreases_toward_correct_class() {
        let bad = Tensor::from_vec(vec![3.0, 0.0], &[1, 2]);
        let good = Tensor::from_vec(vec![0.0, 3.0], &[1, 2]);
        let (l_bad, _) = softmax_cross_entropy(&bad, &[1]);
        let (l_good, _) = softmax_cross_entropy(&good, &[1]);
        assert!(l_good < l_bad);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 2]), &[5]);
    }
}
