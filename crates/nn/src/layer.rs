//! The [`Layer`] trait and parameter-visitor plumbing.

use crate::weight::WeightSource;
use csq_tensor::Tensor;

/// A mutable view of one trainable parameter handed to a visitor.
///
/// The optimizer identifies parameters purely by visitation order, which is
/// stable because the layer graph is static after construction.
#[derive(Debug)]
pub struct ParamMut<'a> {
    /// Current parameter value.
    pub value: &'a mut Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: &'a mut Tensor,
    /// Whether weight decay applies to this parameter. Following standard
    /// practice (and the paper's baselines), decay applies to weights but
    /// not to biases, BatchNorm affine parameters, quantizer scales or
    /// gate logits.
    pub decay: bool,
}

/// A differentiable network layer with exact, hand-derived adjoints.
///
/// The contract between [`forward`](Layer::forward) and
/// [`backward`](Layer::backward):
///
/// * `backward` may only be called after `forward` with `train = true`,
///   and consumes cached activations from that call;
/// * `backward` receives `dL/d(output)` and returns `dL/d(input)`,
///   *accumulating* parameter gradients internally (they are cleared by
///   [`Layer::zero_grads`]).
pub trait Layer: std::fmt::Debug {
    /// Runs the layer. `train` enables behaviours that differ between
    /// training and evaluation (caching for backward, batch statistics,
    /// activation-range tracking).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_output`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a training-mode `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visits every trainable parameter in a stable order.
    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamMut<'_>)) {}

    /// Visits every [`WeightSource`] in the layer (quantized weight
    /// parameterizations), in a stable order. Used by the CSQ trainer to
    /// schedule temperatures and account model precision.
    fn visit_weight_sources(&mut self, _f: &mut dyn FnMut(&mut dyn WeightSource)) {}

    /// Visits every non-parameter state buffer the layer mutates while
    /// training (BatchNorm running statistics, activation-range EMAs) in a
    /// stable order. Snapshot/resume uses this to capture state that
    /// `visit_params` does not cover; layers without such state inherit
    /// the no-op default.
    fn visit_state(&mut self, _f: &mut dyn FnMut(&mut [f32])) {}

    /// Clears all accumulated parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.grad.fill(0.0));
    }

    /// Human-readable layer kind, for debugging and scheme printouts.
    fn kind(&self) -> &'static str;
}

/// Takes a value cached by a training-mode `forward`, panicking with the
/// layer's documented contract message when absent. Centralizes the
/// backward-before-forward contract check so layer code stays free of
/// ad-hoc `expect` calls.
pub(crate) fn take_cache<T>(cache: &mut Option<T>, msg: &str) -> T {
    match cache.take() {
        Some(c) => c,
        None => panic!("{msg}"),
    }
}

/// Counts the trainable scalar parameters reachable from `layer`.
pub fn count_params(layer: &mut dyn Layer) -> usize {
    let mut n = 0usize;
    layer.visit_params(&mut |p| n += p.value.numel());
    n
}

/// Collects the flattened gradient of every parameter (testing helper).
pub fn collect_grads(layer: &mut dyn Layer) -> Vec<f32> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
    out
}

/// Collects the flattened value of every parameter (testing helper).
pub fn collect_values(layer: &mut dyn Layer) -> Vec<f32> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;

    #[test]
    fn count_params_linear() {
        let mut l = Linear::with_float_weights(3, 4, 0);
        // weight 4x3 + bias 4
        assert_eq!(count_params(&mut l), 16);
    }

    #[test]
    fn zero_grads_clears_everything() {
        let mut l = Linear::with_float_weights(2, 2, 0);
        let x = Tensor::ones(&[1, 2]);
        let y = l.forward(&x, true);
        l.backward(&Tensor::ones(y.dims()));
        assert!(collect_grads(&mut l).iter().any(|&g| g != 0.0));
        l.zero_grads();
        assert!(collect_grads(&mut l).iter().all(|&g| g == 0.0));
    }
}
