//! The [`Layer`] trait and parameter-visitor plumbing.
//!
//! Every trainable parameter is visited with a stable hierarchical *path*
//! (assigned by the containers and leaf layers, e.g. `4.main.0.weight.m_b`
//! for the mask logits of the first conv inside the fourth top-level
//! layer's main branch) and a [`ParamRole`] describing what the parameter
//! is. Optimizer policy (weight decay, finetune freezing) derives from the
//! role; persistence (optimizer state, checkpoints, train snapshots) keys
//! on the path, so an architectural edit is detected by name instead of
//! silently corrupting positionally-restored state.

use crate::weight::WeightSource;
use csq_tensor::Tensor;

/// The role a trainable parameter plays in its layer.
///
/// Policy derives from the role instead of per-call-site booleans: weight
/// decay applies to [`Weight`](ParamRole::Weight) tensors only (with the
/// PACT clip threshold as a documented exception), and the CSQ finetune
/// phase freezes [`GateLogit`](ParamRole::GateLogit) parameters by role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamRole {
    /// A (latent) weight tensor of a linear or convolution layer.
    Weight,
    /// A bias vector.
    Bias,
    /// A BatchNorm affine parameter (γ or β).
    BnAffine,
    /// A quantizer scale (CSQ `s`, PACT α).
    QuantScale,
    /// Per-element bit-plane logits (CSQ `m_p`/`m_n`, BSQ `b_p`/`b_n`).
    BitLogit,
    /// Per-layer selection-gate logits (CSQ `m_B`, searched activation
    /// precision `m_A`).
    GateLogit,
}

impl ParamRole {
    /// Whether weight decay applies to parameters of this role by default.
    /// Standard practice (and the paper's baselines): decay weights,
    /// nothing else.
    pub fn decays(self) -> bool {
        matches!(self, ParamRole::Weight)
    }

    /// Short human-readable label, for summary tables.
    pub fn label(self) -> &'static str {
        match self {
            ParamRole::Weight => "weight",
            ParamRole::Bias => "bias",
            ParamRole::BnAffine => "bn",
            ParamRole::QuantScale => "scale",
            ParamRole::BitLogit => "bit_logit",
            ParamRole::GateLogit => "gate_logit",
        }
    }
}

/// A growable hierarchical path buffer threaded through the named
/// visitors.
///
/// Containers push one segment per child ([`Sequential`](crate::Sequential)
/// uses the child index, [`Residual`](crate::Residual) uses
/// `main`/`shortcut`/`post`), leaf layers push one segment per parameter
/// (`weight`, `bias`, `gamma`, …) and weight sources push one per logit
/// group (`s`, `m_p`, …); segments are joined with `.`.
#[derive(Debug, Default, Clone)]
pub struct ParamPath {
    buf: String,
}

impl ParamPath {
    /// An empty path (the model root).
    pub fn root() -> Self {
        ParamPath { buf: String::new() }
    }

    /// The current path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Runs `f` with `segment` appended, restoring the path afterwards.
    pub fn scoped<R>(&mut self, segment: &str, f: impl FnOnce(&mut ParamPath) -> R) -> R {
        let keep = self.buf.len();
        if keep > 0 {
            self.buf.push('.');
        }
        self.buf.push_str(segment);
        let out = f(self);
        self.buf.truncate(keep);
        out
    }

    /// [`scoped`](ParamPath::scoped) with a numeric segment (container
    /// child index).
    pub fn scoped_index<R>(&mut self, index: usize, f: impl FnOnce(&mut ParamPath) -> R) -> R {
        self.scoped(&index.to_string(), f)
    }
}

/// A mutable view of one trainable parameter handed to a visitor.
#[derive(Debug)]
pub struct ParamMut<'a> {
    /// Stable hierarchical path of this parameter (see [`ParamPath`]).
    pub path: &'a str,
    /// What the parameter is; drives decay and freeze policy.
    pub role: ParamRole,
    /// Current parameter value.
    pub value: &'a mut Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: &'a mut Tensor,
    /// Whether weight decay applies to this parameter. Derived from
    /// `role` by [`ParamMut::new`]; overridable for documented exceptions
    /// via [`ParamMut::with_decay`].
    pub decay: bool,
}

impl<'a> ParamMut<'a> {
    /// Creates a parameter view with the role-derived decay policy.
    pub fn new(
        path: &'a str,
        role: ParamRole,
        value: &'a mut Tensor,
        grad: &'a mut Tensor,
    ) -> Self {
        ParamMut {
            path,
            role,
            decay: role.decays(),
            value,
            grad,
        }
    }

    /// Overrides the role-derived decay policy (PACT decays its clip
    /// threshold even though it is a scale, not a weight).
    pub fn with_decay(mut self, decay: bool) -> Self {
        self.decay = decay;
        self
    }
}

/// A differentiable network layer with exact, hand-derived adjoints.
///
/// The contract between [`forward`](Layer::forward) and
/// [`backward`](Layer::backward):
///
/// * `backward` may only be called after `forward` with `train = true`,
///   and consumes cached activations from that call;
/// * `backward` receives `dL/d(output)` and returns `dL/d(input)`,
///   *accumulating* parameter gradients internally (they are cleared by
///   [`Layer::zero_grads`]).
///
/// Parameter access goes through the `*_named` visitors, which thread a
/// [`ParamPath`] so every parameter, weight source and state buffer is
/// identified by a stable name. The unsuffixed variants are provided
/// convenience wrappers that start from the model root; implementations
/// override the `*_named` methods only.
pub trait Layer: std::fmt::Debug {
    /// Runs the layer. `train` enables behaviours that differ between
    /// training and evaluation (caching for backward, batch statistics,
    /// activation-range tracking).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_output`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a training-mode `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visits every trainable parameter in a stable order, handing the
    /// visitor each parameter's hierarchical path and role. Containers
    /// override this to scope `path` per child; layers without parameters
    /// inherit the no-op default.
    fn visit_params_named(&mut self, _path: &mut ParamPath, _f: &mut dyn FnMut(ParamMut<'_>)) {}

    /// Visits every trainable parameter in a stable order (path-agnostic
    /// wrapper over [`visit_params_named`](Layer::visit_params_named);
    /// paths start at the model root).
    fn visit_params(&mut self, f: &mut dyn FnMut(ParamMut<'_>)) {
        let mut path = ParamPath::root();
        self.visit_params_named(&mut path, f);
    }

    /// Visits every [`WeightSource`] in the layer with its hierarchical
    /// path (the owning layer's weight scope, e.g. `0.weight`), in a
    /// stable order.
    fn visit_weight_sources_named(
        &mut self,
        _path: &mut ParamPath,
        _f: &mut dyn FnMut(&str, &mut dyn WeightSource),
    ) {
    }

    /// Visits every [`WeightSource`] in the layer (quantized weight
    /// parameterizations), in a stable order. Used by the CSQ trainer to
    /// schedule temperatures and account model precision.
    fn visit_weight_sources(&mut self, f: &mut dyn FnMut(&mut dyn WeightSource)) {
        let mut path = ParamPath::root();
        self.visit_weight_sources_named(&mut path, &mut |_, src| f(src));
    }

    /// Visits every non-parameter state buffer the layer mutates while
    /// training (BatchNorm running statistics, activation-range EMAs)
    /// with its hierarchical path, in a stable order. Snapshot/resume
    /// uses this to capture state that the parameter visitors do not
    /// cover; layers without such state inherit the no-op default.
    fn visit_state_named(&mut self, _path: &mut ParamPath, _f: &mut dyn FnMut(&str, &mut [f32])) {}

    /// Visits every non-parameter state buffer (path-agnostic wrapper
    /// over [`visit_state_named`](Layer::visit_state_named)).
    fn visit_state(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        let mut path = ParamPath::root();
        self.visit_state_named(&mut path, &mut |_, s| f(s));
    }

    /// Visits this layer — and, for containers, every nested layer —
    /// reporting each one's path and kind. The default reports the layer
    /// itself at the current path; containers override it to recurse with
    /// scoped child segments.
    fn visit_kinds(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'static str)) {
        f(path.as_str(), self.kind());
    }

    /// Clears all accumulated parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.grad.fill(0.0));
    }

    /// Appends this layer's evaluation-mode dataflow to an inference
    /// plan (see [`crate::export`]). Weighted ops reference their weight
    /// tensors by the same hierarchical paths the parameter registry
    /// reports; containers recurse with scoped child segments. The
    /// default reports the layer as unsupported — every servable layer
    /// overrides it.
    fn export_infer_ops(
        &self,
        path: &mut ParamPath,
        _ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        Err(crate::export::ExportError::Unsupported {
            path: path.as_str().to_string(),
            kind: self.kind().to_string(),
        })
    }

    /// Human-readable layer kind, for debugging and scheme printouts.
    fn kind(&self) -> &'static str;
}

/// Takes a value cached by a training-mode `forward`, panicking with the
/// layer's documented contract message when absent. Centralizes the
/// backward-before-forward contract check so layer code stays free of
/// ad-hoc `expect` calls.
pub(crate) fn take_cache<T>(cache: &mut Option<T>, msg: &str) -> T {
    match cache.take() {
        Some(c) => c,
        None => panic!("{msg}"),
    }
}

/// Counts the trainable scalar parameters reachable from `layer`.
pub fn count_params(layer: &mut dyn Layer) -> usize {
    let mut n = 0usize;
    layer.visit_params(&mut |p| n += p.value.numel());
    n
}

/// Collects the flattened gradient of every parameter (testing helper).
pub fn collect_grads(layer: &mut dyn Layer) -> Vec<f32> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
    out
}

/// Collects the flattened value of every parameter (testing helper).
pub fn collect_values(layer: &mut dyn Layer) -> Vec<f32> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
    out
}

/// Collects the path of every trainable parameter, in visitation order.
pub fn collect_param_paths(layer: &mut dyn Layer) -> Vec<String> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push(p.path.to_string()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;

    #[test]
    fn count_params_linear() {
        let mut l = Linear::with_float_weights(3, 4, 0);
        // weight 4x3 + bias 4
        assert_eq!(count_params(&mut l), 16);
    }

    #[test]
    fn zero_grads_clears_everything() {
        let mut l = Linear::with_float_weights(2, 2, 0);
        let x = Tensor::ones(&[1, 2]);
        let y = l.forward(&x, true);
        l.backward(&Tensor::ones(y.dims()));
        assert!(collect_grads(&mut l).iter().any(|&g| g != 0.0));
        l.zero_grads();
        assert!(collect_grads(&mut l).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn scoped_appends_and_restores_segments() {
        let mut p = ParamPath::root();
        assert_eq!(p.as_str(), "");
        p.scoped("a", |p| {
            assert_eq!(p.as_str(), "a");
            p.scoped_index(3, |p| assert_eq!(p.as_str(), "a.3"));
            assert_eq!(p.as_str(), "a");
        });
        assert_eq!(p.as_str(), "");
    }

    #[test]
    fn linear_param_paths_and_roles() {
        let mut l = Linear::with_float_weights(3, 4, 0);
        let mut seen = Vec::new();
        l.visit_params(&mut |p| seen.push((p.path.to_string(), p.role)));
        assert_eq!(
            seen,
            vec![
                ("weight".to_string(), ParamRole::Weight),
                ("bias".to_string(), ParamRole::Bias),
            ]
        );
    }

    #[test]
    fn only_weights_decay_by_role() {
        assert!(ParamRole::Weight.decays());
        for role in [
            ParamRole::Bias,
            ParamRole::BnAffine,
            ParamRole::QuantScale,
            ParamRole::BitLogit,
            ParamRole::GateLogit,
        ] {
            assert!(!role.decays(), "{role:?} must not decay");
        }
    }

    #[test]
    fn with_decay_overrides_role_policy() {
        let mut v = Tensor::ones(&[1]);
        let mut g = Tensor::zeros(&[1]);
        let p = ParamMut::new("x", ParamRole::QuantScale, &mut v, &mut g).with_decay(true);
        assert!(p.decay);
        assert_eq!(p.role, ParamRole::QuantScale);
    }
}
