//! Residual connection container (ResNet basic and bottleneck blocks).

use crate::layer::{Layer, ParamMut, ParamPath};
use crate::sequential::Sequential;
use crate::weight::WeightSource;
use csq_tensor::Tensor;

/// A residual block: `y = post(main(x) + shortcut(x))`.
///
/// The `main` path holds the block's convolutions (two 3×3 convs for a
/// basic block, a 1×1/3×3/1×1 stack for a bottleneck); the optional
/// `shortcut` is the projection used when shape changes (stride > 1 or a
/// channel change); `post` is the final ReLU (plus activation
/// quantization when configured). The actual ResNet block contents are
/// assembled by [`crate::models`].
#[derive(Debug)]
pub struct Residual {
    main: Sequential,
    shortcut: Option<Sequential>,
    post: Sequential,
}

impl Residual {
    /// Creates a residual block from its three parts. Pass
    /// `shortcut = None` for an identity skip connection.
    pub fn new(main: Sequential, shortcut: Option<Sequential>, post: Sequential) -> Self {
        Residual {
            main,
            shortcut,
            post,
        }
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let m = self.main.forward(input, train);
        let s = match &mut self.shortcut {
            Some(sc) => sc.forward(input, train),
            None => input.clone(),
        };
        assert_eq!(
            m.dims(),
            s.dims(),
            "residual main/shortcut shape mismatch — block misconfigured"
        );
        self.post.forward(&m.add(&s), train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let g = self.post.backward(grad_output);
        let g_main = self.main.backward(&g);
        let g_short = match &mut self.shortcut {
            Some(sc) => sc.backward(&g),
            None => g,
        };
        g_main.add(&g_short)
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        path.scoped("main", |p| self.main.visit_params_named(p, &mut *f));
        if let Some(sc) = &mut self.shortcut {
            path.scoped("shortcut", |p| sc.visit_params_named(p, &mut *f));
        }
        path.scoped("post", |p| self.post.visit_params_named(p, &mut *f));
    }

    fn visit_weight_sources_named(
        &mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &mut dyn WeightSource),
    ) {
        path.scoped("main", |p| self.main.visit_weight_sources_named(p, &mut *f));
        if let Some(sc) = &mut self.shortcut {
            path.scoped("shortcut", |p| sc.visit_weight_sources_named(p, &mut *f));
        }
        path.scoped("post", |p| self.post.visit_weight_sources_named(p, &mut *f));
    }

    fn visit_state_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &mut [f32])) {
        path.scoped("main", |p| self.main.visit_state_named(p, &mut *f));
        if let Some(sc) = &mut self.shortcut {
            path.scoped("shortcut", |p| sc.visit_state_named(p, &mut *f));
        }
        path.scoped("post", |p| self.post.visit_state_named(p, &mut *f));
    }

    fn visit_kinds(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &'static str)) {
        f(path.as_str(), self.kind());
        path.scoped("main", |p| self.main.visit_kinds(p, &mut *f));
        if let Some(sc) = &mut self.shortcut {
            path.scoped("shortcut", |p| sc.visit_kinds(p, &mut *f));
        }
        path.scoped("post", |p| self.post.visit_kinds(p, &mut *f));
    }

    fn export_infer_ops(
        &self,
        path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        let mut main = Vec::new();
        path.scoped("main", |p| self.main.export_infer_ops(p, &mut main))?;
        let mut shortcut = Vec::new();
        if let Some(s) = &self.shortcut {
            path.scoped("shortcut", |p| s.export_infer_ops(p, &mut shortcut))?;
        }
        let mut post = Vec::new();
        path.scoped("post", |p| self.post.export_infer_ops(p, &mut post))?;
        ops.push(crate::export::InferOp::Residual {
            main,
            shortcut,
            post,
        });
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::batchnorm::BatchNorm2d;
    use crate::conv::Conv2d;
    use csq_tensor::conv::ConvSpec;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_block() -> Residual {
        let spec = ConvSpec::new(3, 1, 1);
        let main = Sequential::new(vec![
            Box::new(Conv2d::with_float_weights(2, 2, spec, false, 1)),
            Box::new(BatchNorm2d::new(2)),
            Box::new(Relu::new()),
            Box::new(Conv2d::with_float_weights(2, 2, spec, false, 2)),
            Box::new(BatchNorm2d::new(2)),
        ]);
        let post = Sequential::new(vec![Box::new(Relu::new()) as Box<dyn Layer>]);
        Residual::new(main, None, post)
    }

    #[test]
    fn identity_skip_preserves_shape() {
        let mut block = tiny_block();
        let x = Tensor::ones(&[2, 2, 4, 4]);
        let y = block.forward(&x, false);
        assert_eq!(y.dims(), x.dims());
    }

    #[test]
    fn backward_adds_skip_gradient() {
        let mut block = tiny_block();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = init::uniform(&[2, 2, 4, 4], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, true);
        let gy = init::uniform(y.dims(), -1.0, 1.0, &mut rng);
        let gx = block.backward(&gy);

        // Directional finite-difference check through the whole block.
        let eps = 1e-2f32;
        let dx = init::uniform(x.dims(), -1.0, 1.0, &mut rng);
        let mut block2 = tiny_block();
        let mut xp = x.clone();
        xp.axpy(eps, &dx);
        let mut xm = x.clone();
        xm.axpy(-eps, &dx);
        let lp = block2.forward(&xp, true).dot(&gy);
        let lm = block2.forward(&xm, true).dot(&gy);
        let num = (lp - lm) / (2.0 * eps);
        assert!(
            (num - gx.dot(&dx)).abs() < 5e-2 * (1.0 + num.abs()),
            "numeric {num} vs analytic {}",
            gx.dot(&dx)
        );
    }

    #[test]
    fn projection_shortcut_changes_channels() {
        let spec = ConvSpec::new(3, 2, 1);
        let main = Sequential::new(vec![
            Box::new(Conv2d::with_float_weights(2, 4, spec, false, 1)) as Box<dyn Layer>,
            Box::new(BatchNorm2d::new(4)),
        ]);
        let shortcut = Sequential::new(vec![
            Box::new(Conv2d::with_float_weights(2, 4, ConvSpec::new(1, 2, 0), false, 2))
                as Box<dyn Layer>,
            Box::new(BatchNorm2d::new(4)),
        ]);
        let post = Sequential::new(vec![Box::new(Relu::new()) as Box<dyn Layer>]);
        let mut block = Residual::new(main, Some(shortcut), post);
        let y = block.forward(&Tensor::ones(&[1, 2, 8, 8]), false);
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn param_paths_name_branches() {
        let mut block = tiny_block();
        let paths = crate::layer::collect_param_paths(&mut block);
        assert_eq!(
            paths,
            vec![
                "main.0.weight",
                "main.1.gamma",
                "main.1.beta",
                "main.3.weight",
                "main.4.gamma",
                "main.4.beta",
            ]
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn misconfigured_block_panics() {
        let spec = ConvSpec::new(3, 2, 1); // stride 2 but identity skip
        let main = Sequential::new(vec![
            Box::new(Conv2d::with_float_weights(2, 2, spec, false, 1)) as Box<dyn Layer>,
        ]);
        let post = Sequential::empty();
        let mut block = Residual::new(main, None, post);
        block.forward(&Tensor::ones(&[1, 2, 8, 8]), false);
    }
}
