//! Inference-plan export: a serializable description of a model's
//! evaluation-mode dataflow.
//!
//! Serving a trained model must not require the training-side layer
//! objects (weight sources, gradient buffers, caches). This module
//! defines [`InferOp`], a flat, serde-serializable description of what a
//! model *computes* at evaluation time, and
//! [`Layer::export_infer_ops`](crate::Layer::export_infer_ops), which
//! every servable layer implements to emit its ops.
//!
//! Key properties:
//!
//! * **Weights by path, not by value.** Weighted ops ([`InferOp::Conv2d`],
//!   [`InferOp::Linear`], [`InferOp::DepthwiseConv2d`]) reference their
//!   weight tensor by the same stable hierarchical path the parameter
//!   registry uses (e.g. `4.main.0.weight`). The serving artifact pairs
//!   the op list with packed weights keyed by those paths, so this crate
//!   stays independent of the quantizer's packed format.
//! * **Folded constants.** BatchNorm exports as a per-channel affine
//!   ([`InferOp::ChannelAffine`]) computed from its *running* statistics
//!   (`scale = γ/√(var+ε)`, `shift = β − mean·scale`), and biases are
//!   embedded as plain `f32` vectors — evaluation-mode semantics with no
//!   training state left.
//! * **Exact eval formulas.** Activation quantizers export their frozen
//!   range and level count ([`InferOp::UniformActQuant`]) so an executor
//!   can reproduce the evaluation forward bit-for-bit.
//!
//! Layers that have no evaluation-time effect (dropout, passthrough
//! activation quantizers) export [`InferOp::Identity`]. Layers that make
//! no sense in a serving plan (none in this workspace's model builders)
//! fall back to the trait default, which reports
//! [`ExportError::Unsupported`] with the offending layer's path and kind.

use serde::{Deserialize, Serialize};

/// One evaluation-mode operation in an exported inference plan.
///
/// Ops are executed in order, each consuming the previous op's output;
/// [`InferOp::Residual`] nests three sub-plans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InferOp {
    /// 2-D convolution; weight referenced by registry path.
    Conv2d {
        /// Hierarchical path of the weight tensor (e.g. `0.weight`).
        weight: String,
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
        /// Per-output-channel bias, if the layer has one.
        bias: Option<Vec<f32>>,
    },
    /// Depthwise 2-D convolution (one `[1, K, K]` filter per channel).
    DepthwiseConv2d {
        /// Hierarchical path of the weight tensor.
        weight: String,
        /// Channel count (input = output).
        channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Fully-connected layer; weight referenced by registry path.
    Linear {
        /// Hierarchical path of the weight tensor.
        weight: String,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Per-output bias, if the layer has one.
        bias: Option<Vec<f32>>,
    },
    /// Per-channel affine `y[c] = x[c]·scale[c] + shift[c]` over NCHW
    /// activations — folded BatchNorm running statistics.
    ChannelAffine {
        /// Per-channel multiplier `γ/√(var+ε)`.
        scale: Vec<f32>,
        /// Per-channel offset `β − mean·scale`.
        shift: Vec<f32>,
    },
    /// Rectified linear unit.
    Relu,
    /// Uniform activation quantization on `[0, range]` with `levels`
    /// steps: `y = round(clamp(x, 0, range)/step)·step`,
    /// `step = range/levels`. Exported by `ActQuant` (frozen running
    /// range) and `Pact` (learned α).
    UniformActQuant {
        /// Upper clip boundary (already floored at the layer's 1e-6).
        range: f32,
        /// Number of quantization steps, `2^bits − 1`.
        levels: f32,
    },
    /// Max pooling with a square window.
    MaxPool {
        /// Window size.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling with a square window.
    AvgPool {
        /// Window size.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling `[N, C, H, W] → [N, C]`.
    GlobalAvgPool,
    /// Flatten trailing dimensions: `[N, ...] → [N, prod]`.
    Flatten,
    /// Evaluation-mode no-op (dropout, passthrough quantizers).
    Identity,
    /// Residual block `y = post(main(x) + shortcut(x))`; an empty
    /// `shortcut` is the identity.
    Residual {
        /// Main branch sub-plan.
        main: Vec<InferOp>,
        /// Shortcut branch sub-plan (empty = identity).
        shortcut: Vec<InferOp>,
        /// Post-merge sub-plan (activation after the add).
        post: Vec<InferOp>,
    },
}

/// Why a model could not be exported as an inference plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportError {
    /// A layer kind has no inference-plan representation.
    Unsupported {
        /// Hierarchical path of the offending layer.
        path: String,
        /// The layer's `kind()` tag.
        kind: String,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Unsupported { path, kind } => write!(
                f,
                "layer `{path}` of kind `{kind}` cannot be exported as an inference op"
            ),
        }
    }
}

impl std::error::Error for ExportError {}

/// Exports a model's evaluation-mode dataflow as a flat op list
/// (path-agnostic wrapper over
/// [`Layer::export_infer_ops`](crate::Layer::export_infer_ops); weight
/// paths start at the model root, matching the parameter registry).
pub fn export_model(model: &dyn crate::Layer) -> Result<Vec<InferOp>, ExportError> {
    let mut path = crate::ParamPath::root();
    let mut ops = Vec::new();
    model.export_infer_ops(&mut path, &mut ops)?;
    Ok(ops)
}

/// Counts ops in a plan, recursing into residual branches
/// (diagnostics/reporting).
pub fn count_ops(ops: &[InferOp]) -> usize {
    ops.iter()
        .map(|op| match op {
            InferOp::Residual {
                main,
                shortcut,
                post,
            } => 1 + count_ops(main) + count_ops(shortcut) + count_ops(post),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, Relu, Residual, Sequential};
    use csq_tensor::conv::ConvSpec;

    #[test]
    fn sequential_model_exports_ops_with_registry_paths() {
        let model = Sequential::new(vec![
            Box::new(Conv2d::with_float_weights(3, 4, ConvSpec::new(3, 1, 1), false, 0)),
            Box::new(BatchNorm2d::new(4)),
            Box::new(Relu::new()),
            Box::new(GlobalAvgPool::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::with_float_weights(4, 10, 1)),
        ]);
        let ops = export_model(&model).unwrap();
        assert_eq!(ops.len(), 6);
        match &ops[0] {
            InferOp::Conv2d {
                weight,
                in_channels,
                out_channels,
                bias,
                ..
            } => {
                assert_eq!(weight, "0.weight");
                assert_eq!((*in_channels, *out_channels), (3, 4));
                assert!(bias.is_none());
            }
            other => panic!("expected conv, got {other:?}"),
        }
        match &ops[1] {
            InferOp::ChannelAffine { scale, shift } => {
                // Fresh BN: γ = 1, var = 1, mean = 0, β = 0 → scale ≈ 1,
                // shift = 0.
                assert_eq!(scale.len(), 4);
                assert!(scale.iter().all(|s| (s - 1.0).abs() < 1e-4));
                assert!(shift.iter().all(|s| s.abs() < 1e-6));
            }
            other => panic!("expected channel affine, got {other:?}"),
        }
        assert_eq!(ops[2], InferOp::Relu);
        assert_eq!(ops[3], InferOp::GlobalAvgPool);
        assert_eq!(ops[4], InferOp::Flatten);
        match &ops[5] {
            InferOp::Linear { weight, bias, .. } => {
                assert_eq!(weight, "5.weight");
                assert!(bias.is_some());
            }
            other => panic!("expected linear, got {other:?}"),
        }
    }

    #[test]
    fn residual_export_scopes_branch_weight_paths() {
        let main = Sequential::new(vec![Box::new(Conv2d::with_float_weights(
            4,
            4,
            ConvSpec::new(3, 1, 1),
            false,
            0,
        ))]);
        let post = Sequential::new(vec![Box::new(Relu::new())]);
        let model = Sequential::new(vec![Box::new(Residual::new(main, None, post))]);
        let ops = export_model(&model).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(count_ops(&ops), 3);
        match &ops[0] {
            InferOp::Residual {
                main,
                shortcut,
                post,
            } => {
                assert!(shortcut.is_empty());
                assert_eq!(post.as_slice(), &[InferOp::Relu]);
                match &main[0] {
                    InferOp::Conv2d { weight, .. } => assert_eq!(weight, "0.main.0.weight"),
                    other => panic!("expected conv, got {other:?}"),
                }
            }
            other => panic!("expected residual, got {other:?}"),
        }
    }

    #[test]
    fn infer_ops_serde_round_trip() {
        let model = Sequential::new(vec![
            Box::new(Conv2d::with_float_weights(2, 2, ConvSpec::new(3, 1, 1), true, 7)),
            Box::new(Relu::new()),
        ]);
        let ops = export_model(&model).unwrap();
        let json = serde_json::to_string(&ops).unwrap();
        let back: Vec<InferOp> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ops);
    }
}
