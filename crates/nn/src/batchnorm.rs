//! 2-D batch normalization with exact backward.

use crate::layer::{Layer, ParamMut, ParamPath, ParamRole};
use csq_tensor::Tensor;

/// Batch normalization over the channel axis of NCHW activations.
///
/// Training mode normalizes with batch statistics and maintains running
/// estimates (PyTorch convention: `running = (1 − m)·running + m·batch`
/// with `m = 0.1`); evaluation mode normalizes with the running
/// estimates. The backward pass is the exact analytic gradient through
/// the batch statistics.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    eps: f32,
    momentum: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with
    /// `γ = 1`, `β = 0`.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            eps: 1e-5,
            momentum: 0.1,
            channels,
            cache: None,
        }
    }

    /// Number of channels this layer normalizes.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Running mean estimate (inspection/testing).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance estimate (inspection/testing).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "BatchNorm2d requires NCHW input");
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        assert_eq!(c, self.channels, "channel mismatch");
        let hw = h * w;
        let count = (n * hw) as f32;
        let mut out = Tensor::zeros(input.dims());

        if train {
            assert!(n * hw > 1, "batch norm needs more than one value per channel");
            let mut x_hat = Tensor::zeros(input.dims());
            let mut inv_stds = vec![0.0f32; c];
            for ci in 0..c {
                let mut mean = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    mean += input.data()[base..base + hw].iter().sum::<f32>();
                }
                mean /= count;
                let mut var = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    var += input.data()[base..base + hw]
                        .iter()
                        .map(|&v| (v - mean) * (v - mean))
                        .sum::<f32>();
                }
                var /= count;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                inv_stds[ci] = inv_std;
                let (g, b) = (self.gamma.data()[ci], self.beta.data()[ci]);
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    for k in 0..hw {
                        let xh = (input.data()[base + k] - mean) * inv_std;
                        x_hat.data_mut()[base + k] = xh;
                        out.data_mut()[base + k] = g * xh + b;
                    }
                }
                let m = self.momentum;
                self.running_mean.data_mut()[ci] =
                    (1.0 - m) * self.running_mean.data()[ci] + m * mean;
                // Unbiased variance for the running estimate, as PyTorch does.
                let unbiased = var * count / (count - 1.0);
                self.running_var.data_mut()[ci] =
                    (1.0 - m) * self.running_var.data()[ci] + m * unbiased;
            }
            self.cache = Some(BnCache {
                x_hat,
                inv_std: inv_stds,
                dims: input.dims().to_vec(),
            });
        } else {
            for ci in 0..c {
                let mean = self.running_mean.data()[ci];
                let inv_std = 1.0 / (self.running_var.data()[ci] + self.eps).sqrt();
                let (g, b) = (self.gamma.data()[ci], self.beta.data()[ci]);
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    for k in 0..hw {
                        out.data_mut()[base + k] =
                            g * (input.data()[base + k] - mean) * inv_std + b;
                    }
                }
            }
            self.cache = None;
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = crate::layer::take_cache(
            &mut self.cache,
            "BatchNorm2d::backward called before a training forward",
        );
        assert_eq!(grad_output.dims(), cache.dims.as_slice());
        let (n, c, h, w) = (cache.dims[0], cache.dims[1], cache.dims[2], cache.dims[3]);
        let hw = h * w;
        let count = (n * hw) as f32;
        let mut grad_input = Tensor::zeros(&cache.dims);

        for ci in 0..c {
            // Channel-wise sums: Σ dy and Σ dy·x̂.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for k in 0..hw {
                    let dy = grad_output.data()[base + k];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[base + k];
                }
            }
            self.grad_beta.data_mut()[ci] += sum_dy;
            self.grad_gamma.data_mut()[ci] += sum_dy_xhat;

            let g = self.gamma.data()[ci];
            let inv_std = cache.inv_std[ci];
            let mean_dy = sum_dy / count;
            let mean_dy_xhat = sum_dy_xhat / count;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for k in 0..hw {
                    let dy = grad_output.data()[base + k];
                    let xh = cache.x_hat.data()[base + k];
                    grad_input.data_mut()[base + k] =
                        g * inv_std * (dy - mean_dy - xh * mean_dy_xhat);
                }
            }
        }
        grad_input
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        path.scoped("gamma", |p| {
            f(ParamMut::new(
                p.as_str(),
                ParamRole::BnAffine,
                &mut self.gamma,
                &mut self.grad_gamma,
            ))
        });
        path.scoped("beta", |p| {
            f(ParamMut::new(
                p.as_str(),
                ParamRole::BnAffine,
                &mut self.beta,
                &mut self.grad_beta,
            ))
        });
    }

    fn visit_state_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &mut [f32])) {
        path.scoped("running_mean", |p| {
            f(p.as_str(), self.running_mean.data_mut())
        });
        path.scoped("running_var", |p| f(p.as_str(), self.running_var.data_mut()));
    }

    fn export_infer_ops(
        &self,
        _path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        // Fold the evaluation-mode normalization into one per-channel
        // affine: y = γ·(x − mean)·inv_std + β = x·(γ·inv_std) + (β −
        // mean·γ·inv_std).
        let mut scale = Vec::with_capacity(self.channels);
        let mut shift = Vec::with_capacity(self.channels);
        for ci in 0..self.channels {
            let inv_std = 1.0 / (self.running_var.data()[ci] + self.eps).sqrt();
            let g = self.gamma.data()[ci];
            let s = g * inv_std;
            scale.push(s);
            shift.push(self.beta.data()[ci] - self.running_mean.data()[ci] * s);
        }
        ops.push(crate::export::InferOp::ChannelAffine { scale, shift });
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normalizes_batch_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::normal(&[4, 2, 3, 3], 5.0, 2.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        let y = bn.forward(&x, true);
        // Per channel, output should have ~zero mean and ~unit variance.
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                for k in 0..9 {
                    vals.push(y.data()[(ni * 2 + ci) * 9 + k]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn running_stats_track_input_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(1);
        for _ in 0..200 {
            let x = init::normal(&[8, 1, 2, 2], 3.0, 1.5, &mut rng);
            bn.forward(&x, true);
        }
        assert!((bn.running_mean().data()[0] - 3.0).abs() < 0.2);
        assert!((bn.running_var().data()[0] - 2.25).abs() < 0.5);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean.data_mut()[0] = 2.0;
        bn.running_var.data_mut()[0] = 4.0;
        let x = Tensor::full(&[1, 1, 1, 2], 4.0);
        let y = bn.forward(&x, false);
        // (4 - 2) / sqrt(4 + eps) ≈ 1.0
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = init::uniform(&[3, 2, 2, 2], -2.0, 2.0, &mut rng);
        let gy = init::uniform(&[3, 2, 2, 2], -1.0, 1.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma = init::uniform(&[2], 0.5, 1.5, &mut rng);
        bn.beta = init::uniform(&[2], -0.5, 0.5, &mut rng);

        bn.forward(&x, true);
        let gx = bn.backward(&gy);

        // Input gradient, directional.
        let eps = 1e-2f32;
        let dx = init::uniform(x.dims(), -1.0, 1.0, &mut rng);
        let mut xp = x.clone();
        xp.axpy(eps, &dx);
        let mut xm = x.clone();
        xm.axpy(-eps, &dx);
        // Fresh BN copies so running stats don't drift the comparison.
        let eval = |bn: &mut BatchNorm2d, x: &Tensor| {
            let keep_m = bn.running_mean.clone();
            let keep_v = bn.running_var.clone();
            let y = bn.forward(x, true).dot(&gy);
            bn.running_mean = keep_m;
            bn.running_var = keep_v;
            bn.cache = None;
            y
        };
        let num = (eval(&mut bn, &xp) - eval(&mut bn, &xm)) / (2.0 * eps);
        assert!(
            (num - gx.dot(&dx)).abs() < 3e-2 * (1.0 + num.abs()),
            "input grad: numeric {num} vs analytic {}",
            gx.dot(&dx)
        );

        // Gamma/beta gradients.
        let g_gamma = bn.grad_gamma.clone();
        let g_beta = bn.grad_beta.clone();
        for ci in 0..2 {
            bn.gamma.data_mut()[ci] += eps;
            let lp = eval(&mut bn, &x);
            bn.gamma.data_mut()[ci] -= 2.0 * eps;
            let lm = eval(&mut bn, &x);
            bn.gamma.data_mut()[ci] += eps;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - g_gamma.data()[ci]).abs() < 3e-2 * (1.0 + num.abs()));

            bn.beta.data_mut()[ci] += eps;
            let lp = eval(&mut bn, &x);
            bn.beta.data_mut()[ci] -= 2.0 * eps;
            let lm = eval(&mut bn, &x);
            bn.beta.data_mut()[ci] += eps;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - g_beta.data()[ci]).abs() < 3e-2 * (1.0 + num.abs()));
        }
    }
}
