//! Faithful builders for the paper's model families.
//!
//! Every builder takes a *weight factory* that converts a Kaiming-
//! initialized float tensor into a [`WeightSource`](crate::weight::WeightSource), so the identical
//! architecture (and identical initialization stream) can be trained in
//! full precision, with CSQ, or with any baseline quantizer — matching the
//! paper's setup where all methods train the same model from scratch.
//!
//! Architectures:
//!
//! * [`resnet20`] — the CIFAR-10 ResNet of He et al.: 3×3 stem, three
//!   stages of three basic blocks at widths `w, 2w, 4w` (paper width
//!   `w = 16`), global average pooling, linear classifier.
//! * [`resnet18`] / [`resnet50`] — stages `[2,2,2,2]` of basic blocks /
//!   `[3,4,6,3]` of bottleneck blocks at widths `w..8w` (paper `w = 64`).
//!   Because this reproduction trains on small synthetic images, the stem
//!   is the 3×3 CIFAR-style stem rather than 7×7/stride-2 + maxpool; the
//!   depth, block structure and channel progression are unchanged (see
//!   DESIGN.md §2).
//! * [`vgg19bn`] — the 16-conv + classifier VGG-19 with batch norm;
//!   max-pools are skipped once the spatial extent reaches 1 so the same
//!   architecture runs on reduced image sizes.
//!
//! The `width` knob scales every channel count proportionally; paper-scale
//! widths reproduce the original parameter counts exactly.

use crate::activation::{ActMode, ActQuant, Pact, Relu};
use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::layer::Layer;
use crate::linear::Linear;
use crate::pool::{Flatten, GlobalAvgPool, MaxPool2d};
use crate::residual::Residual;
use crate::sequential::Sequential;
use crate::weight::WeightFactory;
use csq_tensor::conv::ConvSpec;
use csq_tensor::init;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration shared by all model builders.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Base width (first-stage channel count). Paper scale: 16 for
    /// ResNet-20, 64 for ResNet-18/50 and VGG19BN.
    pub width: usize,
    /// Input image channels (3 for the synthetic datasets).
    pub input_channels: usize,
    /// Input spatial extent (square images).
    pub input_size: usize,
    /// Activation quantization precision (`None` = full precision).
    pub act_bits: Option<u32>,
    /// Which activation quantizer to insert (ignored when `act_bits` is
    /// `None`).
    pub act_mode: ActMode,
    /// Seed for the weight-initialization stream.
    pub seed: u64,
}

impl ModelConfig {
    /// A small CIFAR-like default: 10 classes, 3×16×16 input.
    pub fn cifar_like(width: usize, act_bits: Option<u32>, seed: u64) -> Self {
        ModelConfig {
            num_classes: 10,
            width,
            input_channels: 3,
            input_size: 16,
            act_bits,
            act_mode: ActMode::Uniform,
            seed,
        }
    }

    /// Builder-style override of the activation quantizer kind.
    pub fn with_act_mode(mut self, act_mode: ActMode) -> Self {
        self.act_mode = act_mode;
        self
    }

    /// A small ImageNet-like default: 100 classes, 3×24×24 input.
    pub fn imagenet_like(width: usize, act_bits: Option<u32>, seed: u64) -> Self {
        ModelConfig {
            num_classes: 100,
            width,
            input_channels: 3,
            input_size: 24,
            act_bits,
            act_mode: ActMode::Uniform,
            seed,
        }
    }
}

/// Internal helper carrying the init RNG and factory through construction.
struct Builder<'a> {
    rng: ChaCha8Rng,
    factory: &'a mut WeightFactory<'a>,
    act_bits: Option<u32>,
    act_mode: ActMode,
}

impl<'a> Builder<'a> {
    fn conv(&mut self, in_c: usize, out_c: usize, spec: ConvSpec) -> Box<dyn Layer> {
        let w0 = init::kaiming_normal(&[out_c, in_c, spec.kernel, spec.kernel], &mut self.rng);
        Box::new(Conv2d::new((self.factory)(w0), in_c, out_c, spec, false))
    }

    fn linear(&mut self, in_f: usize, out_f: usize) -> Box<dyn Layer> {
        let w0 = init::kaiming_uniform(&[out_f, in_f], &mut self.rng);
        Box::new(Linear::new((self.factory)(w0), in_f, out_f, true))
    }

    /// conv → BN → ReLU → (activation quant)
    fn conv_bn_relu(&mut self, in_c: usize, out_c: usize, spec: ConvSpec) -> Vec<Box<dyn Layer>> {
        let mut v: Vec<Box<dyn Layer>> = vec![
            self.conv(in_c, out_c, spec),
            Box::new(BatchNorm2d::new(out_c)),
            Box::new(Relu::new()),
        ];
        if let Some(bits) = self.act_bits {
            v.push(self.act_quant(bits));
        }
        v
    }

    fn act_quant(&self, bits: u32) -> Box<dyn Layer> {
        match self.act_mode {
            ActMode::Uniform => Box::new(ActQuant::new(Some(bits))),
            ActMode::Pact => Box::new(Pact::new(bits, 4.0)),
        }
    }

    /// ReLU → (activation quant), the `post` path of residual blocks.
    fn post(&mut self) -> Sequential {
        let mut v: Vec<Box<dyn Layer>> = vec![Box::new(Relu::new())];
        if let Some(bits) = self.act_bits {
            v.push(self.act_quant(bits));
        }
        Sequential::new(v)
    }

    fn basic_block(&mut self, in_c: usize, out_c: usize, stride: usize) -> Box<dyn Layer> {
        let mut main: Vec<Box<dyn Layer>> =
            self.conv_bn_relu(in_c, out_c, ConvSpec::new(3, stride, 1));
        main.push(self.conv(out_c, out_c, ConvSpec::new(3, 1, 1)));
        main.push(Box::new(BatchNorm2d::new(out_c)));
        let shortcut = (stride != 1 || in_c != out_c).then(|| {
            Sequential::new(vec![
                self.conv(in_c, out_c, ConvSpec::new(1, stride, 0)),
                Box::new(BatchNorm2d::new(out_c)),
            ])
        });
        let post = self.post();
        Box::new(Residual::new(Sequential::new(main), shortcut, post))
    }

    fn bottleneck_block(
        &mut self,
        in_c: usize,
        mid_c: usize,
        stride: usize,
        expansion: usize,
    ) -> Box<dyn Layer> {
        let out_c = mid_c * expansion;
        let mut main: Vec<Box<dyn Layer>> = self.conv_bn_relu(in_c, mid_c, ConvSpec::new(1, 1, 0));
        main.extend(self.conv_bn_relu(mid_c, mid_c, ConvSpec::new(3, stride, 1)));
        main.push(self.conv(mid_c, out_c, ConvSpec::new(1, 1, 0)));
        main.push(Box::new(BatchNorm2d::new(out_c)));
        let shortcut = (stride != 1 || in_c != out_c).then(|| {
            Sequential::new(vec![
                self.conv(in_c, out_c, ConvSpec::new(1, stride, 0)),
                Box::new(BatchNorm2d::new(out_c)),
            ])
        });
        let post = self.post();
        Box::new(Residual::new(Sequential::new(main), shortcut, post))
    }
}

/// Builds the CIFAR-style ResNet-20.
///
/// # Panics
///
/// Panics when the configuration is degenerate (zero width or classes).
pub fn resnet20(cfg: ModelConfig, factory: &mut WeightFactory<'_>) -> Sequential {
    resnet_cifar(cfg, factory, 3)
}

/// The CIFAR ResNet family: `6n + 2` layers with `n` blocks per stage
/// (ResNet-20 is `n = 3`). Exposed so tests can build the smaller
/// ResNet-8 (`n = 1`) quickly.
///
/// # Panics
///
/// Panics when the configuration is degenerate.
pub fn resnet_cifar(
    cfg: ModelConfig,
    factory: &mut WeightFactory<'_>,
    blocks_per_stage: usize,
) -> Sequential {
    assert!(cfg.width > 0 && cfg.num_classes > 0, "degenerate config");
    let mut b = Builder {
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        factory,
        act_bits: cfg.act_bits,
        act_mode: cfg.act_mode,
    };
    let w = cfg.width;
    let mut layers: Vec<Box<dyn Layer>> =
        b.conv_bn_relu(cfg.input_channels, w, ConvSpec::new(3, 1, 1));
    let widths = [w, 2 * w, 4 * w];
    let mut in_c = w;
    for (stage, &out_c) in widths.iter().enumerate() {
        for block in 0..blocks_per_stage {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            layers.push(b.basic_block(in_c, out_c, stride));
            in_c = out_c;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(b.linear(in_c, cfg.num_classes));
    Sequential::new(layers)
}

/// Builds ResNet-18 (basic blocks, stages `[2, 2, 2, 2]`).
///
/// # Panics
///
/// Panics when the configuration is degenerate.
pub fn resnet18(cfg: ModelConfig, factory: &mut WeightFactory<'_>) -> Sequential {
    assert!(cfg.width > 0 && cfg.num_classes > 0, "degenerate config");
    let mut b = Builder {
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        factory,
        act_bits: cfg.act_bits,
        act_mode: cfg.act_mode,
    };
    let w = cfg.width;
    let mut layers: Vec<Box<dyn Layer>> =
        b.conv_bn_relu(cfg.input_channels, w, ConvSpec::new(3, 1, 1));
    let widths = [w, 2 * w, 4 * w, 8 * w];
    let mut in_c = w;
    for (stage, &out_c) in widths.iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            layers.push(b.basic_block(in_c, out_c, stride));
            in_c = out_c;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(b.linear(in_c, cfg.num_classes));
    Sequential::new(layers)
}

/// Builds ResNet-50 (bottleneck blocks, stages `[3, 4, 6, 3]`,
/// expansion 4).
///
/// # Panics
///
/// Panics when the configuration is degenerate.
pub fn resnet50(cfg: ModelConfig, factory: &mut WeightFactory<'_>) -> Sequential {
    assert!(cfg.width > 0 && cfg.num_classes > 0, "degenerate config");
    let mut b = Builder {
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        factory,
        act_bits: cfg.act_bits,
        act_mode: cfg.act_mode,
    };
    let w = cfg.width;
    const EXPANSION: usize = 4;
    let mut layers: Vec<Box<dyn Layer>> =
        b.conv_bn_relu(cfg.input_channels, w, ConvSpec::new(3, 1, 1));
    let stage_blocks = [3usize, 4, 6, 3];
    let widths = [w, 2 * w, 4 * w, 8 * w];
    let mut in_c = w;
    for (stage, (&mid_c, &n_blocks)) in widths.iter().zip(stage_blocks.iter()).enumerate() {
        for block in 0..n_blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            layers.push(b.bottleneck_block(in_c, mid_c, stride, EXPANSION));
            in_c = mid_c * EXPANSION;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(b.linear(in_c, cfg.num_classes));
    Sequential::new(layers)
}

/// Builds VGG-19 with batch normalization.
///
/// Channel plan `[64,64,M,128,128,M,256×4,M,512×4,M,512×4,M]` scaled by
/// `cfg.width / 64`; a trailing global-average-pool + linear classifier
/// (the common CIFAR adaptation). Max-pools that would reduce the spatial
/// extent below 1 are skipped so reduced input sizes remain valid.
///
/// # Panics
///
/// Panics when the configuration is degenerate.
pub fn vgg19bn(cfg: ModelConfig, factory: &mut WeightFactory<'_>) -> Sequential {
    assert!(cfg.width > 0 && cfg.num_classes > 0, "degenerate config");
    let mut b = Builder {
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        factory,
        act_bits: cfg.act_bits,
        act_mode: cfg.act_mode,
    };
    let scale = |c: usize| -> usize { ((c * cfg.width) / 64).max(1) };
    // '0' encodes a max-pool in the classic VGG config string.
    let plan: [usize; 21] = [
        64, 64, 0, 128, 128, 0, 256, 256, 256, 256, 0, 512, 512, 512, 512, 0, 512, 512, 512, 512,
        0,
    ];
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut in_c = cfg.input_channels;
    let mut spatial = cfg.input_size;
    for &entry in &plan {
        if entry == 0 {
            if spatial >= 2 {
                layers.push(Box::new(MaxPool2d::new(2, 2)));
                spatial /= 2;
            }
        } else {
            let out_c = scale(entry);
            layers.extend(b.conv_bn_relu(in_c, out_c, ConvSpec::new(3, 1, 1)));
            in_c = out_c;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Flatten::new()));
    layers.push(b.linear(in_c, cfg.num_classes));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::count_params;
    use crate::weight::float_factory;
    use csq_tensor::Tensor;

    fn build<F>(f: F, cfg: ModelConfig) -> Sequential
    where
        F: Fn(ModelConfig, &mut WeightFactory<'_>) -> Sequential,
    {
        let mut fac = float_factory();
        f(cfg, &mut fac)
    }

    #[test]
    fn resnet20_forward_shape() {
        let cfg = ModelConfig::cifar_like(4, None, 0);
        let mut m = build(resnet20, cfg);
        let y = m.forward(&Tensor::ones(&[2, 3, 16, 16]), false);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn resnet20_paper_scale_param_count() {
        // The real ResNet-20 has ~272k parameters (0.27M).
        let cfg = ModelConfig {
            num_classes: 10,
            width: 16,
            input_channels: 3,
            input_size: 32,
            act_bits: None,
            act_mode: ActMode::Uniform,
            seed: 0,
        };
        let mut m = build(resnet20, cfg);
        let n = count_params(&mut m);
        assert!(
            (260_000..290_000).contains(&n),
            "ResNet-20 param count {n} outside expected range"
        );
    }

    #[test]
    fn resnet18_forward_shape() {
        let cfg = ModelConfig::imagenet_like(4, Some(4), 0);
        let mut m = build(resnet18, cfg);
        let y = m.forward(&Tensor::ones(&[1, 3, 24, 24]), false);
        assert_eq!(y.dims(), &[1, 100]);
    }

    #[test]
    fn resnet50_forward_shape() {
        let cfg = ModelConfig {
            num_classes: 7,
            width: 4,
            input_channels: 3,
            input_size: 16,
            act_bits: None,
            act_mode: ActMode::Uniform,
            seed: 0,
        };
        let mut m = build(resnet50, cfg);
        let y = m.forward(&Tensor::ones(&[1, 3, 16, 16]), false);
        assert_eq!(y.dims(), &[1, 7]);
    }

    #[test]
    fn vgg19bn_forward_shape_small_input() {
        let cfg = ModelConfig::cifar_like(8, Some(8), 0);
        let mut m = build(vgg19bn, cfg);
        let y = m.forward(&Tensor::ones(&[1, 3, 16, 16]), false);
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn quantized_layer_counts() {
        // ResNet-20 has 19 convs + 3 shortcut convs? No: stage transitions
        // at stages 2 and 3 -> 2 projection shortcuts. Total weight
        // sources: 1 stem + 18 block convs + 2 shortcuts + 1 fc = 22.
        let cfg = ModelConfig::cifar_like(4, None, 0);
        let mut m = build(resnet20, cfg);
        let mut count = 0;
        m.visit_weight_sources(&mut |_| count += 1);
        assert_eq!(count, 22);
    }

    #[test]
    fn vgg_has_16_convs_and_a_classifier() {
        let cfg = ModelConfig::cifar_like(8, None, 0);
        let mut m = build(vgg19bn, cfg);
        let mut count = 0;
        m.visit_weight_sources(&mut |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn same_seed_same_model() {
        let cfg = ModelConfig::cifar_like(4, None, 9);
        let mut a = build(resnet20, cfg);
        let mut b = build(resnet20, cfg);
        let x = Tensor::ones(&[1, 3, 16, 16]);
        assert!(a.forward(&x, false).approx_eq(&b.forward(&x, false), 0.0));
    }

    #[test]
    fn act_bits_inserts_quantizers() {
        let cfg = ModelConfig::cifar_like(4, Some(4), 0);
        let mut m = build(resnet20, cfg);
        // Train-mode forward then backward must work end to end.
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = m.forward(&x, true);
        let g = m.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), x.dims());
    }
}

/// Builds MobileNetV2 (Sandler et al. 2018) — the mobile architecture the
/// paper's introduction motivates quantization with.
///
/// Inverted residual blocks: 1×1 expansion (ratio 6) → 3×3 depthwise →
/// 1×1 linear projection, with an identity skip when the shape is
/// preserved. The stage plan follows the original
/// `(t, c, n, s)` table scaled by `cfg.width / 32` (the original stem
/// width); spatial strides are halved-down only while the feature map
/// stays ≥ 2 px so reduced input sizes remain valid.
///
/// # Panics
///
/// Panics when the configuration is degenerate.
pub fn mobilenet_v2(cfg: ModelConfig, factory: &mut WeightFactory<'_>) -> Sequential {
    assert!(cfg.width > 0 && cfg.num_classes > 0, "degenerate config");
    let mut b = Builder {
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        factory,
        act_bits: cfg.act_bits,
        act_mode: cfg.act_mode,
    };
    let scale = |c: usize| -> usize { ((c * cfg.width) / 32).max(2) };
    // (expansion t, channels c, repeats n, stride s) from the paper.
    let plan: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut spatial = cfg.input_size;
    let stem_c = scale(32);
    let mut layers: Vec<Box<dyn Layer>> =
        b.conv_bn_relu(cfg.input_channels, stem_c, ConvSpec::new(3, 1, 1));
    let mut in_c = stem_c;
    for &(t, c, n, s) in &plan {
        let out_c = scale(c);
        for rep in 0..n {
            // Only downsample while the map is big enough to halve.
            let stride = if rep == 0 && s == 2 && spatial >= 4 {
                spatial /= 2;
                2
            } else {
                1
            };
            layers.push(b.inverted_residual(in_c, out_c, t, stride));
            in_c = out_c;
        }
    }
    let head_c = scale(1280).min(in_c * 4);
    layers.extend(b.conv_bn_relu(in_c, head_c, ConvSpec::new(1, 1, 0)));
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(b.linear(head_c, cfg.num_classes));
    Sequential::new(layers)
}

impl<'a> Builder<'a> {
    /// MobileNetV2 inverted residual: expand → depthwise → project, with
    /// an identity skip when shape-preserving. The projection is
    /// *linear* (no ReLU), per the original design.
    fn inverted_residual(
        &mut self,
        in_c: usize,
        out_c: usize,
        expansion: usize,
        stride: usize,
    ) -> Box<dyn Layer> {
        let mid_c = in_c * expansion;
        let mut main: Vec<Box<dyn Layer>> = Vec::new();
        if expansion != 1 {
            main.extend(self.conv_bn_relu(in_c, mid_c, ConvSpec::new(1, 1, 0)));
        }
        // Depthwise 3x3.
        let w0 = init::kaiming_normal(&[mid_c, 1, 3, 3], &mut self.rng);
        main.push(Box::new(crate::conv::DepthwiseConv2d::new(
            (self.factory)(w0),
            mid_c,
            ConvSpec::new(3, stride, 1),
        )));
        main.push(Box::new(BatchNorm2d::new(mid_c)));
        main.push(Box::new(Relu::new()));
        if let Some(bits) = self.act_bits {
            main.push(self.act_quant(bits));
        }
        // Linear projection.
        main.push(self.conv(mid_c, out_c, ConvSpec::new(1, 1, 0)));
        main.push(Box::new(BatchNorm2d::new(out_c)));

        let identity_skip = stride == 1 && in_c == out_c;
        let shortcut = (!identity_skip).then(|| {
            Sequential::new(vec![
                self.conv(in_c, out_c, ConvSpec::new(1, stride, 0)),
                Box::new(BatchNorm2d::new(out_c)),
            ])
        });
        // Post is empty: the block output is the linear projection (+skip).
        Box::new(Residual::new(
            Sequential::new(main),
            shortcut,
            Sequential::empty(),
        ))
    }
}

#[cfg(test)]
mod mobilenet_tests {
    use super::*;
    use crate::layer::count_params;
    use crate::weight::float_factory;
    use csq_tensor::Tensor;

    #[test]
    fn mobilenet_v2_forward_shape() {
        let cfg = ModelConfig::cifar_like(8, None, 0);
        let mut fac = float_factory();
        let mut m = mobilenet_v2(cfg, &mut fac, );
        let y = m.forward(&Tensor::ones(&[1, 3, 16, 16]), false);
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn mobilenet_v2_trains_end_to_end() {
        let cfg = ModelConfig::cifar_like(8, Some(4), 0);
        let mut fac = float_factory();
        let mut m = mobilenet_v2(cfg, &mut fac);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = m.forward(&x, true);
        let g = m.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), x.dims());
        assert!(g.all_finite());
    }

    #[test]
    fn mobilenet_v2_has_depthwise_sources() {
        let cfg = ModelConfig::cifar_like(8, None, 0);
        let mut fac = float_factory();
        let mut m = mobilenet_v2(cfg, &mut fac);
        let mut sources = 0;
        m.visit_weight_sources(&mut |_| sources += 1);
        // Stem + 17 blocks (up to 3 convs each + shortcuts) + head + fc:
        // exact count depends on skip structure; just require plenty.
        assert!(sources > 40, "found {sources} weight sources");
        assert!(count_params(&mut m) > 10_000);
    }

    #[test]
    fn mobilenet_paper_scale_param_count() {
        // At width 32 (the original stem) and 1000 classes, MobileNetV2
        // has ~3.4M parameters. Our builder uses projection shortcuts
        // instead of plain identity-drop and a capped head, so allow a
        // generous band around the original.
        let cfg = ModelConfig {
            num_classes: 1000,
            width: 32,
            input_channels: 3,
            input_size: 32,
            act_bits: None,
            act_mode: crate::activation::ActMode::Uniform,
            seed: 0,
        };
        let mut fac = float_factory();
        let mut m = mobilenet_v2(cfg, &mut fac);
        let n = count_params(&mut m);
        assert!(
            (2_000_000..6_000_000).contains(&n),
            "MobileNetV2 param count {n} far from the ~3.4M original"
        );
    }
}
