//! Activation functions and uniform activation fake-quantization.

use crate::layer::{Layer, ParamMut, ParamPath, ParamRole};
use csq_tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(input.iter().map(|&v| v > 0.0).collect());
        } else {
            self.mask = None;
        }
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = crate::layer::take_cache(
            &mut self.mask,
            "Relu::backward called before a training forward",
        );
        assert_eq!(mask.len(), grad_output.numel(), "grad shape mismatch");
        let mut g = grad_output.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(mask.iter()) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn export_infer_ops(
        &self,
        _path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(crate::export::InferOp::Relu);
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "relu"
    }
}

/// Uniform activation fake-quantization with a straight-through backward.
///
/// The CSQ paper does not search activation precision: *"we quantize the
/// activation uniformly throughout the training process"* (§IV-A). This
/// layer implements that fixed scheme. Activations (assumed non-negative,
/// i.e. placed after ReLU) are clamped to `[0, r]` and rounded to
/// `bits`-bit levels; `r` is an exponential moving average of the batch
/// maximum, frozen at evaluation time. The backward pass is the clipped
/// straight-through estimator: gradients pass where `0 ≤ x ≤ r`.
///
/// With `bits = None` the layer is an exact passthrough (the "A-Bits = 32"
/// rows of the paper's tables).
#[derive(Debug)]
pub struct ActQuant {
    bits: Option<u32>,
    range: f32,
    range_momentum: f32,
    initialized: bool,
    pass_mask: Option<Vec<bool>>,
}

impl ActQuant {
    /// Creates an activation quantizer. `bits = None` disables
    /// quantization entirely.
    ///
    /// # Panics
    ///
    /// Panics if `bits == Some(0)` or `bits > Some(16)`.
    pub fn new(bits: Option<u32>) -> Self {
        if let Some(b) = bits {
            assert!((1..=16).contains(&b), "activation bits must be in 1..=16");
        }
        ActQuant {
            bits,
            range: 1.0,
            range_momentum: 0.99,
            initialized: false,
            pass_mask: None,
        }
    }

    /// The configured precision (None = passthrough).
    pub fn bits(&self) -> Option<u32> {
        self.bits
    }

    /// Current clipping range estimate.
    pub fn range(&self) -> f32 {
        self.range
    }
}

impl Layer for ActQuant {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let Some(bits) = self.bits else {
            if train {
                // Passthrough still needs a mask-free backward.
                self.pass_mask = None;
            }
            return input.clone();
        };
        if train {
            let batch_max = input.max_abs().max(1e-6);
            if self.initialized {
                self.range =
                    self.range_momentum * self.range + (1.0 - self.range_momentum) * batch_max;
            } else {
                self.range = batch_max;
                self.initialized = true;
            }
        }
        let r = self.range.max(1e-6);
        let levels = (2u32.pow(bits) - 1) as f32;
        let step = r / levels;
        let out = input.map(|v| {
            let c = v.clamp(0.0, r);
            (c / step).round() * step
        });
        if train {
            self.pass_mask = Some(input.iter().map(|&v| (0.0..=r).contains(&v)).collect());
        } else {
            self.pass_mask = None;
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        if self.bits.is_none() {
            return grad_output.clone();
        }
        let mask = crate::layer::take_cache(
            &mut self.pass_mask,
            "ActQuant::backward called before a training forward",
        );
        assert_eq!(mask.len(), grad_output.numel(), "grad shape mismatch");
        let mut g = grad_output.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(mask.iter()) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn visit_state_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(&str, &mut [f32])) {
        // Copy-in/copy-out so the initialization flag rides along with the
        // range EMA: a resumed run must not re-seed the range from its
        // first batch.
        let mut buf = [self.range, if self.initialized { 1.0 } else { 0.0 }];
        path.scoped("act_range", |p| f(p.as_str(), &mut buf));
        self.range = buf[0];
        self.initialized = buf[1] != 0.0;
    }

    fn export_infer_ops(
        &self,
        _path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(match self.bits {
            None => crate::export::InferOp::Identity,
            Some(bits) => crate::export::InferOp::UniformActQuant {
                range: self.range.max(1e-6),
                levels: (2u32.pow(bits) - 1) as f32,
            },
        });
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "act_quant"
    }
}

/// Which activation quantizer the model builders insert after each ReLU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActMode {
    /// Running-max uniform quantization with STE ([`ActQuant`]); the
    /// paper's fixed uniform activation scheme.
    #[default]
    Uniform,
    /// PACT learnable-clip quantization ([`Pact`]); used by the PACT
    /// baseline rows.
    Pact,
}

/// PACT activation quantization (Choi et al. 2018): a *learnable*
/// clipping threshold α replaces the running-max range of [`ActQuant`].
///
/// Forward: `y = quantize(clamp(x, 0, α))` on a `bits`-bit uniform grid.
/// Backward: straight-through inside the clip; the gradient with respect
/// to α is `Σ dy over elements with x ≥ α` (the exact gradient of the
/// clip's upper boundary). α is trained with weight decay like the PACT
/// paper (decay keeps the range tight).
#[derive(Debug)]
pub struct Pact {
    bits: u32,
    alpha: Tensor,
    grad_alpha: Tensor,
    cache: Option<PactCache>,
}

#[derive(Debug)]
struct PactCache {
    /// 0 = below 0, 1 = inside [0, α), 2 = at/above α.
    region: Vec<u8>,
}

impl Pact {
    /// Creates a PACT quantizer with `bits` precision and initial α.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16` or `alpha0` is not positive.
    pub fn new(bits: u32, alpha0: f32) -> Self {
        assert!((1..=16).contains(&bits), "activation bits must be in 1..=16");
        assert!(alpha0 > 0.0, "initial alpha must be positive");
        Pact {
            bits,
            alpha: Tensor::from_vec(vec![alpha0], &[1]),
            grad_alpha: Tensor::zeros(&[1]),
            cache: None,
        }
    }

    /// Current clipping threshold α.
    pub fn alpha(&self) -> f32 {
        self.alpha.data()[0]
    }
}

impl Layer for Pact {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let a = self.alpha.data()[0].max(1e-6);
        let levels = (2u32.pow(self.bits) - 1) as f32;
        let step = a / levels;
        let out = input.map(|v| {
            let c = v.clamp(0.0, a);
            (c / step).round() * step
        });
        if train {
            self.cache = Some(PactCache {
                region: input
                    .iter()
                    .map(|&v| {
                        if v < 0.0 {
                            0
                        } else if v < a {
                            1
                        } else {
                            2
                        }
                    })
                    .collect(),
            });
        } else {
            self.cache = None;
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = crate::layer::take_cache(
            &mut self.cache,
            "Pact::backward called before a training forward",
        );
        assert_eq!(cache.region.len(), grad_output.numel(), "grad shape mismatch");
        let mut g = grad_output.clone();
        let mut ga = 0.0f32;
        for (v, &r) in g.data_mut().iter_mut().zip(cache.region.iter()) {
            match r {
                0 => *v = 0.0,
                1 => {}
                _ => {
                    ga += *v;
                    *v = 0.0;
                }
            }
        }
        self.grad_alpha.data_mut()[0] += ga;
        g
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        // PACT decays α even though it is a scale, not a weight — the
        // documented exception to the role-derived decay policy.
        path.scoped("alpha", |p| {
            f(
                ParamMut::new(
                    p.as_str(),
                    ParamRole::QuantScale,
                    &mut self.alpha,
                    &mut self.grad_alpha,
                )
                .with_decay(true),
            )
        });
    }

    fn export_infer_ops(
        &self,
        _path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(crate::export::InferOp::UniformActQuant {
            range: self.alpha.data()[0].max(1e-6),
            levels: (2u32.pow(self.bits) - 1) as f32,
        });
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "pact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clips_negatives_and_masks_grads() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn act_quant_none_is_identity() {
        let mut q = ActQuant::new(None);
        let x = Tensor::from_vec(vec![-3.0, 0.5, 100.0], &[3]);
        assert!(q.forward(&x, true).approx_eq(&x, 0.0));
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert!(q.backward(&g).approx_eq(&g, 0.0));
    }

    #[test]
    fn act_quant_output_on_grid() {
        let mut q = ActQuant::new(Some(2));
        let x = Tensor::from_vec(vec![0.0, 0.3, 0.6, 1.0], &[4]);
        let y = q.forward(&x, true);
        // range = 1.0 (batch max), 2 bits -> levels {0, 1/3, 2/3, 1}.
        let step = 1.0 / 3.0;
        for &v in y.iter() {
            let k = v / step;
            assert!((k - k.round()).abs() < 1e-5, "{v} not on grid");
        }
    }

    #[test]
    fn act_quant_ste_masks_out_of_range() {
        let mut q = ActQuant::new(Some(3));
        let x = Tensor::from_vec(vec![-0.5, 0.5, 0.9], &[3]);
        q.forward(&x, true);
        let g = q.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data()[0], 0.0, "negative input gets no gradient");
        assert_eq!(g.data()[1], 1.0);
        assert_eq!(g.data()[2], 1.0);
    }

    #[test]
    fn act_quant_range_freezes_at_eval() {
        let mut q = ActQuant::new(Some(4));
        q.forward(&Tensor::full(&[4], 2.0), true);
        let r = q.range();
        q.forward(&Tensor::full(&[4], 100.0), false);
        assert_eq!(q.range(), r, "eval must not update the range");
    }

    #[test]
    fn act_quant_range_tracks_ema() {
        let mut q = ActQuant::new(Some(4));
        q.forward(&Tensor::full(&[2], 1.0), true);
        assert!((q.range() - 1.0).abs() < 1e-6);
        q.forward(&Tensor::full(&[2], 2.0), true);
        assert!(q.range() > 1.0 && q.range() < 1.1, "EMA moves slowly");
    }

    #[test]
    #[should_panic(expected = "activation bits must be in 1..=16")]
    fn zero_bits_rejected() {
        ActQuant::new(Some(0));
    }

    #[test]
    fn pact_clips_at_alpha_and_quantizes() {
        let mut p = Pact::new(2, 1.0);
        let x = Tensor::from_vec(vec![-0.5, 0.3, 0.7, 2.0], &[4]);
        let y = p.forward(&x, false);
        assert_eq!(y.data()[0], 0.0, "negative clipped to zero");
        assert!((y.data()[3] - 1.0).abs() < 1e-6, "above alpha clipped to alpha");
        // 2 bits -> grid {0, 1/3, 2/3, 1}.
        for &v in y.iter() {
            let k = v * 3.0;
            assert!((k - k.round()).abs() < 1e-5, "{v} off grid");
        }
    }

    #[test]
    fn pact_alpha_gradient_counts_clipped_elements() {
        let mut p = Pact::new(4, 1.0);
        let x = Tensor::from_vec(vec![-1.0, 0.5, 1.5, 2.0], &[4]);
        p.forward(&x, true);
        let g = p.backward(&Tensor::ones(&[4]));
        // Gradient passes only inside [0, alpha).
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
        // d/dalpha accumulates one unit per clipped-above element.
        let mut grad_alpha = 0.0;
        p.visit_params(&mut |pm| grad_alpha = pm.grad.data()[0]);
        assert!((grad_alpha - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pact_alpha_is_trainable_with_decay() {
        let mut p = Pact::new(4, 2.0);
        let mut decays = Vec::new();
        p.visit_params(&mut |pm| decays.push(pm.decay));
        assert_eq!(decays, vec![true], "PACT decays alpha (keeps range tight)");
        assert_eq!(p.alpha(), 2.0);
    }

    #[test]
    fn pact_matches_finite_difference_on_alpha() {
        let mut p = Pact::new(8, 0.8);
        let x = Tensor::from_vec(vec![0.2, 0.9, 1.5], &[3]);
        let gy = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        p.forward(&x, true);
        p.backward(&gy);
        let mut ana = 0.0;
        p.visit_params(&mut |pm| ana = pm.grad.data()[0]);
        // Finite difference on alpha. With 8 bits the grid error is small
        // but nonzero, so allow a loose tolerance.
        let eps = 1e-2f32;
        let mut pp = Pact::new(8, 0.8 + eps);
        let lp = pp.forward(&x, false).dot(&gy);
        let mut pm_ = Pact::new(8, 0.8 - eps);
        let lm = pm_.forward(&x, false).dot(&gy);
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - ana).abs() < 0.3, "alpha grad: numeric {num} vs {ana}");
    }

    #[test]
    #[should_panic(expected = "initial alpha must be positive")]
    fn pact_rejects_bad_alpha() {
        Pact::new(4, 0.0);
    }
}
