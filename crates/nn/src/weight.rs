//! The [`WeightSource`] abstraction: pluggable differentiable weight
//! parameterizations.
//!
//! A [`Conv2d`](crate::Conv2d) or [`Linear`](crate::Linear) layer does not
//! own a plain weight tensor; it owns a `Box<dyn WeightSource>` that
//! *materializes* the effective weight each forward pass and receives
//! `dL/dW` each backward pass. A float model uses [`FloatWeight`]; the CSQ
//! bit-level parameterization (Eq. 5 of the paper) and every baseline
//! quantizer implement this same trait in their own crates, so the model
//! builders and training loop are method-agnostic.

use crate::layer::{ParamMut, ParamPath, ParamRole};
use csq_tensor::Tensor;

/// A differentiable parameterization of a weight tensor.
///
/// Implementations cache whatever they need in
/// [`materialize`](WeightSource::materialize) so that
/// [`backward`](WeightSource::backward) can route `dL/dW` to the
/// underlying trainable parameters exactly.
pub trait WeightSource: std::fmt::Debug {
    /// Produces the effective weight tensor for the next forward pass.
    /// Implementations may cache intermediate gate values for `backward`.
    fn materialize(&mut self) -> Tensor;

    /// Consumes `dL/dW` (same shape as the materialized weight),
    /// accumulating gradients into the underlying trainable parameters.
    ///
    /// # Panics
    ///
    /// Implementations panic when called before
    /// [`materialize`](WeightSource::materialize) or on a shape mismatch.
    fn backward(&mut self, grad_weight: &Tensor);

    /// Visits the underlying trainable parameters in a stable order,
    /// handing the visitor each parameter's hierarchical path (scoped
    /// under `path`, the owning layer's weight scope, e.g. `0.weight`)
    /// and its [`ParamRole`]. A single latent weight is emitted at `path`
    /// itself; multi-parameter sources push one segment per parameter.
    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>));

    /// Visits the underlying trainable parameters in a stable order
    /// (path-agnostic wrapper over
    /// [`visit_params_named`](WeightSource::visit_params_named)).
    fn visit_params(&mut self, f: &mut dyn FnMut(ParamMut<'_>)) {
        let mut path = ParamPath::root();
        self.visit_params_named(&mut path, f);
    }

    /// Sets the continuous-sparsification gate temperature β. Float and
    /// STE-based parameterizations ignore this.
    fn set_beta(&mut self, _beta: f32) {}

    /// Called by the training loop at the end of each epoch (used by BSQ's
    /// periodic bit pruning; a no-op elsewhere).
    fn on_epoch_end(&mut self, _epoch: usize) {}

    /// Current weight precision in bits for this layer, if the
    /// parameterization is quantized. Fractional values are allowed while
    /// a scheme is still being searched; `None` means full precision
    /// (counted as 32 bits by the budget accounting).
    fn precision(&self) -> Option<f32>;

    /// Number of weight elements materialized by this source.
    fn numel(&self) -> usize;

    /// Converts the parameterization into its exact discrete form (e.g.
    /// replaces soft gates with unit steps). After `finalize`, the
    /// materialized weight must lie exactly on the quantization grid.
    fn finalize(&mut self) {}

    /// Whether the parameterization is already in its exact discrete
    /// form. Sources whose materialization is always on-grid (float
    /// weights, STE quantizers) report `true`; relaxation-based sources
    /// (CSQ's soft gates) report `false` until
    /// [`finalize`](WeightSource::finalize) has run. Packing for
    /// deployment requires `true`.
    fn is_finalized(&self) -> bool {
        true
    }

    /// The per-bit selection mask of this layer (`true` = bit kept), if
    /// the method searches one. Used for scheme extraction (Figure 4).
    fn bit_mask(&self) -> Option<Vec<bool>> {
        None
    }

    /// The *soft* precision `Σ_b f_β(m_B^(b))` of this layer, if the
    /// parameterization has relaxed bit-selection gates. Used by the
    /// soft-counting ablation of the budget regularizer; `None` falls
    /// back to [`precision`](WeightSource::precision).
    fn soft_precision(&self) -> Option<f32> {
        None
    }

    /// The quantization grid step of the materialized weight (`s / (2^n −
    /// 1)` for linear schemes), if the parameterization has one. After
    /// [`finalize`](WeightSource::finalize), every materialized weight is
    /// an exact integer multiple of this step.
    fn quant_step(&self) -> Option<f32> {
        None
    }

    /// Adds the gradient of a precision regularizer to the bit-selection
    /// parameters. For CSQ this is `strength · d/dm_B Σ_b f_β(m_B^(b))`
    /// with `strength = λ·Δ_S` (Eq. 7 of the paper); parameterizations
    /// without a searched bit selection ignore it.
    fn apply_precision_reg(&mut self, _strength: f32) {}

    /// Permanently hardens the bit-selection mask (the start of the CSQ
    /// finetuning phase: "fix bit selection `q_B = I(m_B ≥ 0)`"), leaving
    /// the bit representations trainable. A no-op for parameterizations
    /// without a searched mask.
    fn freeze_mask(&mut self) {}
}

/// A plain full-precision weight tensor (the "FP" rows of the paper's
/// tables).
#[derive(Debug, Clone)]
pub struct FloatWeight {
    value: Tensor,
    grad: Tensor,
}

impl FloatWeight {
    /// Wraps an initialized weight tensor.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        FloatWeight { value, grad }
    }

    /// Read access to the raw weight (testing/inspection).
    pub fn value(&self) -> &Tensor {
        &self.value
    }
}

impl WeightSource for FloatWeight {
    fn materialize(&mut self) -> Tensor {
        self.value.clone()
    }

    fn backward(&mut self, grad_weight: &Tensor) {
        self.grad.add_assign_t(grad_weight);
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        f(ParamMut::new(
            path.as_str(),
            ParamRole::Weight,
            &mut self.value,
            &mut self.grad,
        ));
    }

    fn precision(&self) -> Option<f32> {
        None
    }

    fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// A factory turning an initialized float weight tensor into a
/// [`WeightSource`].
///
/// Model builders initialize every weight with the same Kaiming scheme and
/// hand the tensor to the factory, so all methods (FP, CSQ, baselines)
/// start from identical initial conditions — matching the paper's
/// "trained from scratch with the same hyperparameters" setup.
pub type WeightFactory<'a> = dyn FnMut(Tensor) -> Box<dyn WeightSource> + 'a;

/// Convenience factory producing plain [`FloatWeight`] sources.
pub fn float_factory() -> impl FnMut(Tensor) -> Box<dyn WeightSource> {
    |w: Tensor| Box::new(FloatWeight::new(w)) as Box<dyn WeightSource>
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_weight_round_trip() {
        let w = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[2, 2]);
        let mut fw = FloatWeight::new(w.clone());
        assert!(fw.materialize().approx_eq(&w, 0.0));
        assert_eq!(fw.numel(), 4);
        assert_eq!(fw.precision(), None);

        fw.backward(&Tensor::ones(&[2, 2]));
        fw.backward(&Tensor::ones(&[2, 2]));
        let mut grads = Vec::new();
        fw.visit_params(&mut |p| grads.extend_from_slice(p.grad.data()));
        assert!(grads.iter().all(|&g| g == 2.0), "gradients accumulate");
    }

    #[test]
    fn float_weight_decays() {
        let mut fw = FloatWeight::new(Tensor::ones(&[2]));
        let mut decays = Vec::new();
        fw.visit_params(&mut |p| decays.push(p.decay));
        assert_eq!(decays, vec![true]);
    }

    #[test]
    fn float_weight_emits_at_owning_scope() {
        let mut fw = FloatWeight::new(Tensor::ones(&[2]));
        let mut seen = Vec::new();
        let mut path = ParamPath::root();
        path.scoped("0", |p| {
            p.scoped("weight", |p| {
                fw.visit_params_named(p, &mut |q| seen.push((q.path.to_string(), q.role)));
            })
        });
        assert_eq!(seen, vec![("0.weight".to_string(), ParamRole::Weight)]);
    }
}
