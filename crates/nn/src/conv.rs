//! 2-D convolution layer with a pluggable weight parameterization.

use crate::layer::{Layer, ParamMut, ParamPath, ParamRole};
use crate::weight::{FloatWeight, WeightSource};
use csq_tensor::conv::{conv2d_backward_with_scratch, conv2d_with_scratch, ConvSpec};
use csq_tensor::par::ScratchPool;
use csq_tensor::{init, reduce, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A 2-D convolution whose weight tensor is produced by a
/// [`WeightSource`] — a float tensor, the CSQ bit-level parameterization,
/// or any baseline quantizer.
///
/// Bias is optional; the paper's models use BatchNorm after every
/// convolution, so conv biases are disabled there.
#[derive(Debug)]
pub struct Conv2d {
    weight: Box<dyn WeightSource>,
    bias: Option<(Tensor, Tensor)>,
    spec: ConvSpec,
    in_channels: usize,
    out_channels: usize,
    cached_input: Option<Tensor>,
    cached_weight: Option<Tensor>,
    // im2col / gradient workspaces, reused across training steps.
    scratch: ScratchPool,
}

impl Conv2d {
    /// Creates a convolution from an already-constructed weight source.
    ///
    /// # Panics
    ///
    /// Panics if `in_channels`/`out_channels`/`spec` are inconsistent with
    /// the source's element count.
    pub fn new(
        weight: Box<dyn WeightSource>,
        in_channels: usize,
        out_channels: usize,
        spec: ConvSpec,
        bias: bool,
    ) -> Self {
        assert_eq!(
            weight.numel(),
            out_channels * in_channels * spec.kernel * spec.kernel,
            "weight source element count mismatch"
        );
        Conv2d {
            weight,
            bias: bias.then(|| (Tensor::zeros(&[out_channels]), Tensor::zeros(&[out_channels]))),
            spec,
            in_channels,
            out_channels,
            cached_input: None,
            cached_weight: None,
            scratch: ScratchPool::new(),
        }
    }

    /// Creates a float-weight convolution with Kaiming-normal init
    /// (convenience for tests and examples).
    pub fn with_float_weights(
        in_channels: usize,
        out_channels: usize,
        spec: ConvSpec,
        bias: bool,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = init::kaiming_normal(
            &[out_channels, in_channels, spec.kernel, spec.kernel],
            &mut rng,
        );
        Self::new(
            Box::new(FloatWeight::new(w)),
            in_channels,
            out_channels,
            spec,
            bias,
        )
    }

    /// The convolution geometry.
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Immutable access to the weight source (scheme inspection).
    pub fn weight_source(&self) -> &dyn WeightSource {
        self.weight.as_ref()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            input.dims()[1],
            self.in_channels,
            "conv input channel mismatch"
        );
        let w = self.weight.materialize();
        let mut y = conv2d_with_scratch(input, &w, self.spec, &self.scratch);
        if let Some((b, _)) = &self.bias {
            y = y.add_channel_bias(b);
        }
        if train {
            self.cached_input = Some(input.clone());
            self.cached_weight = Some(w);
        } else {
            self.cached_input = None;
            self.cached_weight = None;
        }
        y
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = crate::layer::take_cache(
            &mut self.cached_input,
            "Conv2d::backward called before a training forward",
        );
        let w = crate::layer::take_cache(
            &mut self.cached_weight,
            "Conv2d::backward missing cached weight",
        );
        let (grad_input, grad_w) =
            conv2d_backward_with_scratch(&input, &w, grad_output, self.spec, &self.scratch);
        self.weight.backward(&grad_w);
        if let Some((_, gb)) = &mut self.bias {
            gb.add_assign_t(&reduce::sum_channels(grad_output));
        }
        grad_input
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        path.scoped("weight", |p| self.weight.visit_params_named(p, &mut *f));
        if let Some((b, gb)) = &mut self.bias {
            path.scoped("bias", |p| f(ParamMut::new(p.as_str(), ParamRole::Bias, b, gb)));
        }
    }

    fn visit_weight_sources_named(
        &mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &mut dyn WeightSource),
    ) {
        path.scoped("weight", |p| f(p.as_str(), self.weight.as_mut()));
    }

    fn export_infer_ops(
        &self,
        path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(crate::export::InferOp::Conv2d {
            weight: path.scoped("weight", |p| p.as_str().to_string()),
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.spec.kernel,
            stride: self.spec.stride,
            padding: self.spec.padding,
            bias: self.bias.as_ref().map(|(b, _)| b.data().to_vec()),
        });
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::collect_grads;

    fn fd_check_conv(bias: bool) {
        let spec = ConvSpec::new(3, 1, 1);
        let mut layer = Conv2d::with_float_weights(2, 3, spec, bias, 42);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = init::uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let gy_template = init::uniform(&[1, 3, 4, 4], -1.0, 1.0, &mut rng);

        let y = layer.forward(&x, true);
        let _gx = layer.backward(&gy_template);
        let analytic = collect_grads(&mut layer);

        // Finite differences on every parameter.
        fn bump(layer: &mut Conv2d, pi: usize, delta: f32) {
            let mut seen = 0usize;
            layer.visit_params(&mut |p| {
                let n = p.value.numel();
                if pi >= seen && pi < seen + n {
                    p.value.data_mut()[pi - seen] += delta;
                }
                seen += n;
            });
        }
        let eps = 1e-2f32;
        let mut max_err = 0.0f32;
        let n_params = analytic.len();
        for pi in 0..n_params {
            bump(&mut layer, pi, eps);
            let lp = layer.forward(&x, false).dot(&gy_template);
            bump(&mut layer, pi, -2.0 * eps);
            let lm = layer.forward(&x, false).dot(&gy_template);
            bump(&mut layer, pi, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            max_err = max_err.max((numeric - analytic[pi]).abs());
        }
        assert!(max_err < 5e-2, "max param-grad error {max_err}");
        let _ = y;
    }

    #[test]
    fn gradients_match_finite_difference_no_bias() {
        fd_check_conv(false);
    }

    #[test]
    fn gradients_match_finite_difference_with_bias() {
        fd_check_conv(true);
    }

    #[test]
    fn eval_forward_does_not_cache() {
        let mut layer = Conv2d::with_float_weights(1, 1, ConvSpec::new(3, 1, 1), false, 0);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        layer.forward(&x, false);
        assert!(layer.cached_input.is_none());
    }

    #[test]
    #[should_panic(expected = "backward called before a training forward")]
    fn backward_without_forward_panics() {
        let mut layer = Conv2d::with_float_weights(1, 1, ConvSpec::new(3, 1, 1), false, 0);
        layer.backward(&Tensor::zeros(&[1, 1, 4, 4]));
    }

    #[test]
    fn bias_changes_output_by_constant() {
        let mut layer = Conv2d::with_float_weights(1, 2, ConvSpec::new(1, 1, 0), true, 3);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let y0 = layer.forward(&x, false);
        layer.visit_params(&mut |p| {
            if p.value.dims() == [2] {
                p.value.fill(5.0);
            }
        });
        let y1 = layer.forward(&x, false);
        assert!(y1.sub(&y0).iter().all(|&v| (v - 5.0).abs() < 1e-6));
    }
}

/// Depthwise 2-D convolution layer (one filter per channel), the building
/// block of the MobileNet family the paper's introduction motivates.
/// Weights come from a [`WeightSource`] like every other layer, so
/// depthwise filters are quantized by CSQ and the baselines identically
/// to dense ones.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    weight: Box<dyn WeightSource>,
    spec: ConvSpec,
    channels: usize,
    cached_input: Option<Tensor>,
    cached_weight: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution from a weight source producing a
    /// `[C, 1, K, K]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the source's element count mismatches the geometry.
    pub fn new(weight: Box<dyn WeightSource>, channels: usize, spec: ConvSpec) -> Self {
        assert_eq!(
            weight.numel(),
            channels * spec.kernel * spec.kernel,
            "weight source element count mismatch"
        );
        DepthwiseConv2d {
            weight,
            spec,
            channels,
            cached_input: None,
            cached_weight: None,
        }
    }

    /// Creates a float-weight depthwise convolution with Kaiming init.
    pub fn with_float_weights(channels: usize, spec: ConvSpec, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = init::kaiming_normal(&[channels, 1, spec.kernel, spec.kernel], &mut rng);
        Self::new(Box::new(FloatWeight::new(w)), channels, spec)
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            input.dims()[1],
            self.channels,
            "depthwise input channel mismatch"
        );
        let w = self
            .weight
            .materialize()
            .reshape(&[self.channels, 1, self.spec.kernel, self.spec.kernel]);
        let y = csq_tensor::conv::depthwise_conv2d(input, &w, self.spec);
        if train {
            self.cached_input = Some(input.clone());
            self.cached_weight = Some(w);
        } else {
            self.cached_input = None;
            self.cached_weight = None;
        }
        y
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = crate::layer::take_cache(
            &mut self.cached_input,
            "DepthwiseConv2d::backward called before a training forward",
        );
        let w = crate::layer::take_cache(
            &mut self.cached_weight,
            "DepthwiseConv2d::backward missing cached weight",
        );
        let (grad_input, grad_w) =
            csq_tensor::conv::depthwise_conv2d_backward(&input, &w, grad_output, self.spec);
        self.weight.backward(&grad_w);
        grad_input
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        path.scoped("weight", |p| self.weight.visit_params_named(p, &mut *f));
    }

    fn visit_weight_sources_named(
        &mut self,
        path: &mut ParamPath,
        f: &mut dyn FnMut(&str, &mut dyn WeightSource),
    ) {
        path.scoped("weight", |p| f(p.as_str(), self.weight.as_mut()));
    }

    fn export_infer_ops(
        &self,
        path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        ops.push(crate::export::InferOp::DepthwiseConv2d {
            weight: path.scoped("weight", |p| p.as_str().to_string()),
            channels: self.channels,
            kernel: self.spec.kernel,
            stride: self.spec.stride,
            padding: self.spec.padding,
        });
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "depthwise_conv2d"
    }
}

#[cfg(test)]
mod depthwise_tests {
    use super::*;
    use crate::layer::collect_grads;

    #[test]
    fn forward_shape_and_backward_flow() {
        let mut layer = DepthwiseConv2d::with_float_weights(3, ConvSpec::new(3, 1, 1), 0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = init::uniform(&[2, 3, 5, 5], -1.0, 1.0, &mut rng);
        let y = layer.forward(&x, true);
        assert_eq!(y.dims(), &[2, 3, 5, 5]);
        let gx = layer.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        assert!(collect_grads(&mut layer).iter().any(|&g| g != 0.0));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut layer = DepthwiseConv2d::with_float_weights(2, ConvSpec::new(3, 1, 1), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = init::uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let gy = init::uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        layer.forward(&x, true);
        layer.backward(&gy);
        let analytic = collect_grads(&mut layer);

        fn bump(layer: &mut DepthwiseConv2d, pi: usize, delta: f32) {
            let mut seen = 0usize;
            layer.visit_params(&mut |p| {
                let n = p.value.numel();
                if pi >= seen && pi < seen + n {
                    p.value.data_mut()[pi - seen] += delta;
                }
                seen += n;
            });
        }
        let eps = 1e-2f32;
        let mut max_err = 0.0f32;
        for pi in 0..analytic.len() {
            bump(&mut layer, pi, eps);
            let lp = layer.forward(&x, false).dot(&gy);
            bump(&mut layer, pi, -2.0 * eps);
            let lm = layer.forward(&x, false).dot(&gy);
            bump(&mut layer, pi, eps);
            max_err = max_err.max(((lp - lm) / (2.0 * eps) - analytic[pi]).abs());
        }
        assert!(max_err < 5e-2, "max param-grad error {max_err}");
    }

    #[test]
    fn quantized_depthwise_weights_work() {
        // A depthwise layer whose filters come from a non-float source
        // still trains (backward routes dW into the source).
        #[derive(Debug)]
        struct Doubling(crate::weight::FloatWeight);
        impl WeightSource for Doubling {
            fn materialize(&mut self) -> Tensor {
                self.0.materialize().mul_scalar(2.0)
            }
            fn backward(&mut self, g: &Tensor) {
                self.0.backward(&g.mul_scalar(2.0));
            }
            fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
                self.0.visit_params_named(path, f);
            }
            fn precision(&self) -> Option<f32> {
                Some(8.0)
            }
            fn numel(&self) -> usize {
                self.0.numel()
            }
        }
        let w = Tensor::ones(&[2, 1, 3, 3]);
        let mut layer = DepthwiseConv2d::new(
            Box::new(Doubling(crate::weight::FloatWeight::new(w))),
            2,
            ConvSpec::new(3, 1, 1),
        );
        let x = Tensor::ones(&[1, 2, 3, 3]);
        let y = layer.forward(&x, true);
        // Center output: 9 taps × weight 2 = 18.
        assert!((y.at(&[0, 0, 1, 1]) - 18.0).abs() < 1e-5);
        layer.backward(&Tensor::ones(y.dims()));
        let mut count = 0;
        layer.visit_weight_sources(&mut |s| {
            assert_eq!(s.precision(), Some(8.0));
            count += 1;
        });
        assert_eq!(count, 1);
    }
}
