//! Saving and restoring trained parameters.
//!
//! A checkpoint maps each parameter's stable hierarchical path (e.g.
//! `4.main.0.weight`) to its tensor, in visitation order — the same paths
//! the optimizers key their state by — so any architecturally identical
//! model can restore it and any architectural edit is reported by name.
//! The format is plain JSON (small models, human-inspectable); weights
//! quantized by CSQ should instead be deployed via fixed-point packing
//! (`csq_core::PackedModel`). Legacy order-keyed checkpoints (a bare
//! tensor list) still deserialize and restore positionally.

use crate::layer::Layer;
use csq_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A serializable snapshot of every trainable parameter of a model,
/// keyed by parameter path.
///
/// # Example
///
/// ```
/// use csq_nn::{Checkpoint, Linear};
///
/// let mut trained = Linear::with_float_weights(4, 2, 0);
/// let ckpt = Checkpoint::capture(&mut trained);
/// let mut fresh = Linear::with_float_weights(4, 2, 99);
/// ckpt.restore(&mut fresh)?;
/// # Ok::<(), csq_nn::checkpoint::RestoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// `(path, tensor)` entries in visitation order. Legacy checkpoints
    /// (schema v1: a bare tensor list under `params`) deserialize with
    /// empty paths and restore positionally.
    #[serde(
        alias = "params",
        deserialize_with = "crate::optim::de_named_tensors"
    )]
    entries: Vec<(String, Tensor)>,
}

/// Error restoring a checkpoint into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The checkpoint has a different number of parameter tensors.
    CountMismatch {
        /// Tensors in the checkpoint.
        expected: usize,
        /// Parameters in the model.
        actual: usize,
    },
    /// A checkpoint tensor's shape differs from the model parameter with
    /// the same path.
    ShapeMismatch {
        /// Path of the mismatched parameter.
        path: String,
        /// Shape of the parameter in the model.
        model: Vec<usize>,
        /// Shape of the tensor in the checkpoint.
        checkpoint: Vec<usize>,
    },
    /// A model parameter has no entry in the checkpoint.
    MissingInCheckpoint {
        /// Path of the parameter without a checkpoint entry.
        path: String,
    },
    /// A checkpoint entry matches no model parameter.
    UnexpectedInCheckpoint {
        /// Path of the entry without a model parameter.
        path: String,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::CountMismatch { expected, actual } => write!(
                f,
                "checkpoint has {expected} parameter tensors but the model has {actual}"
            ),
            RestoreError::ShapeMismatch {
                path,
                model,
                checkpoint,
            } => write!(
                f,
                "parameter `{path}` has shape {model:?} in the model but {checkpoint:?} \
                 in the checkpoint"
            ),
            RestoreError::MissingInCheckpoint { path } => {
                write!(f, "model parameter `{path}` is missing from the checkpoint")
            }
            RestoreError::UnexpectedInCheckpoint { path } => write!(
                f,
                "checkpoint entry `{path}` does not match any model parameter"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

impl Checkpoint {
    /// Captures a snapshot of `model`'s parameters, keyed by path.
    ///
    /// # Panics
    ///
    /// Panics if two parameters report the same path — a container or
    /// layer implementation emitting non-unique segments.
    pub fn capture(model: &mut dyn Layer) -> Checkpoint {
        let mut entries: Vec<(String, Tensor)> = Vec::new();
        let mut seen = HashSet::new();
        model.visit_params(&mut |p| {
            assert!(
                seen.insert(p.path.to_string()),
                "duplicate parameter path `{}` — container/layer segments must be unique",
                p.path
            );
            entries.push((p.path.to_string(), p.value.clone()));
        });
        Checkpoint { entries }
    }

    /// Builds a checkpoint from order-keyed tensors without paths.
    #[deprecated(
        note = "order-keyed checkpoints cannot detect model edits; use `Checkpoint::capture`"
    )]
    pub fn from_params(params: Vec<Tensor>) -> Checkpoint {
        Checkpoint {
            entries: params.into_iter().map(|t| (String::new(), t)).collect(),
        }
    }

    /// The `(path, tensor)` entries, in visitation order.
    pub fn entries(&self) -> &[(String, Tensor)] {
        &self.entries
    }

    /// The parameter tensors in visitation order (path-agnostic view).
    pub fn tensors(&self) -> impl Iterator<Item = &Tensor> {
        self.entries.iter().map(|(_, t)| t)
    }

    /// Restores the snapshot into `model` (which must have the identical
    /// architecture). Named checkpoints restore by path; legacy
    /// checkpoints without paths restore positionally.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] naming the offending parameter on count, path or
    /// shape mismatch; the model is left unchanged in that case.
    pub fn restore(&self, model: &mut dyn Layer) -> Result<(), RestoreError> {
        // Validate first so a failed restore never half-applies.
        let mut model_params: Vec<(String, Vec<usize>)> = Vec::new();
        model.visit_params(&mut |p| {
            model_params.push((p.path.to_string(), p.value.dims().to_vec()));
        });
        if model_params.len() != self.entries.len() {
            return Err(RestoreError::CountMismatch {
                expected: self.entries.len(),
                actual: model_params.len(),
            });
        }

        let legacy = self.entries.iter().all(|(n, _)| n.is_empty());
        if legacy {
            for ((path, dims), (_, t)) in model_params.iter().zip(self.entries.iter()) {
                if dims.as_slice() != t.dims() {
                    return Err(RestoreError::ShapeMismatch {
                        path: path.clone(),
                        model: dims.clone(),
                        checkpoint: t.dims().to_vec(),
                    });
                }
            }
            let mut idx = 0usize;
            model.visit_params(&mut |p| {
                *p.value = self.entries[idx].1.clone();
                idx += 1;
            });
            return Ok(());
        }

        let by_path: HashMap<&str, &Tensor> =
            self.entries.iter().map(|(n, t)| (n.as_str(), t)).collect();
        for (path, dims) in &model_params {
            match by_path.get(path.as_str()) {
                None => {
                    return Err(RestoreError::MissingInCheckpoint { path: path.clone() });
                }
                Some(t) if t.dims() != dims.as_slice() => {
                    return Err(RestoreError::ShapeMismatch {
                        path: path.clone(),
                        model: dims.clone(),
                        checkpoint: t.dims().to_vec(),
                    });
                }
                Some(_) => {}
            }
        }
        let model_paths: HashSet<&str> = model_params.iter().map(|(p, _)| p.as_str()).collect();
        for (path, _) in &self.entries {
            if !model_paths.contains(path.as_str()) {
                return Err(RestoreError::UnexpectedInCheckpoint { path: path.clone() });
            }
        }

        model.visit_params(&mut |p| {
            if let Some(t) = by_path.get(p.path) {
                *p.value = (*t).clone();
            }
        });
        Ok(())
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        match serde_json::to_string(self) {
            Ok(s) => s,
            // Unreachable for this type (plain tensors); kept explicit so
            // the failure would be loud rather than silently truncated.
            Err(e) => panic!("checkpoint serialization failed: {e}"),
        }
    }

    /// Parses a checkpoint from JSON (named entries or the legacy bare
    /// tensor list).
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(s: &str) -> Result<Checkpoint, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes the checkpoint to a file atomically (temp file → fsync →
    /// rename) with a CRC32 integrity header, so a crash mid-save or
    /// later bit rot can never produce a silently-corrupt checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::persist::write_checksummed(path, self.to_json().as_bytes())
    }

    /// Reads a checkpoint from a file, verifying the CRC32 framing
    /// written by [`Checkpoint::save`]. Plain-JSON files from before the
    /// framing existed are still accepted (legacy fallback); framed files
    /// that fail verification are rejected.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a corrupt (truncated or bit-flipped) file
    /// or malformed JSON becomes `io::ErrorKind::InvalidData`.
    pub fn load(path: &std::path::Path) -> std::io::Result<Checkpoint> {
        let bytes = std::fs::read(path)?;
        let payload: Vec<u8> = if crate::persist::is_checksummed(&bytes) {
            crate::persist::verify_checksummed(&bytes)?.to_vec()
        } else {
            bytes
        };
        let text = String::from_utf8(payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Self::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Total number of scalar parameters in the snapshot.
    pub fn numel(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.numel()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::sequential::Sequential;
    use csq_tensor::Tensor as T;

    fn model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::with_float_weights(3, 4, seed)),
            Box::new(Linear::with_float_weights(4, 2, seed + 1)),
        ])
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut a = model(0);
        let mut b = model(99); // different init
        let x = T::ones(&[1, 3]);
        assert!(!a.forward(&x, false).approx_eq(&b.forward(&x, false), 1e-6));

        let ckpt = Checkpoint::capture(&mut a);
        ckpt.restore(&mut b).unwrap();
        assert!(a.forward(&x, false).approx_eq(&b.forward(&x, false), 0.0));
    }

    #[test]
    fn capture_keys_entries_by_path() {
        let mut a = model(0);
        let ckpt = Checkpoint::capture(&mut a);
        let paths: Vec<_> = ckpt.entries().iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["0.weight", "0.bias", "1.weight", "1.bias"]);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter path")]
    fn capture_rejects_duplicate_paths() {
        // A broken container that visits the same child twice under the
        // same segment produces colliding paths; capture must refuse.
        #[derive(Debug)]
        struct DoubleVisit(Linear);
        impl crate::layer::Layer for DoubleVisit {
            fn forward(&mut self, input: &T, train: bool) -> T {
                self.0.forward(input, train)
            }
            fn backward(&mut self, g: &T) -> T {
                self.0.backward(g)
            }
            fn visit_params_named(
                &mut self,
                path: &mut crate::layer::ParamPath,
                f: &mut dyn FnMut(crate::layer::ParamMut<'_>),
            ) {
                self.0.visit_params_named(path, &mut *f);
                self.0.visit_params_named(path, &mut *f);
            }
            fn kind(&self) -> &'static str {
                "double_visit"
            }
        }
        let mut broken = DoubleVisit(Linear::with_float_weights(2, 2, 0));
        let _ = Checkpoint::capture(&mut broken);
    }

    #[test]
    fn restore_rejects_wrong_architecture() {
        let mut a = model(0);
        let ckpt = Checkpoint::capture(&mut a);
        let mut other = Sequential::new(vec![
            Box::new(Linear::with_float_weights(3, 4, 0)) as Box<dyn crate::layer::Layer>,
        ]);
        let err = ckpt.restore(&mut other).unwrap_err();
        assert!(matches!(err, RestoreError::CountMismatch { .. }));

        let mut wrong_shape = Sequential::new(vec![
            Box::new(Linear::with_float_weights(3, 4, 0)) as Box<dyn crate::layer::Layer>,
            Box::new(Linear::with_float_weights(4, 3, 1)),
        ]);
        let err = ckpt.restore(&mut wrong_shape).unwrap_err();
        assert_eq!(
            err,
            RestoreError::ShapeMismatch {
                path: "1.weight".to_string(),
                model: vec![3, 4],
                checkpoint: vec![2, 4],
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("1.weight"), "{msg}");
        assert!(msg.contains("[3, 4]") && msg.contains("[2, 4]"), "{msg}");
    }

    #[test]
    fn restore_reports_missing_and_unexpected_paths() {
        let mut a = model(0);
        let mut ckpt = Checkpoint::capture(&mut a);
        // Rename one entry: the model parameter becomes missing and the
        // renamed entry becomes unexpected.
        ckpt.entries[2].0 = "9.weight".to_string();
        let mut b = model(1);
        let err = ckpt.restore(&mut b).unwrap_err();
        assert_eq!(
            err,
            RestoreError::MissingInCheckpoint {
                path: "1.weight".to_string()
            }
        );
        assert!(err.to_string().contains("1.weight"));

        // Swap two same-shape entries' names: nothing missing, restore
        // goes by name, so values land on the right parameters anyway.
        let ckpt2 = Checkpoint::capture(&mut a);
        let mut reordered = ckpt2.clone();
        reordered.entries.swap(0, 2);
        let mut c = model(2);
        reordered.restore(&mut c).unwrap();
        assert_eq!(Checkpoint::capture(&mut c), ckpt2, "by-name restore");
    }

    #[test]
    fn unexpected_entry_display_names_path() {
        let err = RestoreError::UnexpectedInCheckpoint {
            path: "ghost.weight".to_string(),
        };
        assert!(err.to_string().contains("ghost.weight"));
    }

    #[test]
    fn legacy_order_keyed_checkpoint_restores_positionally() {
        let mut a = model(0);
        let named = Checkpoint::capture(&mut a);
        #[allow(deprecated)]
        let legacy =
            Checkpoint::from_params(named.tensors().cloned().collect());
        let mut b = model(42);
        legacy.restore(&mut b).unwrap();
        assert_eq!(Checkpoint::capture(&mut b), named);
    }

    #[test]
    fn legacy_json_without_paths_still_parses() {
        let mut a = model(3);
        let named = Checkpoint::capture(&mut a);
        // Schema v1 serialized the tensors as a bare list under "params".
        let tensors: Vec<T> = named.tensors().cloned().collect();
        let legacy_json = format!(
            "{{\"params\":{}}}",
            serde_json::to_string(&tensors).unwrap()
        );
        let parsed = Checkpoint::from_json(&legacy_json).unwrap();
        assert!(parsed.entries().iter().all(|(n, _)| n.is_empty()));
        let mut b = model(44);
        parsed.restore(&mut b).unwrap();
        assert_eq!(Checkpoint::capture(&mut b), named);
    }

    #[test]
    fn failed_restore_leaves_model_untouched() {
        let mut a = model(0);
        let ckpt = Checkpoint::capture(&mut a);
        let mut wrong = Sequential::new(vec![
            Box::new(Linear::with_float_weights(3, 4, 7)) as Box<dyn crate::layer::Layer>,
            Box::new(Linear::with_float_weights(4, 3, 8)),
        ]);
        let before = Checkpoint::capture(&mut wrong);
        let _ = ckpt.restore(&mut wrong);
        let after = Checkpoint::capture(&mut wrong);
        assert_eq!(before, after, "no partial application");
    }

    #[test]
    fn file_round_trip() {
        let mut a = model(3);
        let ckpt = Checkpoint::capture(&mut a);
        let path = std::env::temp_dir().join("csq_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saved_file_is_checksummed_and_corruption_rejected() {
        let mut a = model(4);
        let ckpt = Checkpoint::capture(&mut a);
        let path = std::env::temp_dir().join("csq_ckpt_crc_test.json");
        ckpt.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(crate::persist::is_checksummed(&bytes), "save writes framing");
        // Flip one payload bit: load must fail with InvalidData, not
        // deserialize garbage.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        std::fs::write(&path, &corrupt).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_plain_json_still_loads() {
        let mut a = model(5);
        let ckpt = Checkpoint::capture(&mut a);
        let path = std::env::temp_dir().join("csq_ckpt_legacy_test.json");
        std::fs::write(&path, ckpt.to_json()).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("csq_ckpt_garbage.json");
        std::fs::write(&path, "not json").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn numel_counts_everything() {
        let mut a = model(0);
        let ckpt = Checkpoint::capture(&mut a);
        // 4x3 + 4 + 2x4 + 2 = 26
        assert_eq!(ckpt.numel(), 26);
    }
}
