//! Saving and restoring trained parameters.
//!
//! A checkpoint is the flat list of a model's parameter tensors in
//! visitation order — the same stable order the optimizers key their
//! state by — so any architecturally identical model can restore it.
//! The format is plain JSON (small models, human-inspectable); weights
//! quantized by CSQ should instead be deployed via fixed-point packing
//! (`csq_core::PackedModel`).

use crate::layer::Layer;
use csq_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of every trainable parameter of a model.
///
/// # Example
///
/// ```
/// use csq_nn::{Checkpoint, Linear};
///
/// let mut trained = Linear::with_float_weights(4, 2, 0);
/// let ckpt = Checkpoint::capture(&mut trained);
/// let mut fresh = Linear::with_float_weights(4, 2, 99);
/// ckpt.restore(&mut fresh)?;
/// # Ok::<(), csq_nn::checkpoint::RestoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Parameter tensors in visitation order.
    pub params: Vec<Tensor>,
}

/// Error restoring a checkpoint into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The checkpoint has a different number of parameter tensors.
    CountMismatch {
        /// Tensors in the checkpoint.
        expected: usize,
        /// Parameters in the model.
        actual: usize,
    },
    /// A tensor's shape differs from the model parameter at its position.
    ShapeMismatch {
        /// Parameter index (visitation order).
        index: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::CountMismatch { expected, actual } => write!(
                f,
                "checkpoint has {expected} parameter tensors but the model has {actual}"
            ),
            RestoreError::ShapeMismatch { index } => {
                write!(f, "parameter {index} has a different shape in the checkpoint")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl Checkpoint {
    /// Captures a snapshot of `model`'s parameters.
    pub fn capture(model: &mut dyn Layer) -> Checkpoint {
        let mut params = Vec::new();
        model.visit_params(&mut |p| params.push(p.value.clone()));
        Checkpoint { params }
    }

    /// Restores the snapshot into `model` (which must have the identical
    /// architecture).
    ///
    /// # Errors
    ///
    /// [`RestoreError`] on parameter count or shape mismatch; the model
    /// is left unchanged in that case.
    pub fn restore(&self, model: &mut dyn Layer) -> Result<(), RestoreError> {
        // Validate first so a failed restore never half-applies.
        let mut count = 0usize;
        let mut shape_err = None;
        model.visit_params(&mut |p| {
            if let Some(ckpt) = self.params.get(count) {
                if ckpt.dims() != p.value.dims() && shape_err.is_none() {
                    shape_err = Some(count);
                }
            }
            count += 1;
        });
        if count != self.params.len() {
            return Err(RestoreError::CountMismatch {
                expected: self.params.len(),
                actual: count,
            });
        }
        if let Some(index) = shape_err {
            return Err(RestoreError::ShapeMismatch { index });
        }
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            *p.value = self.params[idx].clone();
            idx += 1;
        });
        Ok(())
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        match serde_json::to_string(self) {
            Ok(s) => s,
            // Unreachable for this type (plain tensors); kept explicit so
            // the failure would be loud rather than silently truncated.
            Err(e) => panic!("checkpoint serialization failed: {e}"),
        }
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(s: &str) -> Result<Checkpoint, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes the checkpoint to a file atomically (temp file → fsync →
    /// rename) with a CRC32 integrity header, so a crash mid-save or
    /// later bit rot can never produce a silently-corrupt checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::persist::write_checksummed(path, self.to_json().as_bytes())
    }

    /// Reads a checkpoint from a file, verifying the CRC32 framing
    /// written by [`Checkpoint::save`]. Plain-JSON files from before the
    /// framing existed are still accepted (legacy fallback); framed files
    /// that fail verification are rejected.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a corrupt (truncated or bit-flipped) file
    /// or malformed JSON becomes `io::ErrorKind::InvalidData`.
    pub fn load(path: &std::path::Path) -> std::io::Result<Checkpoint> {
        let bytes = std::fs::read(path)?;
        let payload: Vec<u8> = if crate::persist::is_checksummed(&bytes) {
            crate::persist::verify_checksummed(&bytes)?.to_vec()
        } else {
            bytes
        };
        let text = String::from_utf8(payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Self::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Total number of scalar parameters in the snapshot.
    pub fn numel(&self) -> usize {
        self.params.iter().map(Tensor::numel).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::sequential::Sequential;
    use csq_tensor::Tensor as T;

    fn model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::with_float_weights(3, 4, seed)),
            Box::new(Linear::with_float_weights(4, 2, seed + 1)),
        ])
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut a = model(0);
        let mut b = model(99); // different init
        let x = T::ones(&[1, 3]);
        assert!(!a.forward(&x, false).approx_eq(&b.forward(&x, false), 1e-6));

        let ckpt = Checkpoint::capture(&mut a);
        ckpt.restore(&mut b).unwrap();
        assert!(a.forward(&x, false).approx_eq(&b.forward(&x, false), 0.0));
    }

    #[test]
    fn restore_rejects_wrong_architecture() {
        let mut a = model(0);
        let ckpt = Checkpoint::capture(&mut a);
        let mut other = Sequential::new(vec![
            Box::new(Linear::with_float_weights(3, 4, 0)) as Box<dyn crate::layer::Layer>,
        ]);
        let err = ckpt.restore(&mut other).unwrap_err();
        assert!(matches!(err, RestoreError::CountMismatch { .. }));

        let mut wrong_shape = Sequential::new(vec![
            Box::new(Linear::with_float_weights(3, 4, 0)) as Box<dyn crate::layer::Layer>,
            Box::new(Linear::with_float_weights(4, 3, 1)),
        ]);
        let err = ckpt.restore(&mut wrong_shape).unwrap_err();
        assert_eq!(err, RestoreError::ShapeMismatch { index: 2 });
        assert!(err.to_string().contains("parameter 2"));
    }

    #[test]
    fn failed_restore_leaves_model_untouched() {
        let mut a = model(0);
        let ckpt = Checkpoint::capture(&mut a);
        let mut wrong = Sequential::new(vec![
            Box::new(Linear::with_float_weights(3, 4, 7)) as Box<dyn crate::layer::Layer>,
            Box::new(Linear::with_float_weights(4, 3, 8)),
        ]);
        let before = Checkpoint::capture(&mut wrong);
        let _ = ckpt.restore(&mut wrong);
        let after = Checkpoint::capture(&mut wrong);
        assert_eq!(before, after, "no partial application");
    }

    #[test]
    fn file_round_trip() {
        let mut a = model(3);
        let ckpt = Checkpoint::capture(&mut a);
        let path = std::env::temp_dir().join("csq_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saved_file_is_checksummed_and_corruption_rejected() {
        let mut a = model(4);
        let ckpt = Checkpoint::capture(&mut a);
        let path = std::env::temp_dir().join("csq_ckpt_crc_test.json");
        ckpt.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(crate::persist::is_checksummed(&bytes), "save writes framing");
        // Flip one payload bit: load must fail with InvalidData, not
        // deserialize garbage.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        std::fs::write(&path, &corrupt).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_plain_json_still_loads() {
        let mut a = model(5);
        let ckpt = Checkpoint::capture(&mut a);
        let path = std::env::temp_dir().join("csq_ckpt_legacy_test.json");
        std::fs::write(&path, ckpt.to_json()).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("csq_ckpt_garbage.json");
        std::fs::write(&path, "not json").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn numel_counts_everything() {
        let mut a = model(0);
        let ckpt = Checkpoint::capture(&mut a);
        // 4x3 + 4 + 2x4 + 2 = 26
        assert_eq!(ckpt.numel(), 26);
    }
}
