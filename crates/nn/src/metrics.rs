//! Evaluation metrics.

use csq_tensor::reduce::argmax_rows;
use csq_tensor::Tensor;

/// Top-1 classification accuracy in `[0, 1]`.
///
/// # Panics
///
/// Panics when `labels.len()` differs from the batch size.
///
/// # Example
///
/// ```
/// use csq_nn::accuracy;
/// use csq_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2]);
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
/// ```
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.dims()[0], labels.len(), "one label per row required");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = argmax_rows(logits);
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

/// Running average helper for loss/accuracy curves.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: usize,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation with weight `n` (e.g. a batch of size `n`).
    pub fn add(&mut self, value: f32, n: usize) {
        self.sum += value as f64 * n as f64;
        self.count += n;
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Number of observations accumulated.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn running_mean_weighted() {
        let mut m = RunningMean::new();
        m.add(1.0, 1);
        m.add(0.0, 3);
        assert!((m.mean() - 0.25).abs() < 1e-6);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn empty_running_mean_is_zero() {
        assert_eq!(RunningMean::new().mean(), 0.0);
    }
}
