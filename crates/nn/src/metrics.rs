//! Evaluation metrics.
//!
//! The [`RunningMean`] accumulator now lives in `csq-obs` (shared with
//! the telemetry registry); it is re-exported here so existing callers
//! keep working.

use csq_tensor::reduce::argmax_rows;
use csq_tensor::Tensor;

pub use csq_obs::RunningMean;

/// Top-1 classification accuracy in `[0, 1]`.
///
/// # Panics
///
/// Panics when `labels.len()` differs from the batch size.
///
/// # Example
///
/// ```
/// use csq_nn::accuracy;
/// use csq_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2]);
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
/// ```
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.dims()[0], labels.len(), "one label per row required");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = argmax_rows(logits);
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn running_mean_reexport_still_works() {
        let mut m = RunningMean::new();
        m.add(1.0, 1);
        m.add(0.0, 3);
        assert!((m.mean() - 0.25).abs() < 1e-6);
        assert_eq!(m.count(), 4);
    }
}
