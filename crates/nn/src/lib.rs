//! Neural-network training substrate with exact layer-wise backpropagation.
//!
//! The CSQ paper trains CNNs (ResNet-20/18/50, VGG19BN) with SGD; this
//! crate provides everything that pipeline needs, built on
//! [`csq_tensor`]:
//!
//! * the [`Layer`] trait with hand-derived exact adjoints for every layer
//!   (verified against finite differences in the test suite),
//! * a [`WeightSource`] abstraction that lets a layer's weight tensor be
//!   produced by an arbitrary differentiable parameterization — this is the
//!   hook that the CSQ bit-level parameterization and all baseline
//!   quantizers plug into,
//! * standard layers ([`Conv2d`], [`Linear`], [`BatchNorm2d`], [`Relu`],
//!   pooling, [`Sequential`], residual blocks),
//! * uniform activation fake-quantization with a straight-through backward
//!   ([`ActQuant`]), matching the paper's fixed uniform activation scheme,
//! * losses, metrics, [`Sgd`] with momentum/weight decay and the cosine
//!   learning-rate schedule with linear warmup used by the paper,
//! * faithful model builders in [`models`].
//!
//! # Example
//!
//! ```
//! use csq_nn::{Linear, Layer, Relu, Sequential};
//! use csq_tensor::Tensor;
//!
//! let mut model = Sequential::new(vec![
//!     Box::new(Linear::with_float_weights(4, 8, 0)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::with_float_weights(8, 2, 1)),
//! ]);
//! let y = model.forward(&Tensor::ones(&[3, 4]), true);
//! assert_eq!(y.dims(), &[3, 2]);
//! ```

#![deny(missing_docs)]
// Library code must surface failures as structured errors (or documented
// contract panics via `panic!`/`assert!`), never ad-hoc unwraps. Tests and
// doctests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod activation;
pub mod batchnorm;
pub mod checkpoint;
pub mod conv;
pub mod dropout;
pub mod export;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod persist;
pub mod pool;
pub mod residual;
pub mod sequential;
pub mod weight;

pub use activation::{ActQuant, Relu};
pub use batchnorm::BatchNorm2d;
pub use checkpoint::Checkpoint;
pub use conv::{Conv2d, DepthwiseConv2d};
pub use dropout::Dropout;
pub use export::{count_ops, export_model, ExportError, InferOp};
pub use layer::{Layer, ParamMut, ParamPath, ParamRole};
pub use linear::Linear;
pub use loss::softmax_cross_entropy;
pub use metrics::accuracy;
pub use activation::Pact;
pub use optim::{Adam, CosineSchedule, OptimState, OptimStateError, Sgd};
pub use persist::PersistError;
pub use pool::{AvgPool2d, Flatten, GlobalAvgPool, MaxPool2d};
pub use residual::Residual;
pub use sequential::Sequential;
pub use weight::{FloatWeight, WeightFactory, WeightSource};
