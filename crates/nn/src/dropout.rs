//! Inverted dropout.

use crate::layer::{Layer, ParamPath};
use csq_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so evaluation
/// is a plain identity. VGG-style classifiers traditionally use it; the
/// reduced-scale benchmark models leave it off.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: ChaCha8Rng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a seeded
    /// mask stream (runs stay reproducible).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout {
            p,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.numel())
            .map(|_| {
                if self.rng.gen_range(0.0f32..1.0) < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mut out = input.clone();
        for (v, &m) in out.data_mut().iter_mut().zip(mask.iter()) {
            *v *= m;
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let Some(mask) = self.mask.take() else {
            // Eval-mode or p == 0 forward: identity.
            return grad_output.clone();
        };
        assert_eq!(mask.len(), grad_output.numel(), "grad shape mismatch");
        let mut g = grad_output.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask.iter()) {
            *v *= m;
        }
        g
    }

    fn export_infer_ops(
        &self,
        _path: &mut ParamPath,
        ops: &mut Vec<crate::export::InferOp>,
    ) -> Result<(), crate::export::ExportError> {
        // Evaluation-mode dropout is the identity.
        ops.push(crate::export::InferOp::Identity);
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert!(d.forward(&x, false).approx_eq(&x, 0.0));
    }

    #[test]
    fn p_zero_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 0);
        let x = Tensor::ones(&[8]);
        assert!(d.forward(&x, true).approx_eq(&x, 0.0));
    }

    #[test]
    fn training_preserves_expected_mass() {
        let mut d = Dropout::new(0.3, 1);
        let x = Tensor::ones(&[10000]);
        let y = d.forward(&x, true);
        // Inverted scaling keeps E[y] = 1; the mean over 10k elements
        // should be close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Roughly 30% of elements are exactly zero.
        let zeros = y.iter().filter(|&&v| v == 0.0).count();
        assert!((2500..3500).contains(&zeros), "{zeros} zeros");
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[64]));
        // Gradient is zero exactly where the output was zeroed.
        for (&yo, &go) in y.iter().zip(g.iter()) {
            assert_eq!(yo == 0.0, go == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "drop probability must be in [0, 1)")]
    fn p_one_rejected() {
        Dropout::new(1.0, 0);
    }
}
