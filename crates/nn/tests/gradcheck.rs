//! Whole-network gradient checks: the composition of every layer kind is
//! verified against central finite differences, parameter by parameter.
//! (Individual layers have their own checks in unit tests; this guards
//! the chain rule across the composition, including loss.)

use csq_nn::{
    softmax_cross_entropy, AvgPool2d, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Layer, Linear,
    MaxPool2d, Relu, Sequential,
};
use csq_tensor::conv::ConvSpec;
use csq_tensor::{init, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn composite_model() -> Sequential {
    Sequential::new(vec![
        Box::new(Conv2d::with_float_weights(2, 4, ConvSpec::new(3, 1, 1), true, 1)),
        Box::new(BatchNorm2d::new(4)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Conv2d::with_float_weights(4, 4, ConvSpec::new(3, 1, 1), false, 2)),
        Box::new(Relu::new()),
        Box::new(AvgPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Linear::with_float_weights(4 * 2 * 2, 3, 3)),
    ])
}

fn loss_of(model: &mut Sequential, x: &Tensor, labels: &[usize]) -> f32 {
    // Training-mode forward so batch statistics match the backward pass,
    // but with running stats restored afterwards so repeated evaluations
    // are consistent.
    let logits = model.forward(x, true);
    softmax_cross_entropy(&logits, labels).0
}

#[test]
fn composite_network_parameter_gradients_match_finite_difference() {
    let mut model = composite_model();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let x = init::uniform(&[2, 2, 8, 8], -1.0, 1.0, &mut rng);
    let labels = [0usize, 2];

    // Analytic gradients.
    model.zero_grads();
    let logits = model.forward(&x, true);
    let (_, grad) = softmax_cross_entropy(&logits, &labels);
    model.backward(&grad);
    let mut analytic = Vec::new();
    model.visit_params(&mut |p| analytic.extend_from_slice(p.grad.data()));

    // Sample parameters across the whole network (checking all ~700 is
    // slow; a strided sample still covers every layer).
    let n_params = analytic.len();
    let stride = (n_params / 60).max(1);
    let eps = 1e-2f32;
    let mut checked = 0;
    let mut max_rel = 0.0f32;
    for pi in (0..n_params).step_by(stride) {
        let bump = |model: &mut Sequential, delta: f32| {
            let mut seen = 0usize;
            model.visit_params(&mut |p| {
                let n = p.value.numel();
                if pi >= seen && pi < seen + n {
                    p.value.data_mut()[pi - seen] += delta;
                }
                seen += n;
            });
        };
        bump(&mut model, eps);
        let lp = loss_of(&mut model, &x, &labels);
        bump(&mut model, -2.0 * eps);
        let lm = loss_of(&mut model, &x, &labels);
        bump(&mut model, eps);
        let numeric = (lp - lm) / (2.0 * eps);
        let err = (numeric - analytic[pi]).abs();
        max_rel = max_rel.max(err / (1.0 + numeric.abs()));
        checked += 1;
    }
    assert!(checked >= 50, "sampled {checked} parameters");
    assert!(
        max_rel < 0.05,
        "max relative parameter-gradient error {max_rel}"
    );
}

#[test]
fn composite_network_input_gradient_matches_finite_difference() {
    let mut model = composite_model();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let x = init::uniform(&[2, 2, 8, 8], -1.0, 1.0, &mut rng);
    let labels = [1usize, 0];

    model.zero_grads();
    let logits = model.forward(&x, true);
    let (_, grad) = softmax_cross_entropy(&logits, &labels);
    let gx = model.backward(&grad);

    let eps = 1e-2f32;
    let dx = init::uniform(x.dims(), -1.0, 1.0, &mut rng);
    let mut xp = x.clone();
    xp.axpy(eps, &dx);
    let mut xm = x.clone();
    xm.axpy(-eps, &dx);
    let num = (loss_of(&mut model, &xp, &labels) - loss_of(&mut model, &xm, &labels)) / (2.0 * eps);
    let ana = gx.dot(&dx);
    assert!(
        (num - ana).abs() < 0.05 * (1.0 + num.abs()),
        "input grad: numeric {num} vs analytic {ana}"
    );
}

#[test]
fn global_avgpool_in_composition() {
    let mut model = Sequential::new(vec![
        Box::new(Conv2d::with_float_weights(1, 3, ConvSpec::new(3, 1, 1), false, 4))
            as Box<dyn Layer>,
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(Linear::with_float_weights(3, 2, 5)),
    ]);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let x = init::uniform(&[3, 1, 5, 5], -1.0, 1.0, &mut rng);
    let labels = [0usize, 1, 0];
    model.zero_grads();
    let logits = model.forward(&x, true);
    let (_, grad) = softmax_cross_entropy(&logits, &labels);
    let gx = model.backward(&grad);
    assert_eq!(gx.dims(), x.dims());
    assert!(gx.all_finite());

    let eps = 1e-2f32;
    let dx = init::uniform(x.dims(), -1.0, 1.0, &mut rng);
    let mut xp = x.clone();
    xp.axpy(eps, &dx);
    let mut xm = x.clone();
    xm.axpy(-eps, &dx);
    let num = (loss_of2(&mut model, &xp, &labels) - loss_of2(&mut model, &xm, &labels))
        / (2.0 * eps);
    assert!((num - gx.dot(&dx)).abs() < 0.05 * (1.0 + num.abs()));

    fn loss_of2(model: &mut Sequential, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = model.forward(x, true);
        softmax_cross_entropy(&logits, labels).0
    }
}
