//! Property-based tests of optimizer and schedule invariants.

use csq_nn::{Adam, CosineSchedule, Layer, Linear, Sgd};
use proptest::prelude::*;

/// Builds a 1-layer model with every weight set to `w0` and every
/// gradient to `g`.
fn prepared_linear(w0: f32, g: f32) -> Linear {
    let mut l = Linear::with_float_weights(2, 2, 0);
    l.visit_params(&mut |p| {
        p.value.fill(w0);
        p.grad.fill(g);
    });
    l
}

fn first_weight(l: &mut Linear) -> f32 {
    let mut w = 0.0;
    let mut first = true;
    l.visit_params(&mut |p| {
        if first {
            w = p.value.data()[0];
            first = false;
        }
    });
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One SGD step without momentum/decay is exactly `w -= lr·g`.
    #[test]
    fn sgd_vanilla_step_is_exact(w0 in -2.0f32..2.0, g in -2.0f32..2.0, lr in 0.0f32..0.5) {
        let mut l = prepared_linear(w0, g);
        let mut opt = Sgd::new(lr, 0.0, 0.0);
        opt.step(&mut l);
        let w = first_weight(&mut l);
        prop_assert!((w - (w0 - lr * g)).abs() < 1e-5);
    }

    /// SGD with momentum equals vanilla SGD on the first step.
    #[test]
    fn momentum_matches_vanilla_on_first_step(w0 in -1.0f32..1.0, g in -1.0f32..1.0) {
        let mut a = prepared_linear(w0, g);
        let mut b = prepared_linear(w0, g);
        Sgd::new(0.1, 0.0, 0.0).step(&mut a);
        Sgd::new(0.1, 0.9, 0.0).step(&mut b);
        prop_assert!((first_weight(&mut a) - first_weight(&mut b)).abs() < 1e-6);
    }

    /// An Adam step never moves a parameter more than ~lr (the bias
    /// correction bounds |m̂/√v̂| near 1 on the first step).
    #[test]
    fn adam_step_is_bounded_by_lr(w0 in -1.0f32..1.0, g in -100.0f32..100.0, lr in 0.001f32..0.1) {
        prop_assume!(g.abs() > 1e-3);
        let mut l = prepared_linear(w0, g);
        let mut opt = Adam::new(lr, 0.0);
        opt.step(&mut l);
        let moved = (first_weight(&mut l) - w0).abs();
        prop_assert!(moved <= lr * 1.01, "moved {} with lr {}", moved, lr);
        // And it moves in the descent direction.
        let dw = first_weight(&mut l) - w0;
        prop_assert!(dw * g <= 0.0);
    }

    /// Zero gradient means no movement for either optimizer.
    #[test]
    fn zero_gradient_is_a_fixed_point(w0 in -1.0f32..1.0) {
        let mut a = prepared_linear(w0, 0.0);
        Sgd::new(0.1, 0.9, 0.0).step(&mut a);
        prop_assert!((first_weight(&mut a) - w0).abs() < 1e-7);
        let mut b = prepared_linear(w0, 0.0);
        Adam::new(0.1, 0.0).step(&mut b);
        prop_assert!((first_weight(&mut b) - w0).abs() < 1e-7);
    }

    /// The cosine schedule stays within [0, base_lr] and ends near zero.
    #[test]
    fn cosine_schedule_bounded(base in 0.001f32..1.0, total in 2usize..500) {
        let s = CosineSchedule::new(base, 0, total);
        for e in 0..total {
            let lr = s.lr_at(e);
            prop_assert!((0.0..=base * 1.0001).contains(&lr));
        }
        // Monotone decreasing without warmup.
        for e in 1..total {
            prop_assert!(s.lr_at(e) <= s.lr_at(e - 1) + 1e-7);
        }
        // The final LR approaches zero once the schedule is long enough
        // for t = (T−1)/T to be near 1 (cos(π·t) ≈ −1).
        if total >= 20 {
            prop_assert!(s.lr_at(total - 1) < base * 0.05 + 1e-6);
        }
    }

    /// Warmup never exceeds the base learning rate.
    #[test]
    fn warmup_bounded(base in 0.01f32..1.0, warmup in 1usize..10, extra in 2usize..50) {
        let total = warmup + extra;
        let s = CosineSchedule::new(base, warmup, total);
        for e in 0..total {
            prop_assert!(s.lr_at(e) <= base * 1.0001);
        }
    }
}
