//! DoReFa-Net weight quantization (Zhou et al. 2016).
//!
//! The latent weight is squashed with `tanh`, normalized by the layer's
//! maximum, mapped to `[0, 1]`, rounded on a `2^k − 1` grid and mapped
//! back to `[-1, 1]`:
//!
//! ```text
//! t = tanh(w) / max|tanh(w)|
//! W = 2 · round_k((t + 1) / 2) − 1
//! ```
//!
//! The backward pass applies STE through the rounding but keeps the exact
//! derivative of the smooth tanh-normalization (as in the original
//! implementation). PACT uses this weight path together with the
//! learnable-clip activation quantizer [`csq_nn::activation::Pact`].

use csq_nn::{ParamMut, ParamPath, ParamRole, WeightSource};
use csq_tensor::Tensor;

/// DoReFa weight parameterization.
#[derive(Debug)]
pub struct DorefaWeight {
    latent: Tensor,
    grad: Tensor,
    bits: usize,
    /// Cached per-element tanh values and the max for the backward pass.
    cache: Option<(Vec<f32>, f32)>,
}

impl DorefaWeight {
    /// Wraps an initialized float weight.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16`.
    pub fn from_float(w: &Tensor, bits: usize) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        DorefaWeight {
            grad: Tensor::zeros(w.dims()),
            latent: w.clone(),
            bits,
            cache: None,
        }
    }
}

impl WeightSource for DorefaWeight {
    fn materialize(&mut self) -> Tensor {
        let tanhs: Vec<f32> = self.latent.iter().map(|&v| v.tanh()).collect();
        let max_t = tanhs.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-8);
        let levels = ((1u32 << self.bits) - 1) as f32;
        let data: Vec<f32> = tanhs
            .iter()
            .map(|&t| {
                let unit = (t / max_t + 1.0) / 2.0; // [0, 1]
                let q = (unit * levels).round() / levels;
                2.0 * q - 1.0
            })
            .collect();
        self.cache = Some((tanhs, max_t));
        Tensor::from_vec(data, self.latent.dims())
    }

    fn backward(&mut self, grad_weight: &Tensor) {
        let (tanhs, max_t) = self
            .cache
            .as_ref()
            .expect("DorefaWeight::backward called before materialize");
        // STE through round; exact through t ↦ 2·((tanh/max + 1)/2) − 1 =
        // tanh(w)/max. dW/dw ≈ (1 − tanh²(w)) / max (treating the max as
        // a constant, as the reference implementation does).
        for ((g, &dy), &t) in self
            .grad
            .data_mut()
            .iter_mut()
            .zip(grad_weight.data().iter())
            .zip(tanhs.iter())
        {
            *g += dy * (1.0 - t * t) / max_t;
        }
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        f(ParamMut::new(
            path.as_str(),
            ParamRole::Weight,
            &mut self.latent,
            &mut self.grad,
        ));
    }

    fn precision(&self) -> Option<f32> {
        Some(self.bits as f32)
    }

    fn numel(&self) -> usize {
        self.latent.numel()
    }

    fn quant_step(&self) -> Option<f32> {
        Some(2.0 / ((1u32 << self.bits) - 1) as f32)
    }

    fn bit_mask(&self) -> Option<Vec<bool>> {
        Some(vec![true; self.bits])
    }
}

/// Factory producing [`DorefaWeight`] sources for the model builders.
pub fn dorefa_factory(bits: usize) -> impl FnMut(Tensor) -> Box<dyn WeightSource> {
    move |w: Tensor| Box::new(DorefaWeight::from_float(&w, bits)) as _
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn output_bounded_and_on_grid() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w = init::normal(&[64], 0.0, 1.0, &mut rng);
        let mut q = DorefaWeight::from_float(&w, 3);
        let m = q.materialize();
        let step = q.quant_step().unwrap();
        for &v in m.iter() {
            assert!(v.abs() <= 1.0 + 1e-6);
            let k = (v + 1.0) / step;
            assert!((k - k.round()).abs() < 1e-4, "{v} off grid");
        }
    }

    #[test]
    fn preserves_sign_structure() {
        let w = Tensor::from_vec(vec![2.0, -2.0, 0.4, -0.4], &[4]);
        let mut q = DorefaWeight::from_float(&w, 4);
        let m = q.materialize();
        assert!(m.data()[0] > 0.0 && m.data()[1] < 0.0);
        assert!(m.data()[0] > m.data()[2]);
        assert!((m.data()[0] + m.data()[1]).abs() < 1e-6, "odd symmetry");
    }

    #[test]
    fn gradient_scales_with_tanh_slope() {
        // Large |w| → saturated tanh → tiny gradient; small |w| → larger.
        let w = Tensor::from_vec(vec![0.1, 3.0], &[2]);
        let mut q = DorefaWeight::from_float(&w, 4);
        q.materialize();
        q.backward(&Tensor::ones(&[2]));
        let mut grads = Vec::new();
        q.visit_params(&mut |p| grads.extend_from_slice(p.grad.data()));
        assert!(grads[0] > grads[1] * 5.0, "{grads:?}");
    }

    #[test]
    fn one_bit_gives_binary_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = init::uniform(&[32], -1.0, 1.0, &mut rng);
        let mut q = DorefaWeight::from_float(&w, 1);
        let m = q.materialize();
        for &v in m.iter() {
            assert!((v.abs() - 1.0).abs() < 1e-6, "1-bit value {v}");
        }
    }
}
