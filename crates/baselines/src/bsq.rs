//! BSQ: bit-level sparsity quantization (Yang et al. 2021) — the paper's
//! main baseline and the method CSQ directly improves on.
//!
//! BSQ treats each bit of the quantized weight as an independent
//! trainable variable in `[0, 1]` (Eq. 1 of the CSQ paper):
//!
//! ```text
//! W = s / (2^n − 1) · Round[ Σ_b (W_p^(b) − W_n^(b)) · 2^b ]
//! ```
//!
//! with a straight-through estimator across the rounding, an L1
//! regularizer on the bit variables to induce bit-level structural
//! sparsity, and *periodic hard pruning*: every `prune_every` epochs,
//! most-significant bit planes whose variables have all collapsed below
//! 0.5 are removed and the scale is re-normalized so the represented
//! weights are unchanged. The rounding STE and the hard periodic
//! precision adjustment are exactly the two instabilities CSQ's
//! continuous sparsification removes.

use csq_nn::{ParamMut, ParamPath, ParamRole, WeightSource};
use csq_tensor::Tensor;

/// BSQ bit-level weight parameterization.
#[derive(Debug)]
pub struct BsqWeight {
    dims: Vec<usize>,
    numel: usize,
    /// Bit planes configured at construction.
    total_bits: usize,
    /// Bit planes still active (MSB pruning only reduces this).
    active_bits: usize,
    s: Tensor,
    grad_s: Tensor,
    /// Positive/negative bit variables in `[0, 1]`, laid out `[bits][numel]`.
    bp: Tensor,
    grad_bp: Tensor,
    bn: Tensor,
    grad_bn: Tensor,
    /// L1 strength on the bit variables.
    l1: f32,
    /// Prune near-empty MSB planes every this many epochs.
    prune_every: usize,
    /// Maximum fraction of set bits a plane may carry and still be
    /// pruned (the BSQ paper prunes planes whose variables fall below a
    /// threshold, accepting the small perturbation and re-normalizing).
    prune_tolerance: f32,
    /// Rounded bit-sums cached for the scale gradient.
    cache_v: Option<Vec<f32>>,
}

impl BsqWeight {
    /// Builds the parameterization from an initialized float weight,
    /// decomposing it into `bits` binary planes.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16` or `prune_every == 0`.
    pub fn from_float(w: &Tensor, bits: usize, l1: f32, prune_every: usize) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(prune_every > 0, "prune_every must be positive");
        let numel = w.numel();
        let levels = (1u32 << bits) - 1;
        let s = w.max_abs().max(1e-8);
        let mut bp = vec![0.0f32; bits * numel];
        let mut bn = vec![0.0f32; bits * numel];
        for (i, &wi) in w.data().iter().enumerate() {
            let mag = ((wi.abs() / s) * levels as f32).round().min(levels as f32) as u32;
            for b in 0..bits {
                if (mag >> b) & 1 == 1 {
                    if wi >= 0.0 {
                        bp[b * numel + i] = 1.0;
                    } else {
                        bn[b * numel + i] = 1.0;
                    }
                }
            }
        }
        BsqWeight {
            dims: w.dims().to_vec(),
            numel,
            total_bits: bits,
            active_bits: bits,
            prune_tolerance: 0.01,
            s: Tensor::from_vec(vec![s], &[1]),
            grad_s: Tensor::zeros(&[1]),
            bp: Tensor::from_vec(bp, &[bits * numel]),
            grad_bp: Tensor::zeros(&[bits * numel]),
            bn: Tensor::from_vec(bn, &[bits * numel]),
            grad_bn: Tensor::zeros(&[bits * numel]),
            l1,
            prune_every,
            cache_v: None,
        }
    }

    /// Currently active bit planes.
    pub fn active_bits(&self) -> usize {
        self.active_bits
    }

    /// Overrides the pruning occupancy tolerance (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `tolerance` is in `[0, 1]`.
    pub fn with_prune_tolerance(mut self, tolerance: f32) -> Self {
        assert!((0.0..=1.0).contains(&tolerance), "tolerance out of range");
        self.prune_tolerance = tolerance;
        self
    }

    /// Whether the given plane is prunable: the fraction of its (rounded)
    /// set bit variables is at or below the tolerance. At tolerance 0
    /// this is the strict "all bits collapsed" rule; the default small
    /// tolerance matches BSQ's threshold-based structural pruning, which
    /// accepts a bounded perturbation from zeroing the stragglers.
    fn plane_is_prunable(&self, b: usize) -> bool {
        let lo = b * self.numel;
        let hi = lo + self.numel;
        let set = self.bp.data()[lo..hi]
            .iter()
            .chain(self.bn.data()[lo..hi].iter())
            .filter(|&&v| v >= 0.5)
            .count();
        (set as f32) <= self.prune_tolerance * self.numel as f32
    }
}

impl WeightSource for BsqWeight {
    fn materialize(&mut self) -> Tensor {
        // Project the bit variables back into [0, 1] (BSQ clips after
        // each optimizer update; the projection is idempotent, so calling
        // it from evaluation forwards is harmless).
        self.bp.map_inplace(|v| v.clamp(0.0, 1.0));
        self.bn.map_inplace(|v| v.clamp(0.0, 1.0));

        let levels = ((1u32 << self.active_bits) - 1) as f32;
        let q = self.s.data()[0] / levels;
        let mut v = vec![0.0f32; self.numel];
        for b in 0..self.active_bits {
            let pow = (1u32 << b) as f32;
            let bp = &self.bp.data()[b * self.numel..(b + 1) * self.numel];
            let bn = &self.bn.data()[b * self.numel..(b + 1) * self.numel];
            for i in 0..self.numel {
                v[i] += (bp[i] - bn[i]) * pow;
            }
        }
        for vi in v.iter_mut() {
            *vi = vi.round();
        }
        let w: Vec<f32> = v.iter().map(|&vi| vi * q).collect();
        self.cache_v = Some(v);
        Tensor::from_vec(w, &self.dims)
    }

    fn backward(&mut self, grad_weight: &Tensor) {
        let v = self
            .cache_v
            .as_ref()
            .expect("BsqWeight::backward called before materialize");
        let levels = ((1u32 << self.active_bits) - 1) as f32;
        let q = self.s.data()[0] / levels;
        let dw = grad_weight.data();

        // Scale gradient: dW/ds = V / (2^n − 1).
        let ds: f32 = dw.iter().zip(v.iter()).map(|(&g, &vi)| g * vi).sum::<f32>() / levels;
        self.grad_s.data_mut()[0] += ds;

        // Proximal L1 step (soft-thresholding toward zero). Applying the
        // L1 as a proximal operator rather than a subgradient keeps its
        // strength independent of the optimizer's per-parameter
        // normalization (a constant subgradient fed through Adam would be
        // amplified to full-size steps and collapse every bit), and doing
        // it here — backward runs only in training — keeps evaluation
        // side-effect-free.
        let l1 = self.l1;
        self.bp.map_inplace(|v| (v - l1).max(0.0));
        self.bn.map_inplace(|v| (v - l1).max(0.0));

        // STE across Round: dW/dbp[b,i] = q · 2^b.
        for b in 0..self.active_bits {
            let common = q * (1u32 << b) as f32;
            let gp = &mut self.grad_bp.data_mut()[b * self.numel..(b + 1) * self.numel];
            let gn = &mut self.grad_bn.data_mut()[b * self.numel..(b + 1) * self.numel];
            for i in 0..self.numel {
                gp[i] += dw[i] * common;
                gn[i] += -dw[i] * common;
            }
        }
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        path.scoped("s", |p| {
            f(ParamMut::new(
                p.as_str(),
                ParamRole::QuantScale,
                &mut self.s,
                &mut self.grad_s,
            ))
        });
        path.scoped("b_p", |p| {
            f(ParamMut::new(
                p.as_str(),
                ParamRole::BitLogit,
                &mut self.bp,
                &mut self.grad_bp,
            ))
        });
        path.scoped("b_n", |p| {
            f(ParamMut::new(
                p.as_str(),
                ParamRole::BitLogit,
                &mut self.bn,
                &mut self.grad_bn,
            ))
        });
    }

    fn on_epoch_end(&mut self, epoch: usize) {
        if (epoch + 1) % self.prune_every != 0 {
            return;
        }
        // Prune near-empty MSB planes (keep at least one), re-normalizing
        // the scale so weights below the truncation are unchanged:
        // s' = s · (2^n' − 1)/(2^n − 1). Bits inside the tolerance are
        // zeroed (the bounded perturbation BSQ's hard pruning accepts).
        while self.active_bits > 1 && self.plane_is_prunable(self.active_bits - 1) {
            let b = self.active_bits - 1;
            let lo = b * self.numel;
            let hi = lo + self.numel;
            for v in &mut self.bp.data_mut()[lo..hi] {
                *v = 0.0;
            }
            for v in &mut self.bn.data_mut()[lo..hi] {
                *v = 0.0;
            }
            let old_levels = ((1u32 << self.active_bits) - 1) as f32;
            self.active_bits -= 1;
            let new_levels = ((1u32 << self.active_bits) - 1) as f32;
            let s = self.s.data()[0];
            self.s.data_mut()[0] = s * new_levels / old_levels;
        }
    }

    fn precision(&self) -> Option<f32> {
        Some(self.active_bits as f32)
    }

    fn numel(&self) -> usize {
        self.numel
    }

    fn quant_step(&self) -> Option<f32> {
        let levels = ((1u32 << self.active_bits) - 1) as f32;
        Some(self.s.data()[0] / levels)
    }

    fn finalize(&mut self) {
        // Snap to binary bits *through the represented value*: the
        // training forward rounds the bit-weighted sum, so the snap must
        // re-encode that rounded sum rather than threshold each bit
        // variable independently (which would change the weights).
        let levels = ((1u32 << self.active_bits) - 1) as f32;
        let mut v = vec![0.0f32; self.numel];
        for b in 0..self.active_bits {
            let pow = (1u32 << b) as f32;
            let bp = &self.bp.data()[b * self.numel..(b + 1) * self.numel];
            let bn = &self.bn.data()[b * self.numel..(b + 1) * self.numel];
            for i in 0..self.numel {
                v[i] += (bp[i] - bn[i]) * pow;
            }
        }
        self.bp.fill(0.0);
        self.bn.fill(0.0);
        for i in 0..self.numel {
            let vi = v[i].round().clamp(-levels, levels) as i32;
            let mag = vi.unsigned_abs();
            for b in 0..self.active_bits {
                if (mag >> b) & 1 == 1 {
                    if vi >= 0 {
                        self.bp.data_mut()[b * self.numel + i] = 1.0;
                    } else {
                        self.bn.data_mut()[b * self.numel + i] = 1.0;
                    }
                }
            }
        }
    }

    fn bit_mask(&self) -> Option<Vec<bool>> {
        Some((0..self.total_bits).map(|b| b < self.active_bits).collect())
    }
}

/// Factory producing [`BsqWeight`] sources with the given L1 strength and
/// pruning period.
pub fn bsq_factory(
    bits: usize,
    l1: f32,
    prune_every: usize,
) -> impl FnMut(Tensor) -> Box<dyn WeightSource> {
    move |w: Tensor| Box::new(BsqWeight::from_float(&w, bits, l1, prune_every)) as _
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rand_w(seed: u64, n: usize) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        init::uniform(&[n], -1.0, 1.0, &mut rng)
    }

    #[test]
    fn init_reconstructs_8bit_quantization() {
        let w = rand_w(0, 32);
        let mut q = BsqWeight::from_float(&w, 8, 0.0, 1);
        let m = q.materialize();
        let step = q.quant_step().unwrap();
        for (a, b) in w.iter().zip(m.iter()) {
            assert!((a - b).abs() <= step * 0.51, "{a} vs {b}");
        }
    }

    #[test]
    fn pruning_removes_zero_msb_and_preserves_weights() {
        let w = Tensor::from_vec(vec![0.1, -0.05, 0.08, 0.02], &[4]);
        let mut q = BsqWeight::from_float(&w, 8, 0.0, 1);
        // Force the top three planes to zero.
        for b in 5..8 {
            for i in 0..4 {
                q.bp.data_mut()[b * 4 + i] = 0.0;
                q.bn.data_mut()[b * 4 + i] = 0.0;
            }
        }
        let before = q.materialize();
        q.on_epoch_end(0);
        assert_eq!(q.active_bits(), 5);
        let after = q.materialize();
        assert!(
            after.approx_eq(&before, 1e-5),
            "pruning must not change represented weights"
        );
        assert_eq!(
            q.bit_mask().unwrap(),
            vec![true, true, true, true, true, false, false, false]
        );
    }

    #[test]
    fn pruning_respects_period() {
        let w = Tensor::from_vec(vec![0.4], &[1]);
        let mut q = BsqWeight::from_float(&w, 8, 0.0, 3);
        // Empty every plane by hand; pruning should only fire on epochs
        // where (epoch+1) % 3 == 0, and must keep at least one plane.
        q.bp.fill(0.0);
        q.bn.fill(0.0);
        q.on_epoch_end(0);
        assert_eq!(q.active_bits(), 8, "epoch 0 is not a pruning epoch");
        q.on_epoch_end(2);
        assert_eq!(q.active_bits(), 1, "keeps at least one plane");
    }

    #[test]
    fn msb_plane_occupied_at_init() {
        // The scale is max|w|, so the largest element always uses the
        // MSB plane: no plane is prunable immediately after init.
        let w = rand_w(4, 64);
        let mut q = BsqWeight::from_float(&w, 8, 0.0, 1);
        q.on_epoch_end(0);
        assert_eq!(q.active_bits(), 8);
    }

    #[test]
    fn l1_shrinks_bits_toward_zero() {
        let w = rand_w(1, 16);
        let mut q = BsqWeight::from_float(&w, 4, 0.1, 1);
        let before: f32 = q.bp.sum() + q.bn.sum();
        // With zero task gradient, each backward shrinks every active
        // bit variable by l1 (proximal soft-thresholding).
        let zero = Tensor::zeros(&[16]);
        for _ in 0..3 {
            q.materialize();
            q.backward(&zero);
        }
        let after: f32 = q.bp.sum() + q.bn.sum();
        assert!(after < before, "L1 must shrink bit mass: {before} -> {after}");
        // Ten shrink steps of 0.1 kill every bit.
        for _ in 0..10 {
            q.materialize();
            q.backward(&zero);
        }
        assert_eq!(q.bp.sum() + q.bn.sum(), 0.0);
        // Evaluation-style forwards (no backward) must not mutate bits.
        let mut q2 = BsqWeight::from_float(&w, 4, 0.1, 1);
        let mass: f32 = q2.bp.sum() + q2.bn.sum();
        for _ in 0..5 {
            q2.materialize();
        }
        assert_eq!(q2.bp.sum() + q2.bn.sum(), mass, "eval forwards are side-effect-free");
    }

    #[test]
    fn ste_gradient_scales_with_place_value() {
        let w = Tensor::from_vec(vec![0.5], &[1]);
        let mut q = BsqWeight::from_float(&w, 4, 0.0, 1);
        q.materialize();
        q.backward(&Tensor::ones(&[1]));
        // grad of bit b is q·2^b: plane 3 gets 8x plane 0.
        let g0 = q.grad_bp.data()[0];
        let g3 = q.grad_bp.data()[3];
        assert!((g3 / g0 - 8.0).abs() < 1e-4, "{g0} {g3}");
    }

    #[test]
    fn finalize_preserves_represented_weights() {
        let w = rand_w(2, 8);
        let mut q = BsqWeight::from_float(&w, 4, 0.0, 1);
        // Perturb the bit variables into fractional territory, as
        // training does.
        for v in q.bp.data_mut().iter_mut() {
            *v = (*v + 0.3).clamp(0.0, 1.0);
        }
        let before = q.materialize();
        q.finalize();
        // Bits are now exactly binary…
        assert!(q.bp.iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(q.bn.iter().all(|&v| v == 0.0 || v == 1.0));
        // …and the represented weights are unchanged (the snap encodes
        // the same rounded sum the training forward used).
        let after = q.materialize();
        assert!(
            after.approx_eq(&before, 1e-5),
            "finalize changed weights: {before} vs {after}"
        );
        let step = q.quant_step().unwrap();
        for &v in after.iter() {
            let k = v / step;
            assert!((k - k.round()).abs() < 1e-4);
        }
    }

    #[test]
    fn materialize_projects_out_of_range_bits() {
        let w = rand_w(3, 4);
        let mut q = BsqWeight::from_float(&w, 4, 0.0, 1);
        q.bp.data_mut()[0] = 1.7;
        q.bn.data_mut()[0] = -0.5;
        q.materialize();
        assert_eq!(q.bp.data()[0], 1.0);
        assert_eq!(q.bn.data()[0], 0.0);
    }
}
