//! STE-Uniform: conventional quantization-aware training with a
//! straight-through estimator (Polino et al., \[27\] in the paper).
//!
//! A latent full-precision weight is kept; the forward pass materializes
//! its linear symmetric `bits`-bit quantization, and the backward pass
//! copies `dL/dW` straight onto the latent weight (the STE
//! approximation). This is exactly the scheme CSQ's Table IV ablation
//! compares continuous sparsification against.

use csq_nn::{ParamMut, ParamPath, ParamRole, WeightSource};
use csq_tensor::Tensor;

/// Latent-float weight with linear symmetric fake quantization and an
/// STE backward.
#[derive(Debug)]
pub struct SteUniformWeight {
    latent: Tensor,
    grad: Tensor,
    bits: usize,
    /// Scale of the most recent materialization (max |latent|).
    last_scale: f32,
}

impl SteUniformWeight {
    /// Wraps an initialized float weight.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16`.
    pub fn from_float(w: &Tensor, bits: usize) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        SteUniformWeight {
            grad: Tensor::zeros(w.dims()),
            latent: w.clone(),
            bits,
            last_scale: 1.0,
        }
    }

    /// The latent full-precision weight (inspection).
    pub fn latent(&self) -> &Tensor {
        &self.latent
    }

    /// Quantizes `v` to a symmetric `bits`-bit grid with scale `s`.
    fn quantize(v: f32, s: f32, bits: usize) -> f32 {
        // Signed symmetric grid with 2^(bits-1) - 1 positive levels (the
        // standard linear scheme; 1-bit degenerates to sign * s).
        let levels = ((1u32 << (bits - 1)) as i64 - 1).max(1) as f32;
        let step = s / levels;
        (v.clamp(-s, s) / step).round() * step
    }
}

impl WeightSource for SteUniformWeight {
    fn materialize(&mut self) -> Tensor {
        let s = self.latent.max_abs().max(1e-8);
        self.last_scale = s;
        let bits = self.bits;
        self.latent.map(|v| Self::quantize(v, s, bits))
    }

    fn backward(&mut self, grad_weight: &Tensor) {
        // Straight-through: pass dL/dW to the latent weight unchanged.
        self.grad.add_assign_t(grad_weight);
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        f(ParamMut::new(
            path.as_str(),
            ParamRole::Weight,
            &mut self.latent,
            &mut self.grad,
        ));
    }

    fn precision(&self) -> Option<f32> {
        Some(self.bits as f32)
    }

    fn numel(&self) -> usize {
        self.latent.numel()
    }

    fn quant_step(&self) -> Option<f32> {
        let levels = ((1u32 << (self.bits - 1)) as i64 - 1).max(1) as f32;
        Some(self.last_scale / levels)
    }

    fn bit_mask(&self) -> Option<Vec<bool>> {
        Some(vec![true; self.bits])
    }
}

/// Factory producing [`SteUniformWeight`] sources for the model builders.
pub fn ste_uniform_factory(bits: usize) -> impl FnMut(Tensor) -> Box<dyn WeightSource> {
    move |w: Tensor| Box::new(SteUniformWeight::from_float(&w, bits)) as _
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn materialized_weight_is_on_grid() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w = init::uniform(&[32], -1.0, 1.0, &mut rng);
        let mut q = SteUniformWeight::from_float(&w, 4);
        let m = q.materialize();
        let step = q.quant_step().unwrap();
        for &v in m.iter() {
            let k = v / step;
            assert!((k - k.round()).abs() < 1e-4, "{v} off grid {step}");
        }
    }

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = init::uniform(&[256], -1.0, 1.0, &mut rng);
        let errs: Vec<f32> = [2usize, 4, 8]
            .iter()
            .map(|&b| {
                let mut q = SteUniformWeight::from_float(&w, b);
                q.materialize().sub(&w).norm()
            })
            .collect();
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "{errs:?}");
    }

    #[test]
    fn ste_passes_gradient_through() {
        let w = Tensor::from_vec(vec![0.3, -0.7], &[2]);
        let mut q = SteUniformWeight::from_float(&w, 3);
        q.materialize();
        q.backward(&Tensor::from_vec(vec![1.0, -2.0], &[2]));
        let mut grads = Vec::new();
        q.visit_params(&mut |p| grads.extend_from_slice(p.grad.data()));
        assert_eq!(grads, vec![1.0, -2.0]);
    }

    #[test]
    fn one_bit_is_sign_times_scale() {
        let w = Tensor::from_vec(vec![0.9, -0.1, 0.0], &[3]);
        let mut q = SteUniformWeight::from_float(&w, 1);
        let m = q.materialize();
        assert_eq!(m.data()[0], 0.9);
        // Small values round toward zero on the coarse grid.
        assert!(m.data()[1].abs() < 0.9 + 1e-6);
    }

    #[test]
    fn reports_fixed_precision() {
        let q = SteUniformWeight::from_float(&Tensor::ones(&[4]), 5);
        assert_eq!(q.precision(), Some(5.0));
        assert_eq!(q.numel(), 4);
        assert_eq!(q.bit_mask(), Some(vec![true; 5]));
    }
}
