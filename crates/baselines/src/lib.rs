//! Baseline quantization-aware training methods the CSQ paper compares
//! against, reimplemented on the shared [`csq_nn::WeightSource`]
//! abstraction so every method trains the identical architecture from the
//! identical initialization:
//!
//! * [`ste_uniform`] — the conventional QAT of Polino et al. (\[27\] in the
//!   paper): a latent float weight is linearly quantized in the forward
//!   pass and updated with a straight-through gradient (the `STE-Uniform`
//!   ablation rows of Table IV).
//! * [`dorefa`] — DoReFa-Net weight quantization (tanh-normalized latent
//!   weights, uniform grid, STE).
//! * PACT — DoReFa weights plus the learnable-clip activation quantizer
//!   [`csq_nn::activation::Pact`]; see [`dorefa`] for the weight path.
//! * [`lq`] — an LQ-Nets-style learned quantizer: a per-layer basis is
//!   refit by quantization-error minimization every step, giving a
//!   non-uniform grid (STE through the assignment).
//! * [`bsq`] — BSQ (Yang et al. 2021): bit-level training with STE,
//!   bit-plane L1 sparsity regularization and periodic pruning of
//!   all-zero planes — the closest prior method and the main baseline.

#![deny(missing_docs)]

pub mod bsq;
pub mod dorefa;
pub mod lq;
pub mod ste_uniform;

pub use bsq::{bsq_factory, BsqWeight};
pub use dorefa::{dorefa_factory, DorefaWeight};
pub use lq::{lq_factory, LqWeight};
pub use ste_uniform::{ste_uniform_factory, SteUniformWeight};
