//! LQ-Nets-style learned quantization (Zhang et al. 2018), simplified.
//!
//! LQ-Nets represents each quantized weight as `W_i = Σ_j B_ij · v_j`
//! with `B_ij ∈ {−1, +1}` and a per-layer learnable basis `v ∈ R^k`
//! (`k` = bits). Training alternates:
//!
//! 1. **Encoding**: each latent weight is assigned the nearest of the
//!    `2^k` representable levels (exhaustive search; `k ≤ 4` here).
//! 2. **Quantization-error minimization (QEM)**: the basis is refit in
//!    closed form to minimize `Σ_i (w_i − Σ_j B_ij v_j)²`, a `k×k`
//!    least-squares solve.
//!
//! Gradients flow to the latent weights with STE, as in the original.
//! The non-uniform grid is what lets LQ-Nets beat uniform quantizers in
//! the paper's tables.

use csq_nn::{ParamMut, ParamPath, ParamRole, WeightSource};
use csq_tensor::Tensor;

/// LQ-Nets learned-basis weight parameterization.
#[derive(Debug)]
pub struct LqWeight {
    latent: Tensor,
    grad: Tensor,
    bits: usize,
    basis: Vec<f32>,
    /// Refit the basis at most every `qem_every` materializations.
    qem_every: usize,
    step_count: usize,
}

impl LqWeight {
    /// Wraps an initialized float weight. The basis starts as the powers
    /// `max|w| · 2^{j−k} ` scaled so the extreme level matches `max |w|`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=4` (the exhaustive encoder is
    /// exponential in `bits`, and LQ-Nets itself targets ≤ 4 bits).
    pub fn from_float(w: &Tensor, bits: usize) -> Self {
        assert!((1..=4).contains(&bits), "LQ-Nets supports 1..=4 bits");
        let s = w.max_abs().max(1e-8);
        // Geometric init: v_j ∝ 2^j, normalized so Σ v_j = max|w|.
        let total: f32 = (0..bits).map(|j| (1u32 << j) as f32).sum();
        let basis: Vec<f32> = (0..bits)
            .map(|j| s * (1u32 << j) as f32 / total)
            .collect();
        LqWeight {
            grad: Tensor::zeros(w.dims()),
            latent: w.clone(),
            bits,
            basis,
            qem_every: 1,
            step_count: 0,
        }
    }

    /// The current learned basis (inspection/testing).
    pub fn basis(&self) -> &[f32] {
        &self.basis
    }

    /// All representable levels for the current basis (2^bits of them).
    pub fn levels(&self) -> Vec<f32> {
        let k = self.bits;
        (0..(1usize << k))
            .map(|code| {
                (0..k)
                    .map(|j| {
                        if (code >> j) & 1 == 1 {
                            self.basis[j]
                        } else {
                            -self.basis[j]
                        }
                    })
                    .sum()
            })
            .collect()
    }

    /// Encodes every latent weight to its nearest level, returning the
    /// sign matrix column sums needed for QEM plus the quantized values.
    fn encode(&self) -> (Vec<u32>, Vec<f32>) {
        let levels = self.levels();
        let mut codes = Vec::with_capacity(self.latent.numel());
        let mut vals = Vec::with_capacity(self.latent.numel());
        for &w in self.latent.iter() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, &l) in levels.iter().enumerate() {
                let d = (w - l).abs();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            codes.push(best as u32);
            vals.push(levels[best]);
        }
        (codes, vals)
    }

    /// One QEM step: closed-form least squares for the basis given the
    /// current encoding. Solves the k×k normal equations `(BᵀB) v = Bᵀw`
    /// by Gaussian elimination.
    fn qem(&mut self, codes: &[u32]) {
        let k = self.bits;
        let mut ata = vec![0.0f64; k * k];
        let mut atb = vec![0.0f64; k];
        for (i, &w) in self.latent.iter().enumerate() {
            let code = codes[i];
            for r in 0..k {
                let br = if (code >> r) & 1 == 1 { 1.0 } else { -1.0 };
                atb[r] += br * w as f64;
                for c in 0..k {
                    let bc = if (code >> c) & 1 == 1 { 1.0 } else { -1.0 };
                    ata[r * k + c] += br * bc;
                }
            }
        }
        // Ridge term for numerical safety when a bit column is constant.
        for r in 0..k {
            ata[r * k + r] += 1e-6;
        }
        // Gaussian elimination with partial pivoting.
        for col in 0..k {
            let mut piv = col;
            for r in col + 1..k {
                if ata[r * k + col].abs() > ata[piv * k + col].abs() {
                    piv = r;
                }
            }
            if piv != col {
                for c in 0..k {
                    ata.swap(col * k + c, piv * k + c);
                }
                atb.swap(col, piv);
            }
            let d = ata[col * k + col];
            if d.abs() < 1e-12 {
                continue;
            }
            for r in 0..k {
                if r == col {
                    continue;
                }
                let f = ata[r * k + col] / d;
                for c in 0..k {
                    ata[r * k + c] -= f * ata[col * k + c];
                }
                atb[r] -= f * atb[col];
            }
        }
        for j in 0..k {
            let d = ata[j * k + j];
            if d.abs() > 1e-12 {
                let v = (atb[j] / d) as f32;
                // Keep basis elements non-negative (sign lives in B).
                self.basis[j] = v.abs().max(1e-8);
            }
        }
    }
}

impl WeightSource for LqWeight {
    fn materialize(&mut self) -> Tensor {
        let (codes, _) = self.encode();
        if self.step_count % self.qem_every == 0 {
            self.qem(&codes);
        }
        self.step_count += 1;
        // Re-encode on the updated basis for the actual forward weights.
        let (_, vals) = self.encode();
        Tensor::from_vec(vals, self.latent.dims())
    }

    fn backward(&mut self, grad_weight: &Tensor) {
        // Straight-through to the latent weights.
        self.grad.add_assign_t(grad_weight);
    }

    fn visit_params_named(&mut self, path: &mut ParamPath, f: &mut dyn FnMut(ParamMut<'_>)) {
        f(ParamMut::new(
            path.as_str(),
            ParamRole::Weight,
            &mut self.latent,
            &mut self.grad,
        ));
    }

    fn precision(&self) -> Option<f32> {
        Some(self.bits as f32)
    }

    fn numel(&self) -> usize {
        self.latent.numel()
    }

    fn bit_mask(&self) -> Option<Vec<bool>> {
        Some(vec![true; self.bits])
    }
}

/// Factory producing [`LqWeight`] sources for the model builders.
pub fn lq_factory(bits: usize) -> impl FnMut(Tensor) -> Box<dyn WeightSource> {
    move |w: Tensor| Box::new(LqWeight::from_float(&w, bits)) as _
}

#[cfg(test)]
mod tests {
    use super::*;
    use csq_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn levels_count_is_two_to_bits() {
        let w = Tensor::ones(&[4]);
        let q = LqWeight::from_float(&w, 3);
        let mut lv = q.levels();
        lv.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(lv.len(), 8);
        // Levels are symmetric about zero for a sign basis.
        for i in 0..4 {
            assert!((lv[i] + lv[7 - i]).abs() < 1e-5, "{lv:?}");
        }
    }

    #[test]
    fn qem_reduces_quantization_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w = init::normal(&[512], 0.0, 0.5, &mut rng);
        let mut q = LqWeight::from_float(&w, 2);
        let before = {
            let (_, vals) = q.encode();
            Tensor::from_vec(vals, w.dims()).sub(&w).norm()
        };
        // A few QEM rounds.
        for _ in 0..5 {
            let (codes, _) = q.encode();
            q.qem(&codes);
        }
        let after = {
            let (_, vals) = q.encode();
            Tensor::from_vec(vals, w.dims()).sub(&w).norm()
        };
        assert!(after <= before + 1e-5, "QEM must not increase error: {before} -> {after}");
    }

    #[test]
    fn nonuniform_grid_beats_uniform_on_gaussian() {
        // LQ's fitted grid should out-quantize the uniform grid on
        // normally distributed weights (the reason the paper's LQ rows
        // are strong).
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = init::normal(&[2048], 0.0, 0.3, &mut rng);
        let mut lq = LqWeight::from_float(&w, 2);
        let lq_err = lq.materialize().sub(&w).norm();
        let mut ste = crate::ste_uniform::SteUniformWeight::from_float(&w, 2);
        let ste_err = ste.materialize().sub(&w).norm();
        assert!(lq_err < ste_err, "lq {lq_err} vs uniform {ste_err}");
    }

    #[test]
    fn encode_picks_nearest_level() {
        let w = Tensor::from_vec(vec![10.0, -10.0], &[2]);
        let mut q = LqWeight::from_float(&w, 2);
        let m = q.materialize();
        let levels = q.levels();
        let top = levels.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        assert!((m.data()[0] - top).abs() < 1e-5);
        assert!((m.data()[1] + top).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "1..=4 bits")]
    fn too_many_bits_rejected() {
        LqWeight::from_float(&Tensor::ones(&[2]), 5);
    }
}
