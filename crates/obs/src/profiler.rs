//! Kernel profiler: per-op-kind / per-shape wall-time and
//! bytes-touched aggregation.
//!
//! Off by default — the per-op check is one relaxed atomic load, so
//! `csq_serve::exec` pays nothing on the quiet path. When enabled
//! (benches flip it on around their measured sections) every kernel
//! invocation folds `(kind, shape) → {calls, wall_ns, bytes}` into a
//! small map; [`KernelProfiler::snapshot`] returns the rows sorted by
//! total wall time so BENCH reports lead with the most expensive op.
//! This is the baseline data the bit-plane-kernel work must beat.

use crate::registry::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

#[derive(Debug, Default, Clone, Copy)]
struct OpStat {
    calls: u64,
    wall_ns: u64,
    bytes: u64,
}

/// One aggregated profile row (serialized into BENCH_serve.json).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpProfile {
    /// Op kind, e.g. `conv2d.int` or `linear.float`.
    pub kind: String,
    /// Shape key, e.g. `8x3x32x32->8x16x32x32`.
    pub shape: String,
    /// Number of kernel invocations.
    pub calls: u64,
    /// Total wall time across calls, nanoseconds.
    pub wall_ns: u64,
    /// Total bytes touched (inputs + outputs + weights) across calls.
    pub bytes: u64,
}

/// Aggregates kernel timings. Use [`global()`] from instrumented code.
#[derive(Debug, Default)]
pub struct KernelProfiler {
    enabled: AtomicBool,
    stats: Mutex<BTreeMap<(String, String), OpStat>>,
}

impl KernelProfiler {
    /// A disabled, empty profiler.
    pub fn new() -> KernelProfiler {
        KernelProfiler::default()
    }

    /// Whether recording is on (one relaxed load — the per-op gate).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Folds one kernel invocation into the aggregate. Callers should
    /// gate on [`enabled`](Self::enabled) before measuring; `record`
    /// re-checks and drops the sample when disabled.
    pub fn record(&self, kind: &str, shape: &str, wall_ns: u64, bytes: u64) {
        if !self.enabled() {
            return;
        }
        let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let stat = stats
            .entry((kind.to_string(), shape.to_string()))
            .or_default();
        stat.calls += 1;
        stat.wall_ns += wall_ns;
        stat.bytes += bytes;
    }

    /// All rows recorded so far, sorted by total wall time descending.
    pub fn snapshot(&self) -> Vec<OpProfile> {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<OpProfile> = stats
            .iter()
            .map(|((kind, shape), s)| OpProfile {
                kind: kind.clone(),
                shape: shape.clone(),
                calls: s.calls,
                wall_ns: s.wall_ns,
                bytes: s.bytes,
            })
            .collect();
        rows.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.kind.cmp(&b.kind)));
        rows
    }

    /// Drops all recorded rows (recording state is unchanged).
    pub fn reset(&self) {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Publishes every row into `registry` as counters
    /// (`kernel.<kind>.<shape>.{calls,wall_ns,bytes}`), so the
    /// Prometheus exposition and merged fleet snapshots carry the
    /// kernel breakdown too.
    pub fn publish_to(&self, registry: &MetricsRegistry) {
        for row in self.snapshot() {
            let base = format!("kernel.{}.{}", row.kind, row.shape);
            registry.counter(&format!("{base}.calls")).add(row.calls);
            registry.counter(&format!("{base}.wall_ns")).add(row.wall_ns);
            registry.counter(&format!("{base}.bytes")).add(row.bytes);
        }
    }
}

/// The process-wide profiler used by the serve executor.
pub fn global() -> &'static KernelProfiler {
    static GLOBAL: OnceLock<KernelProfiler> = OnceLock::new();
    GLOBAL.get_or_init(KernelProfiler::new)
}

/// Formats a dims slice as a compact shape key (`8x16x32x32`; scalars
/// render as `scalar`).
pub fn shape_key(dims: &[usize]) -> String {
    if dims.is_empty() {
        return String::from("scalar");
    }
    let mut out = String::new();
    for (i, d) in dims.iter().enumerate() {
        if i > 0 {
            out.push('x');
        }
        out.push_str(&d.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_drops_samples() {
        let p = KernelProfiler::new();
        p.record("conv2d.int", "1x3x8x8", 100, 64);
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn aggregates_and_sorts_by_wall_time() {
        let p = KernelProfiler::new();
        p.set_enabled(true);
        p.record("linear.float", "1x10", 50, 40);
        p.record("conv2d.int", "1x3x8x8", 100, 64);
        p.record("conv2d.int", "1x3x8x8", 200, 64);
        let rows = p.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, "conv2d.int");
        assert_eq!(rows[0].calls, 2);
        assert_eq!(rows[0].wall_ns, 300);
        assert_eq!(rows[0].bytes, 128);
        assert_eq!(rows[1].kind, "linear.float");
        p.reset();
        assert!(p.snapshot().is_empty());
        assert!(p.enabled());
    }

    #[test]
    fn publishes_rows_as_counters() {
        let p = KernelProfiler::new();
        p.set_enabled(true);
        p.record("relu", "1x10", 7, 80);
        let reg = MetricsRegistry::new();
        p.publish_to(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["kernel.relu.1x10.calls"], 1);
        assert_eq!(snap.counters["kernel.relu.1x10.wall_ns"], 7);
        assert_eq!(snap.counters["kernel.relu.1x10.bytes"], 80);
    }

    #[test]
    fn shape_keys() {
        assert_eq!(shape_key(&[8, 3, 32, 32]), "8x3x32x32");
        assert_eq!(shape_key(&[]), "scalar");
    }
}
