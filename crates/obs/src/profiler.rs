//! Kernel profiler: per-op-kind / per-shape wall-time and
//! bytes-touched aggregation.
//!
//! Off by default — the per-op check is one relaxed atomic load, so
//! `csq_serve::exec` pays nothing on the quiet path. When enabled
//! (benches flip it on around their measured sections) every kernel
//! invocation folds `(kind, class, routine, blueprint, shape) →
//! {calls, wall_ns, bytes}` into a small map;
//! [`KernelProfiler::snapshot`] returns the rows sorted by total wall
//! time so BENCH reports lead with the most expensive op. Each sample
//! is tagged with the kernel *class* the routine selector picked
//! (`integer` / `bitplane` / `float`), the routine name (`dense`,
//! `panel_gemm`, `packed_panel`, …) and the tiling *blueprint* the
//! routine ran with (`panel_f32`, `lanes_u64`, …), so
//! [`KernelProfiler::class_totals`] can attribute wall time per class
//! and BENCH reports can break latency down per selected
//! routine/blueprint — the comparison data lives in
//! `bench_results/BENCH_serve.json` and `BENCH_parallel.json`.

use crate::registry::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

#[derive(Debug, Default, Clone, Copy)]
struct OpStat {
    calls: u64,
    wall_ns: u64,
    bytes: u64,
}

/// One aggregated profile row (serialized into BENCH reports).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpProfile {
    /// Op kind, e.g. `conv2d` or `linear` (serve-level rows) or
    /// `gemm_nn` / `conv_im2col` (tensor-level rows).
    pub kind: String,
    /// Kernel class the selector picked: `integer`, `bitplane`, or
    /// `float` (non-weighted ops report `float` — they run float
    /// arithmetic).
    pub class: String,
    /// Routine within the class, e.g. `dense`, `panel_gemm`,
    /// `packed_panel`, `im2col_fused`.
    pub routine: String,
    /// Tiling blueprint the routine ran with, e.g. `panel_f32`,
    /// `blocked_kc64`, `lanes_u64`.
    pub blueprint: String,
    /// Shape key, e.g. `8x3x32x32`.
    pub shape: String,
    /// Number of kernel invocations.
    pub calls: u64,
    /// Total wall time across calls, nanoseconds.
    pub wall_ns: u64,
    /// Total bytes touched (inputs + outputs + weights) across calls.
    pub bytes: u64,
}

/// Wall time, calls, and bytes aggregated over every op of one kernel
/// class — the per-class attribution BENCH reports and the Prometheus
/// exposition lead with.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassTotal {
    /// Kernel class: `integer`, `bitplane`, or `float`.
    pub class: String,
    /// Kernel invocations in this class.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub wall_ns: u64,
    /// Total bytes touched.
    pub bytes: u64,
}

/// Aggregates kernel timings. Use [`global()`] from instrumented code.
#[derive(Debug, Default)]
pub struct KernelProfiler {
    enabled: AtomicBool,
    #[allow(clippy::type_complexity)]
    stats: Mutex<BTreeMap<(String, String, String, String, String), OpStat>>,
}

impl KernelProfiler {
    /// A disabled, empty profiler.
    pub fn new() -> KernelProfiler {
        KernelProfiler::default()
    }

    /// Whether recording is on (one relaxed load — the per-op gate).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Folds one kernel invocation into the aggregate, tagged with the
    /// kernel class, routine, and tiling blueprint the selector picked.
    /// Callers should gate on [`enabled`](Self::enabled) before
    /// measuring; `record` re-checks and drops the sample when
    /// disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        kind: &str,
        class: &str,
        routine: &str,
        blueprint: &str,
        shape: &str,
        wall_ns: u64,
        bytes: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let stat = stats
            .entry((
                kind.to_string(),
                class.to_string(),
                routine.to_string(),
                blueprint.to_string(),
                shape.to_string(),
            ))
            .or_default();
        stat.calls += 1;
        stat.wall_ns += wall_ns;
        stat.bytes += bytes;
    }

    /// All rows recorded so far, sorted by total wall time descending.
    pub fn snapshot(&self) -> Vec<OpProfile> {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<OpProfile> = stats
            .iter()
            .map(|((kind, class, routine, blueprint, shape), s)| OpProfile {
                kind: kind.clone(),
                class: class.clone(),
                routine: routine.clone(),
                blueprint: blueprint.clone(),
                shape: shape.clone(),
                calls: s.calls,
                wall_ns: s.wall_ns,
                bytes: s.bytes,
            })
            .collect();
        rows.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.kind.cmp(&b.kind)));
        rows
    }

    /// Wall time, calls, and bytes summed per kernel class, sorted by
    /// wall time descending — how much of the forward each class
    /// (integer / bitplane / float) actually costs.
    pub fn class_totals(&self) -> Vec<ClassTotal> {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let mut by_class: BTreeMap<&str, OpStat> = BTreeMap::new();
        for ((_, class, _, _, _), s) in stats.iter() {
            let t = by_class.entry(class.as_str()).or_default();
            t.calls += s.calls;
            t.wall_ns += s.wall_ns;
            t.bytes += s.bytes;
        }
        let mut rows: Vec<ClassTotal> = by_class
            .into_iter()
            .map(|(class, s)| ClassTotal {
                class: class.to_string(),
                calls: s.calls,
                wall_ns: s.wall_ns,
                bytes: s.bytes,
            })
            .collect();
        rows.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.class.cmp(&b.class)));
        rows
    }

    /// Drops all recorded rows (recording state is unchanged).
    pub fn reset(&self) {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Publishes every row into `registry` as counters
    /// (`kernel.<kind>.<class>.<routine>.<blueprint>.<shape>.{calls,wall_ns,bytes}`)
    /// plus per-class rollups
    /// (`kernel_class.<class>.{calls,wall_ns,bytes}`), so the
    /// Prometheus exposition and merged fleet snapshots carry the
    /// kernel breakdown and the class attribution.
    pub fn publish_to(&self, registry: &MetricsRegistry) {
        for row in self.snapshot() {
            let base = format!(
                "kernel.{}.{}.{}.{}.{}",
                row.kind, row.class, row.routine, row.blueprint, row.shape
            );
            registry.counter(&format!("{base}.calls")).add(row.calls);
            registry
                .counter(&format!("{base}.wall_ns"))
                .add(row.wall_ns);
            registry.counter(&format!("{base}.bytes")).add(row.bytes);
        }
        for total in self.class_totals() {
            let base = format!("kernel_class.{}", total.class);
            registry.counter(&format!("{base}.calls")).add(total.calls);
            registry
                .counter(&format!("{base}.wall_ns"))
                .add(total.wall_ns);
            registry.counter(&format!("{base}.bytes")).add(total.bytes);
        }
    }
}

/// The process-wide profiler used by the serve executor and the
/// csq-tensor kernel entry points.
pub fn global() -> &'static KernelProfiler {
    static GLOBAL: OnceLock<KernelProfiler> = OnceLock::new();
    GLOBAL.get_or_init(KernelProfiler::new)
}

/// Formats a dims slice as a compact shape key (`8x16x32x32`; scalars
/// render as `scalar`).
pub fn shape_key(dims: &[usize]) -> String {
    if dims.is_empty() {
        return String::from("scalar");
    }
    let mut out = String::new();
    for (i, d) in dims.iter().enumerate() {
        if i > 0 {
            out.push('x');
        }
        out.push_str(&d.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_drops_samples() {
        let p = KernelProfiler::new();
        p.record(
            "conv2d",
            "integer",
            "dense",
            "dense_i64",
            "1x3x8x8",
            100,
            64,
        );
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn aggregates_and_sorts_by_wall_time() {
        let p = KernelProfiler::new();
        p.set_enabled(true);
        p.record("linear", "float", "dense", "scalar_f32", "1x10", 50, 40);
        p.record(
            "conv2d",
            "integer",
            "dense",
            "dense_i64",
            "1x3x8x8",
            100,
            64,
        );
        p.record(
            "conv2d",
            "integer",
            "dense",
            "dense_i64",
            "1x3x8x8",
            200,
            64,
        );
        let rows = p.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, "conv2d");
        assert_eq!(rows[0].class, "integer");
        assert_eq!(rows[0].routine, "dense");
        assert_eq!(rows[0].blueprint, "dense_i64");
        assert_eq!(rows[0].calls, 2);
        assert_eq!(rows[0].wall_ns, 300);
        assert_eq!(rows[0].bytes, 128);
        assert_eq!(rows[1].kind, "linear");
        p.reset();
        assert!(p.snapshot().is_empty());
        assert!(p.enabled());
    }

    #[test]
    fn blueprint_is_part_of_the_aggregation_key() {
        let p = KernelProfiler::new();
        p.set_enabled(true);
        p.record(
            "gemm_nn",
            "float",
            "packed_panel",
            "panel_f32",
            "64x64x64",
            10,
            8,
        );
        p.record(
            "gemm_nn",
            "float",
            "blocked",
            "blocked_kc64",
            "64x64x64",
            30,
            8,
        );
        let rows = p.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].blueprint, "blocked_kc64");
        assert_eq!(rows[1].blueprint, "panel_f32");
    }

    #[test]
    fn class_totals_attribute_time_per_class() {
        let p = KernelProfiler::new();
        p.set_enabled(true);
        p.record(
            "conv2d",
            "bitplane",
            "panel_gemm",
            "lanes_u64",
            "1x3x8x8",
            100,
            10,
        );
        p.record(
            "conv2d",
            "bitplane",
            "vecmat",
            "lanes_u64",
            "1x3x8x8",
            50,
            10,
        );
        p.record("linear", "integer", "dense", "dense_i64", "1x10", 25, 10);
        p.record("relu", "float", "dense", "scalar_f32", "1x10", 5, 10);
        let totals = p.class_totals();
        assert_eq!(totals.len(), 3);
        assert_eq!(totals[0].class, "bitplane");
        assert_eq!(totals[0].calls, 2);
        assert_eq!(totals[0].wall_ns, 150);
        assert_eq!(totals[1].class, "integer");
        assert_eq!(totals[2].class, "float");
    }

    #[test]
    fn publishes_rows_as_counters() {
        let p = KernelProfiler::new();
        p.set_enabled(true);
        p.record("relu", "float", "dense", "scalar_f32", "1x10", 7, 80);
        let reg = MetricsRegistry::new();
        p.publish_to(&reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters["kernel.relu.float.dense.scalar_f32.1x10.calls"],
            1
        );
        assert_eq!(
            snap.counters["kernel.relu.float.dense.scalar_f32.1x10.wall_ns"],
            7
        );
        assert_eq!(
            snap.counters["kernel.relu.float.dense.scalar_f32.1x10.bytes"],
            80
        );
        assert_eq!(snap.counters["kernel_class.float.calls"], 1);
        assert_eq!(snap.counters["kernel_class.float.wall_ns"], 7);
    }

    #[test]
    fn shape_keys() {
        assert_eq!(shape_key(&[8, 3, 32, 32]), "8x3x32x32");
        assert_eq!(shape_key(&[]), "scalar");
    }
}
