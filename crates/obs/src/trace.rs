//! Zero-dependency structured span tracing.
//!
//! The [`span!`](crate::span) / [`event!`](crate::event) macros are a
//! facade over a process-wide dispatcher. When tracing is **disabled**
//! (the default) the macros cost one relaxed atomic load and allocate
//! nothing — field expressions are not even evaluated — so the serve
//! and training hot paths keep their quiet-path throughput and
//! bit-exactness. When **enabled** (via `CSQ_TRACE` or
//! [`set_enabled`]) every event carries a monotonic microsecond
//! timestamp, a small per-process thread ordinal, and the current
//! per-thread span depth; events always feed the in-memory
//! [flight recorder](crate::flight) and optionally an installed
//! [`TraceSink`] (e.g. a JSONL file).
//!
//! `CSQ_TRACE` values: unset or `0` → disabled; `1` or `ring` →
//! enabled, ring buffer only; any other value is treated as a file
//! path and events are appended there as JSON lines.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind")]
pub enum EventKind {
    /// A span was entered.
    Enter,
    /// A span was exited after `dur_us` microseconds.
    Exit {
        /// Wall time spent inside the span, in microseconds.
        dur_us: u64,
    },
    /// A point-in-time event with no duration.
    Instant,
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Microseconds since the process-wide trace clock started.
    pub ts_us: u64,
    /// Small per-process ordinal of the emitting thread.
    pub thread: u64,
    /// Span nesting depth on the emitting thread at emission time.
    pub depth: usize,
    /// Enter / Exit / Instant.
    #[serde(flatten)]
    pub kind: EventKind,
    /// Subsystem that emitted the event (e.g. `engine`, `trainer`).
    pub target: String,
    /// Event or span name (e.g. `batch`, `epoch`).
    pub name: String,
    /// Structured key/value payload.
    pub fields: Vec<(String, String)>,
}

/// Receives every trace event when tracing is enabled. Implementations
/// must be cheap and must never panic across the boundary.
pub trait TraceSink: Send + Sync {
    /// Called once per event, possibly from many threads.
    fn record(&self, event: &TraceEvent);
}

/// A [`TraceSink`] that appends one JSON object per line to a file.
#[derive(Debug)]
pub struct JsonlSink {
    file: Mutex<std::fs::File>,
}

impl JsonlSink {
    /// Opens (creating / appending) `path` for event output.
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink { file: Mutex::new(file) })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            let _ = writeln!(file, "{line}");
        }
    }
}

// 0 = uninitialized (consult CSQ_TRACE), 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

static SINK: RwLock<Option<Box<dyn TraceSink>>> = RwLock::new(None);

static TRACE_IDS: AtomicU64 = AtomicU64::new(0);

static THREAD_ORDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORD: Cell<u64> = const { Cell::new(u64::MAX) };
    static SPAN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

fn clock() -> &'static Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now)
}

/// Microseconds since the process trace clock started (monotonic).
pub fn now_us() -> u64 {
    clock().elapsed().as_micros() as u64
}

/// Whether tracing is currently enabled. The fast path — after the
/// one-time `CSQ_TRACE` lookup — is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var("CSQ_TRACE") {
        Ok(v) if v == "0" || v.is_empty() => false,
        Ok(v) if v == "1" || v == "ring" => true,
        Ok(path) => {
            if let Ok(sink) = JsonlSink::create(&path) {
                install_sink(Box::new(sink));
            }
            true
        }
        Err(_) => false,
    };
    // Another thread may have raced us (or called set_enabled); only
    // the first writer wins so an explicit override is never undone.
    let new = if on { 2 } else { 1 };
    match STATE.compare_exchange(0, new, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => on,
        Err(current) => current == 2,
    }
}

/// Programmatically enables or disables tracing, overriding
/// `CSQ_TRACE`. Tests use this to avoid process-global env mutation.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Installs (or replaces) the extra sink that receives every event in
/// addition to the flight-recorder ring.
pub fn install_sink(sink: Box<dyn TraceSink>) {
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = Some(sink);
}

/// Removes any installed sink (the ring still records while enabled).
pub fn clear_sink() {
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Allocates a fresh process-unique trace id (never 0).
pub fn next_trace_id() -> u64 {
    TRACE_IDS.fetch_add(1, Ordering::Relaxed) + 1
}

/// Small stable ordinal for the calling thread.
pub fn thread_ordinal() -> u64 {
    THREAD_ORD.with(|c| {
        let cur = c.get();
        if cur != u64::MAX {
            return cur;
        }
        let ord = THREAD_ORDS.fetch_add(1, Ordering::Relaxed);
        c.set(ord);
        ord
    })
}

fn dispatch(event: TraceEvent) {
    if let Some(sink) = SINK.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        sink.record(&event);
    }
    crate::flight::global().push(event);
}

/// Emits an [`EventKind::Instant`] event (no-op while disabled). The
/// macros are the usual entry point; this is the non-macro escape
/// hatch.
pub fn emit_instant(target: &'static str, name: &'static str, fields: Vec<(String, String)>) {
    if !enabled() {
        return;
    }
    dispatch(TraceEvent {
        ts_us: now_us(),
        thread: thread_ordinal(),
        depth: SPAN_DEPTH.with(Cell::get),
        kind: EventKind::Instant,
        target: target.to_string(),
        name: name.to_string(),
        fields,
    });
}

/// RAII guard for an entered span; emits the Exit event (with
/// duration) when dropped. Obtained from the
/// [`span!`](crate::span) macro.
#[derive(Debug)]
pub struct SpanGuard {
    target: &'static str,
    name: &'static str,
    start_us: u64,
    /// False when tracing was disabled at entry: the whole guard is a
    /// no-op and nothing was allocated.
    active: bool,
}

impl SpanGuard {
    /// Enters a span (records Enter, pushes the per-thread depth).
    /// Returns an inert guard when tracing is disabled.
    pub fn enter(
        target: &'static str,
        name: &'static str,
        fields: Vec<(String, String)>,
    ) -> SpanGuard {
        if !enabled() {
            return SpanGuard { target, name, start_us: 0, active: false };
        }
        let depth = SPAN_DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        let start_us = now_us();
        dispatch(TraceEvent {
            ts_us: start_us,
            thread: thread_ordinal(),
            depth,
            kind: EventKind::Enter,
            target: target.to_string(),
            name: name.to_string(),
            fields,
        });
        SpanGuard { target, name, start_us, active: true }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let depth = SPAN_DEPTH.with(|d| {
            let cur = d.get().saturating_sub(1);
            d.set(cur);
            cur
        });
        let now = now_us();
        dispatch(TraceEvent {
            ts_us: now,
            thread: thread_ordinal(),
            depth,
            kind: EventKind::Exit { dur_us: now.saturating_sub(self.start_us) },
            target: self.target.to_string(),
            name: self.name.to_string(),
            fields: Vec::new(),
        });
    }
}

/// Enters a span scoped to the returned guard.
///
/// ```
/// let _g = csq_obs::span!("engine", "batch", "worker" => 3);
/// // ... work ...
/// // Exit (with duration) is recorded when `_g` drops.
/// ```
///
/// Field expressions are only evaluated when tracing is enabled.
#[macro_export]
macro_rules! span {
    ($target:expr, $name:expr) => {
        $crate::trace::SpanGuard::enter($target, $name, ::std::vec::Vec::new())
    };
    ($target:expr, $name:expr, $($k:literal => $v:expr),+ $(,)?) => {{
        let fields = if $crate::trace::enabled() {
            ::std::vec![$((::std::string::String::from($k), ::std::format!("{}", $v))),+]
        } else {
            ::std::vec::Vec::new()
        };
        $crate::trace::SpanGuard::enter($target, $name, fields)
    }};
}

/// Emits a point-in-time event.
///
/// ```
/// csq_obs::event!("engine", "submit", "trace_id" => 42);
/// ```
///
/// Field expressions are only evaluated when tracing is enabled; while
/// disabled the whole call is one relaxed atomic load.
#[macro_export]
macro_rules! event {
    ($target:expr, $name:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::emit_instant($target, $name, ::std::vec::Vec::new());
        }
    };
    ($target:expr, $name:expr, $($k:literal => $v:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::emit_instant(
                $target,
                $name,
                ::std::vec![$((::std::string::String::from($k), ::std::format!("{}", $v))),+],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; every test here runs with the
    // programmatic override and restores "disabled" when done. They
    // share one #[test] body to avoid interleaving with each other.
    #[test]
    fn spans_events_and_ids() {
        // Trace ids are unique and never zero.
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);

        // Disabled: guards are inert, nothing reaches the ring.
        set_enabled(false);
        crate::flight::global().clear();
        {
            let _g = crate::span!("test", "quiet", "k" => 1);
            crate::event!("test", "quiet_event");
        }
        assert!(crate::flight::global().recent().is_empty());

        // Enabled: enter/exit pair with nested depth, instant events.
        set_enabled(true);
        {
            let _outer = crate::span!("test", "outer");
            let _inner = crate::span!("test", "inner", "step" => 7);
            crate::event!("test", "tick", "v" => "x");
        }
        set_enabled(false);
        let events = crate::flight::global().recent();
        crate::flight::global().clear();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "tick", "inner", "outer"]);
        assert_eq!(events[0].kind, EventKind::Enter);
        assert_eq!(events[1].depth, 1);
        assert_eq!(events[2].kind, EventKind::Instant);
        assert_eq!(
            events[2].fields,
            vec![(String::from("v"), String::from("x"))]
        );
        assert!(matches!(events[4].kind, EventKind::Exit { .. }));
        // Timestamps are monotonic within the thread.
        for pair in events.windows(2) {
            assert!(pair[0].ts_us <= pair[1].ts_us);
        }
    }

    #[test]
    fn event_json_roundtrip() {
        let ev = TraceEvent {
            ts_us: 12,
            thread: 0,
            depth: 1,
            kind: EventKind::Exit { dur_us: 5 },
            target: String::from("t"),
            name: String::from("n"),
            fields: vec![(String::from("k"), String::from("v"))],
        };
        let line = serde_json::to_string(&ev).unwrap_or_default();
        assert!(line.contains("\"kind\":\"Exit\""));
        let back: Result<TraceEvent, _> = serde_json::from_str(&line);
        assert_eq!(back.ok(), Some(ev));
    }
}
