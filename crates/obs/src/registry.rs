//! The metrics registry: named counters, gauges, histograms, and time
//! series behind cheap cloneable handles, with mergeable snapshots and
//! JSON / Prometheus-text exposition.
//!
//! Registration (name → handle) takes a short write lock once; after
//! that every update is a relaxed atomic (counters, gauges, histogram
//! buckets) or a short mutex push (series). Snapshots read the whole
//! registry under a read lock without stopping writers, so a scrape
//! can never deadlock the hot path — and because every value type
//! merges by addition, snapshots from many workers or processes fold
//! into one fleet view.

use crate::hist::{GeoHistogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Default number of finite buckets for registry histograms (covers
/// ~16.7 s when recording microseconds).
pub const DEFAULT_HIST_BUCKETS: usize = 24;

fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

fn mutex_lock<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing counter handle (cloning shares the cell).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge handle (cloning shares the cell).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle (cloning shares the buckets).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<GeoHistogram>);

impl Histogram {
    /// Records one value.
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// Shared storage behind one [`Series`] handle.
type SeriesCell = Arc<Mutex<Vec<(u64, f64)>>>;

/// An append-only `(step, value)` time series handle — the registry's
/// home for Fig. 2–4-style curves (per-epoch loss, average bit-width,
/// gate sparsity, per-layer bits).
#[derive(Debug, Clone)]
pub struct Series(SeriesCell);

impl Series {
    /// Appends one `(step, value)` point.
    pub fn push(&self, step: u64, value: f64) {
        mutex_lock(&self.0).push((step, value));
    }

    /// Copy of all points recorded so far.
    pub fn points(&self) -> Vec<(u64, f64)> {
        mutex_lock(&self.0).clone()
    }

    /// Number of points recorded so far.
    pub fn len(&self) -> usize {
        mutex_lock(&self.0).len()
    }

    /// True when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    hists: BTreeMap<String, Arc<GeoHistogram>>,
    series: BTreeMap<String, SeriesCell>,
}

/// A named collection of metrics. Most code uses [`global()`], but
/// registries are plain values so tests and benches can use private
/// ones.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, creating it at 0 on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = read_lock(&self.inner).counters.get(name) {
            return Counter(Arc::clone(c));
        }
        let mut inner = write_lock(&self.inner);
        let cell = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Returns the gauge named `name`, creating it at 0 on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = read_lock(&self.inner).gauges.get(name) {
            return Gauge(Arc::clone(g));
        }
        let mut inner = write_lock(&self.inner);
        let cell = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Arc::clone(cell))
    }

    /// Returns the histogram named `name` with
    /// [`DEFAULT_HIST_BUCKETS`] finite buckets, creating it on first
    /// use (an existing histogram keeps its original shape).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, DEFAULT_HIST_BUCKETS)
    }

    /// Returns the histogram named `name`, creating it with
    /// `n_buckets` finite buckets on first use.
    pub fn histogram_with(&self, name: &str, n_buckets: usize) -> Histogram {
        if let Some(h) = read_lock(&self.inner).hists.get(name) {
            return Histogram(Arc::clone(h));
        }
        let mut inner = write_lock(&self.inner);
        let cell = inner
            .hists
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(GeoHistogram::new(n_buckets)));
        Histogram(Arc::clone(cell))
    }

    /// Returns the time series named `name`, creating it empty on
    /// first use.
    pub fn series(&self, name: &str) -> Series {
        if let Some(s) = read_lock(&self.inner).series.get(name) {
            return Series(Arc::clone(s));
        }
        let mut inner = write_lock(&self.inner);
        let cell = inner
            .series
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Vec::new())));
        Series(Arc::clone(cell))
    }

    /// A consistent-enough point-in-time copy of every metric. Values
    /// are read with relaxed atomics while writers keep running, so a
    /// snapshot is never torn within one metric but may straddle
    /// concurrent updates across metrics — fine for scraping.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = read_lock(&self.inner);
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            series: inner
                .series
                .iter()
                .map(|(k, v)| (k.clone(), mutex_lock(v).clone()))
                .collect(),
        }
    }
}

/// The process-wide registry used by the instrumented hot paths.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A serializable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram buckets by name.
    pub hists: BTreeMap<String, HistogramSnapshot>,
    /// Time series points by name.
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise, series concatenate (sorted by step).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.hists {
            match self.hists.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.hists.insert(k.clone(), v.clone());
                }
            }
        }
        for (k, v) in &other.series {
            let s = self.series.entry(k.clone()).or_default();
            s.extend_from_slice(v);
            s.sort_by_key(|&(step, _)| step);
        }
    }

    /// A copy of the snapshot with every metric renamed to
    /// `prefix.<name>` — the fleet-rollup primitive: per-replica
    /// snapshots get re-homed under `fleet.model.<id>` (or any other
    /// scope) and then [`merge`](Self::merge)d into one registry view
    /// without name collisions.
    pub fn prefixed(&self, prefix: &str) -> MetricsSnapshot {
        let re = |k: &String| format!("{prefix}.{k}");
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (re(k), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (re(k), *v)).collect(),
            hists: self.hists.iter().map(|(k, v)| (re(k), v.clone())).collect(),
            series: self
                .series
                .iter()
                .map(|(k, v)| (re(k), v.clone()))
                .collect(),
        }
    }

    /// Pretty-printed JSON document of the whole snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"))
    }

    /// Prometheus text exposition (v0.0.4) rendering every metric:
    /// counters and gauges as scalars, histograms as cumulative
    /// `_bucket{le=...}` lines plus `_sum`/`_count`, and series as a
    /// last-value gauge plus a `_points` counter.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.hists {
            let n = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            let finite = h.n_buckets();
            for (i, &c) in h.counts.iter().enumerate() {
                cumulative += c;
                if i < finite {
                    out.push_str(&format!(
                        "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                        GeoHistogram::bound(i)
                    ));
                } else {
                    out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                }
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {cumulative}\n", h.sum));
        }
        for (name, points) in &self.series {
            let n = sanitize_metric_name(name);
            let last = points.last().map(|&(_, v)| v).unwrap_or(0.0);
            out.push_str(&format!(
                "# TYPE {n} gauge\n{n} {last}\n# TYPE {n}_points counter\n{n}_points {}\n",
                points.len()
            ));
        }
        out
    }
}

/// Maps an arbitrary registry name onto the Prometheus metric-name
/// alphabet `[a-zA-Z_:][a-zA-Z0-9_:]*` (invalid characters become
/// `_`; a leading digit gains a `_` prefix).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else if ok {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_across_lookups() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("requests").get(), 3);

        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("depth").get(), 3);

        reg.histogram("lat").record(100);
        assert_eq!(reg.histogram("lat").snapshot().total(), 1);

        reg.series("loss").push(0, 1.5);
        reg.series("loss").push(1, 0.5);
        assert_eq!(reg.series("loss").points(), vec![(0, 1.5), (1, 0.5)]);
    }

    #[test]
    fn snapshot_merge_adds_everything() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("c").add(2);
        b.counter("c").add(3);
        b.counter("only_b").inc();
        a.gauge("g").set(-1);
        b.gauge("g").set(4);
        a.histogram("h").record(10);
        b.histogram("h").record(1000);
        a.series("s").push(1, 1.0);
        b.series("s").push(0, 0.5);

        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.counters["only_b"], 1);
        assert_eq!(snap.gauges["g"], 3);
        assert_eq!(snap.hists["h"].total(), 2);
        assert_eq!(snap.series["s"], vec![(0, 0.5), (1, 1.0)]);
    }

    #[test]
    fn prometheus_text_renders_every_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.submitted").add(7);
        reg.gauge("queue depth").set(2);
        reg.histogram_with("lat_us", 4).record(3);
        reg.series("train/loss").push(0, 0.25);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("serve_submitted 7"));
        assert!(text.contains("queue_depth 2"));
        assert!(text.contains("lat_us_bucket{le=\"4\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_us_count 1"));
        assert!(text.contains("train_loss 0.25"));
        assert!(text.contains("train_loss_points 1"));
    }

    #[test]
    fn prefixed_rehomes_every_metric_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("completed").add(3);
        reg.gauge("depth").set(2);
        reg.histogram("lat").record(7);
        reg.series("loss").push(0, 1.0);
        let snap = reg.snapshot().prefixed("fleet.model.alpha");
        assert_eq!(snap.counters["fleet.model.alpha.completed"], 3);
        assert_eq!(snap.gauges["fleet.model.alpha.depth"], 2);
        assert_eq!(snap.hists["fleet.model.alpha.lat"].total(), 1);
        assert_eq!(snap.series["fleet.model.alpha.loss"].len(), 1);
        // Two replicas re-homed under different prefixes merge without
        // collisions; same prefix folds by addition.
        let mut merged = snap.clone();
        merged.merge(&reg.snapshot().prefixed("fleet.model.beta"));
        merged.merge(&reg.snapshot().prefixed("fleet.model.alpha"));
        assert_eq!(merged.counters["fleet.model.alpha.completed"], 6);
        assert_eq!(merged.counters["fleet.model.beta.completed"], 3);
    }

    #[test]
    fn sanitize_covers_edge_cases() {
        assert_eq!(sanitize_metric_name("a.b-c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn json_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.histogram("h").record(5);
        let snap = reg.snapshot();
        let parsed: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap_or_default();
        assert_eq!(parsed, snap);
    }
}
