//! Flight recorder: a fixed-size in-memory ring of the most recent
//! trace events, dumped to a timestamped JSONL postmortem file when
//! something dies (worker panic, NaN-storm rewind, chaos failure).
//!
//! The ring only fills while tracing is enabled (see
//! [`crate::trace`]); dumping while tracing is disabled is a no-op so
//! the quiet path never touches the filesystem. Postmortems land in
//! `CSQ_POSTMORTEM_DIR` (or a directory set programmatically via
//! [`set_postmortem_dir`]; default `.`) as
//! `postmortem-<unix_ms>-<seq>.jsonl`: a header object with the dump
//! reason followed by one JSON object per recorded event, oldest
//! first.

use crate::trace::TraceEvent;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default capacity of the global ring (events kept for a postmortem).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A bounded ring of recent [`TraceEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` recent events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceEvent>> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends an event, evicting the oldest once full.
    pub fn push(&self, event: TraceEvent) {
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Copy of the buffered events, oldest first.
    pub fn recent(&self) -> Vec<TraceEvent> {
        self.lock().iter().cloned().collect()
    }

    /// Drops all buffered events.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Writes the buffered events as a JSONL postmortem into `dir`,
    /// returning the file path. The first line is a header object
    /// carrying `reason`; events follow oldest-first. The ring is left
    /// intact (later failures may dump again with more context).
    pub fn dump(&self, dir: &std::path::Path, reason: &str) -> std::io::Result<PathBuf> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("postmortem-{unix_ms}-{seq}.jsonl"));
        let events = self.recent();
        let mut out = Vec::with_capacity(events.len() * 128 + 128);
        let header = serde_json::json!({
            "postmortem": reason,
            "ts_us": crate::trace::now_us(),
            "events": events.len(),
        });
        writeln!(out, "{header}")?;
        for event in &events {
            match serde_json::to_string(event) {
                Ok(line) => writeln!(out, "{line}")?,
                Err(e) => return Err(std::io::Error::other(e)),
            }
        }
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

/// The process-wide ring fed by the trace dispatcher.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::new(DEFAULT_RING_CAPACITY))
}

static POSTMORTEM_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Overrides the postmortem output directory (wins over
/// `CSQ_POSTMORTEM_DIR`). Tests use this to avoid process-global env
/// mutation.
pub fn set_postmortem_dir(dir: Option<PathBuf>) {
    *POSTMORTEM_DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir;
}

/// Resolves where postmortems go: the programmatic override, then
/// `CSQ_POSTMORTEM_DIR`, then the current directory.
pub fn postmortem_dir() -> PathBuf {
    if let Some(dir) = POSTMORTEM_DIR
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
    {
        return dir;
    }
    match std::env::var("CSQ_POSTMORTEM_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("."),
    }
}

/// Dumps the global ring as a postmortem named after `reason`.
///
/// Returns `None` when tracing is disabled (nothing was recorded — the
/// quiet path must not touch the filesystem) or when the write fails;
/// crash paths call this best-effort and must not turn a telemetry
/// failure into a second panic.
pub fn dump_global(reason: &str) -> Option<PathBuf> {
    if !crate::trace::enabled() {
        return None;
    }
    global().dump(&postmortem_dir(), reason).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventKind;

    fn ev(name: &str, ts: u64) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            thread: 0,
            depth: 0,
            kind: EventKind::Instant,
            target: String::from("test"),
            name: String::from(name),
            fields: vec![(String::from("k"), String::from("v"))],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.push(ev(&format!("e{i}"), i));
        }
        let names: Vec<String> = fr.recent().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
        fr.clear();
        assert!(fr.recent().is_empty());
    }

    #[test]
    fn dump_writes_header_then_events() {
        let fr = FlightRecorder::new(8);
        fr.push(ev("first", 1));
        fr.push(ev("second", 2));
        let dir = std::env::temp_dir().join("csq-obs-flight-test");
        let path = match fr.dump(&dir, "unit-test") {
            Ok(p) => p,
            Err(e) => panic!("dump failed: {e}"),
        };
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let parsed: Result<serde_json::Value, _> = serde_json::from_str(line);
            assert!(parsed.is_ok(), "line is not JSON: {line}");
        }
        assert!(lines[0].contains("\"postmortem\":\"unit-test\""));
        assert!(lines[1].contains("first"));
        assert!(lines[2].contains("second"));
        // Ring survives the dump.
        assert_eq!(fr.recent().len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
