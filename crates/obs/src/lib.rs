//! `csq-obs` — unified telemetry for the CSQ reproduction.
//!
//! Four pieces, all off by default so the quiet path stays bit-exact
//! and allocation-free:
//!
//! - [`registry`]: named counters / gauges / geometric histograms /
//!   time series behind lock-free handles, with mergeable snapshots
//!   rendered as JSON or Prometheus text. The histogram
//!   ([`hist::GeoHistogram`]) is the one implementation shared by the
//!   serve engine and the training metrics (both re-export it from
//!   their old paths).
//! - [`trace`]: the [`span!`] / [`event!`] structured-tracing facade.
//!   Disabled, a call is one relaxed atomic load; enabled (`CSQ_TRACE`
//!   or [`trace::set_enabled`]) events carry monotonic microsecond
//!   timestamps, thread ordinals, and span depth, and feed the flight
//!   recorder plus an optional JSONL sink.
//! - [`profiler`]: per-op-kind / per-shape kernel wall-time and
//!   bytes-touched aggregation, flipped on by benches to produce
//!   per-layer cost breakdowns.
//! - [`flight`]: a bounded ring of recent events dumped as a
//!   timestamped JSONL postmortem when a worker panics, a NaN storm
//!   triggers a rewind, or chaos kills something.
//!
//! Environment knobs (all optional): `CSQ_TRACE` (`1`/`ring`/file
//! path), `CSQ_POSTMORTEM_DIR`, and — read by the trainer, not here —
//! `CSQ_TELEMETRY`.

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod flight;
pub mod hist;
pub mod profiler;
pub mod registry;
pub mod trace;

pub use hist::{GeoHistogram, HistogramSnapshot, RunningMean};
pub use registry::{
    global as global_registry, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Series,
};
pub use trace::{SpanGuard, TraceEvent, TraceSink};
