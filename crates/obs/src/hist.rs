//! Geometric-bucket histograms: lock-free recording, mergeable
//! snapshots, and one percentile rule shared by every consumer.
//!
//! This is the histogram that used to live (twice, with drifting
//! percentile interpolations) inside `csq_serve::metrics` and the
//! training-side metrics. Bucket `i` covers values up to `2^i` (in
//! whatever unit the caller records — the serve engine records
//! microseconds), plus one trailing overflow slot. Percentile estimates
//! are therefore *upper bounds* with at most 2× resolution error, and —
//! because buckets are plain counts — histograms from different workers,
//! replicas, or processes merge by addition without losing anything.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-shape geometric histogram with atomic buckets.
///
/// `record` is wait-free (one relaxed `fetch_add` on the bucket plus one
/// on the running sum), so it is safe on hot paths shared by many
/// threads. Use [`GeoHistogram::snapshot`] to obtain an immutable,
/// serializable, mergeable [`HistogramSnapshot`].
#[derive(Debug)]
pub struct GeoHistogram {
    /// `buckets[i]` counts values `<= 2^i`; the last slot is overflow.
    buckets: Box<[AtomicU64]>,
    /// Running sum of every recorded value (saturating), for mean /
    /// Prometheus `_sum` exposition.
    sum: AtomicU64,
}

impl GeoHistogram {
    /// A histogram with `n_buckets` finite buckets (bucket `i` bounded
    /// by `2^i`) plus one overflow slot. `n_buckets` is clamped to
    /// `1..=63`.
    pub fn new(n_buckets: usize) -> GeoHistogram {
        let n = n_buckets.clamp(1, 63);
        GeoHistogram {
            buckets: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Number of finite buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len() - 1
    }

    /// Upper bound of finite bucket `i`.
    pub fn bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Index of the bucket `value` falls into (the overflow slot is
    /// `n_buckets`).
    pub fn bucket_index(&self, value: u64) -> usize {
        let n = self.n_buckets();
        (0..n).find(|&i| value <= Self::bound(i)).unwrap_or(n)
    }

    /// Records one value (wait-free).
    pub fn record(&self, value: u64) {
        self.buckets[self.bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // Saturating add: two racing saturations both store u64::MAX.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// An immutable copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`GeoHistogram`]: serializable, mergeable,
/// and the single home of the percentile interpolation rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Count per bucket; the last slot is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with `n_buckets` finite buckets.
    pub fn empty(n_buckets: usize) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; n_buckets.clamp(1, 63) + 1],
            sum: 0,
        }
    }

    /// Number of finite buckets.
    pub fn n_buckets(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Upper bounds of the finite buckets.
    pub fn bounds(&self) -> Vec<u64> {
        (0..self.n_buckets()).map(GeoHistogram::bound).collect()
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds `other`'s counts into `self` (fleet merge). Shorter
    /// histograms are widened; the overflow slots are summed.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.counts.len() > self.counts.len() {
            // Widen: our old overflow slot stays overflow (it counted
            // values beyond our finite range, which may or may not fit
            // other's range — keep them in overflow, an upper bound).
            let overflow = self.counts.pop().unwrap_or(0);
            self.counts.resize(other.counts.len() - 1, 0);
            self.counts.push(overflow);
        }
        let last = self.counts.len() - 1;
        for (i, &c) in other.counts.iter().enumerate() {
            let slot = if i >= other.counts.len() - 1 {
                last
            } else {
                i.min(last)
            };
            self.counts[slot] += c;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper-bound percentile estimate: the bound of the first bucket
    /// whose cumulative count reaches `ceil(total · q)` (0 when nothing
    /// was recorded; the largest finite bound for overflow values).
    ///
    /// Guarantee: for the exact value `v` at that rank,
    /// `v <= percentile(q) <= max(2·v, 1)` as long as `v` is within the
    /// finite bucket range.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let n = self.n_buckets();
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return GeoHistogram::bound(i.min(n.saturating_sub(1)));
            }
        }
        GeoHistogram::bound(n.saturating_sub(1))
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.sum as f64 / total as f64
        }
    }
}

/// Running average helper for loss/accuracy curves (moved here from
/// `csq_nn::metrics`, which re-exports it).
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: usize,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation with weight `n` (e.g. a batch of size `n`).
    pub fn add(&mut self, value: f32, n: usize) {
        self.sum += value as f64 * n as f64;
        self.count += n;
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Number of observations accumulated.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_geometric() {
        let h = GeoHistogram::new(24);
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(1), 0);
        assert_eq!(h.bucket_index(2), 1);
        assert_eq!(h.bucket_index(3), 2);
        assert_eq!(h.bucket_index(1024), 10);
        assert_eq!(h.bucket_index(u64::MAX), 24);
    }

    #[test]
    fn percentiles_walk_the_histogram() {
        let h = GeoHistogram::new(24);
        for _ in 0..90 {
            h.record(2);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.total(), 100);
        assert_eq!(s.percentile(0.50), 2);
        assert_eq!(s.percentile(0.95), 1024);
        assert_eq!(s.percentile(0.99), 1024);
        assert_eq!(s.sum, 90 * 2 + 10 * 1000);
    }

    #[test]
    fn empty_percentile_is_zero() {
        assert_eq!(GeoHistogram::new(8).snapshot().percentile(0.5), 0);
        assert_eq!(HistogramSnapshot::empty(8).mean(), 0.0);
    }

    #[test]
    fn merge_adds_counts_and_matches_single_recording() {
        let a = GeoHistogram::new(16);
        let b = GeoHistogram::new(16);
        let all = GeoHistogram::new(16);
        for v in [1u64, 5, 9, 120, 4000] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 7, 300, 70_000, 70_000] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.percentile(q), all.snapshot().percentile(q));
        }
    }

    #[test]
    fn merge_widens_shorter_histograms() {
        let narrow = GeoHistogram::new(4);
        narrow.record(3);
        narrow.record(1_000_000); // overflow for 4 buckets
        let wide = GeoHistogram::new(10);
        wide.record(900);
        let mut merged = narrow.snapshot();
        merged.merge(&wide.snapshot());
        assert_eq!(merged.counts.len(), 11);
        assert_eq!(merged.total(), 3);
    }

    #[test]
    fn overflow_values_clamp_to_largest_finite_bound() {
        let h = GeoHistogram::new(4);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().percentile(0.5), GeoHistogram::bound(3));
    }

    #[test]
    fn running_mean_weighted() {
        let mut m = RunningMean::new();
        m.add(1.0, 1);
        m.add(0.0, 3);
        assert!((m.mean() - 0.25).abs() < 1e-6);
        assert_eq!(m.count(), 4);
        assert_eq!(RunningMean::new().mean(), 0.0);
    }
}
