//! `csq-fleet`: multi-model serving above `csq-serve`'s single-model
//! [`Engine`].
//!
//! One engine serves one compiled model. A production deployment
//! serves *many* models — several precision variants of the same
//! network, several networks — each with redundant replicas, shared
//! tenants, rolling version upgrades, and operators who need one
//! answer to "how is the fleet doing". This crate is that layer, built
//! strictly on `csq-serve`'s public API:
//!
//! * [`ModelRegistry`] — scans a directory of versioned
//!   `<model_id>-v<version>.csqm` artifacts into per-model lineages.
//!   Every file passes the container checksum, the format-version
//!   gate, the schema decode, and a cross-version serving-contract
//!   check; damage becomes a typed [`RegistryFault`] and the newest
//!   *healthy* version keeps serving.
//! * [`Router`] — owns a replica group of engines per model and routes
//!   [`Router::submit`] with deterministic rendezvous hashing
//!   (FNV-1a), a least-loaded refinement, and queue-full failover down
//!   the ranked list. Fleet-level per-tenant token buckets gate
//!   admission before routing, so one tenant's overload sheds *their*
//!   traffic, not their neighbours'.
//! * [`rollout`] — replica-by-replica version upgrades through
//!   `Engine::swap_model`, with a bit-exactness canary on a pinned
//!   probe batch after every swap and automatic rollback to the
//!   incumbent version on any mismatch or contract refusal.
//! * [`FleetStats`] — per-model, per-tenant, and router-level rollups
//!   that merge replica latency histograms bucket-wise (percentiles
//!   re-derived from the merged histogram, never averaged), exported
//!   as one `csq-obs` snapshot for JSON or Prometheus.
//!
//! Failure semantics are inherited, not reinvented: every error a
//! caller sees is a [`FleetError`] wrapping either a routing fault or
//! the engine's own typed `ServeError`, requests never hang, and the
//! fleet-level chaos entries in `csq_core::fault::ChaosPlan` (replica
//! group kills, registry file corruption) drive deterministic drills
//! over all of it.
//!
//! [`Engine`]: csq_serve::Engine

#![deny(missing_docs)]
// Same contract as csq-serve: failures surface as typed errors, never
// ad-hoc unwraps (tests exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod registry;
pub mod rollout;
pub mod router;
pub mod stats;

pub use registry::{ModelRegistry, ModelVersion, RegistryError, RegistryFault};
pub use rollout::{rollout, rollout_with_expected, RolloutOutcome, RolloutReport};
pub use router::{FleetConfig, FleetError, Router, RouterTenantDrops};
pub use stats::{merge_engine_stats, FleetStats, ModelStats, RouterStats};
